//! Vendored offline subset of [proptest](https://proptest-rs.github.io/proptest/).
//!
//! Supplies the API surface the workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `any::<T>()`, numeric
//! range strategies, tuple strategies, `prop::collection::vec`, and
//! string strategies for simple character-class patterns of the form
//! `"[chars]{lo,hi}"`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! generated inputs in the assertion message. Generation is fully
//! deterministic — the RNG is seeded from the test function's name, so a
//! failure reproduces on every run.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import target mirroring `proptest::prelude`.
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

pub mod prop {
    //! Mirrors the `proptest::prop` namespace.
    pub mod collection {
        //! Collection strategies.
        pub use crate::strategy::vec;
    }
}

/// The `proptest!` macro: runs each enclosed `#[test]` function for
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut accepted = 0usize;
            let mut attempts = 0usize;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(100).max(1000),
                    "proptest `{}`: too many rejected cases ({} attempts for {} accepted)",
                    stringify!($name), attempts, accepted,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body (panics with the message on failure;
/// no shrinking in the vendored subset).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Discard the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}
