//! Value-generation strategies (vendored subset; no shrinking).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// `any::<T>()` — the full domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

// --- Numeric ranges. -----------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                // Include the upper endpoint with small probability so
                // boundary behaviour gets exercised.
                if rng.next_u64() % 257 == 0 {
                    return hi;
                }
                lo + (hi - lo) * rng.f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// --- Tuples. -------------------------------------------------------------

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

// --- Vec strategy. -------------------------------------------------------

/// Length specification for [`vec`]: an exact `usize` or a `Range`.
pub trait IntoLenRange {
    /// Resolve to `[lo, hi)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoLenRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoLenRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Strategy for `Vec<T>` with element strategy and length range.
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

/// `prop::collection::vec(element, len)` — `len` is an exact size or a
/// range.
pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
    let (lo, hi) = len.bounds();
    assert!(lo < hi, "empty vec length range");
    VecStrategy { element, lo, hi }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

// --- String patterns. ----------------------------------------------------

/// String strategies from `&str` character-class patterns of the exact
/// form `[chars]{lo,hi}` (e.g. `"[a-zA-Z0-9,.;:!? -]{0,60}"`). Character
/// ranges (`a-z`) and literal characters are supported; a trailing `-`
/// is literal. Anything else panics — the vendored subset only needs
/// this shape.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_pattern(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn bad_pattern(pattern: &str) -> ! {
    panic!("vendored proptest only supports `[chars]{{lo,hi}}` string patterns, got `{pattern}`")
}

fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| bad_pattern(pattern));
    let close = rest.find(']').unwrap_or_else(|| bad_pattern(pattern));
    let class = &rest[..close];
    let counts = rest[close + 1..]
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_else(|| bad_pattern(pattern));
    let (lo, hi) = counts
        .split_once(',')
        .unwrap_or_else(|| bad_pattern(pattern));
    let lo: usize = lo.trim().parse().unwrap_or_else(|_| bad_pattern(pattern));
    let hi: usize = hi.trim().parse().unwrap_or_else(|_| bad_pattern(pattern));
    assert!(lo <= hi, "bad counts in `{pattern}`");

    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            assert!(a <= b, "bad range {a}-{b} in `{pattern}`");
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in `{pattern}`");
    (alphabet, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (3usize..9).sample(&mut r);
            assert!((3..9).contains(&x));
            let y = (0.5f64..=1.0).sample(&mut r);
            assert!((0.5..=1.0).contains(&y));
            let z = (-10.0f32..10.0).sample(&mut r);
            assert!((-10.0..10.0).contains(&z));
        }
    }

    #[test]
    fn vec_lengths_respect_spec() {
        let mut r = rng();
        for _ in 0..100 {
            let v = vec(0usize..5, 2usize..7).sample(&mut r);
            assert!((2..7).contains(&v.len()));
            let exact = vec(any::<bool>(), 4usize).sample(&mut r);
            assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn string_patterns_generate_from_class() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c ]{0,8}".sample(&mut r);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == ' '));
            let t = "[a-zA-Z0-9,.;:!? -]{0,20}".sample(&mut r);
            assert!(t.len() <= 20);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let va = vec(0u64..100, 5usize..10).sample(&mut a);
        let vb = vec(0u64..100, 5usize..10).sample(&mut b);
        assert_eq!(va, vb);
    }
}
