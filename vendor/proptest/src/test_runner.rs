//! Configuration, RNG and case-rejection plumbing.

/// Marker returned by `prop_assume!` when a case is discarded.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Subset of upstream's `ProptestConfig`: the number of accepted cases
/// per test.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases to run (after assumption rejections).
    pub cases: usize,
}

impl ProptestConfig {
    /// Run `cases` accepted cases.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator (SplitMix64 core): seeded from the test name
/// so failures reproduce run-to-run without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test-function name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
