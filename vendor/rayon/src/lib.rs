//! Vendored offline subset of [rayon](https://crates.io/crates/rayon).
//!
//! The build container has no network access, so this crate provides the
//! small slice of rayon's API the workspace actually uses, implemented on
//! `std::thread::scope`. Call sites are written against upstream rayon's
//! names (`par_iter`, `into_par_iter`, `map`, `collect`, `for_each`) so
//! the real crate can be dropped in unchanged once a registry is
//! reachable.
//!
//! Two properties the workspace relies on:
//!
//! * **Order preservation.** Work is partitioned into contiguous index
//!   ranges and results are reassembled in index order, so
//!   `collect::<Vec<_>>()` returns exactly what the serial `map` would —
//!   for *pure* per-item closures the output is bit-identical for any
//!   thread count, which is what the golden parallel-vs-serial tests
//!   assert.
//! * **[`serial_scope`]** (an extension, not in upstream rayon) forces
//!   every parallel operation on the current thread to run inline. The
//!   scalar baselines in benches and the golden tests use it to pin the
//!   serial code path; since the executor never spawns while the flag is
//!   set, the flag propagates through nested parallel calls.
//!
//! Thread count: `RAYON_NUM_THREADS` (upstream's variable) if set,
//! otherwise `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::sync::OnceLock;

pub mod iter;
pub mod prelude {
    //! Glob-import target mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

pub use iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};

thread_local! {
    static FORCE_SERIAL: Cell<bool> = const { Cell::new(false) };
    /// Set inside shim worker threads: nested parallel calls run inline
    /// instead of spawning another full complement of threads per call.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

pub(crate) fn enter_worker<R>(f: impl FnOnce() -> R) -> R {
    IN_WORKER.with(|w| {
        let prev = w.replace(true);
        let out = f();
        w.set(prev);
        out
    })
}

pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Number of worker threads parallel operations will use.
///
/// Reads `RAYON_NUM_THREADS` once; falls back to the machine's available
/// parallelism. Always at least 1.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Run `f` with every parallel operation on this thread forced inline
/// (vendored extension; not part of upstream rayon).
///
/// Used by scalar baselines and golden tests to obtain the serial
/// execution of the exact same code path.
pub fn serial_scope<R>(f: impl FnOnce() -> R) -> R {
    FORCE_SERIAL.with(|s| {
        let prev = s.replace(true);
        let out = f();
        s.set(prev);
        out
    })
}

/// `true` while inside [`serial_scope`] (or when only one thread is
/// available).
pub fn in_serial_mode() -> bool {
    FORCE_SERIAL.with(Cell::get) || current_num_threads() <= 1
}

/// Potentially-parallel two-way fork-join (subset of `rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if in_serial_mode() {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|scope| {
            let hb = scope.spawn(b);
            let ra = a();
            let rb = hb.join().expect("rayon::join worker panicked");
            (ra, rb)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        let serial: Vec<usize> = xs.iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, serial);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..257usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 257);
        assert_eq!(squares[16], 256);
    }

    #[test]
    fn serial_scope_forces_inline() {
        let tid = std::thread::current().id();
        serial_scope(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                assert_eq!(std::thread::current().id(), tid);
            });
        });
    }

    #[test]
    fn serial_and_parallel_agree_on_float_work() {
        let xs: Vec<f64> = (0..4096).map(|i| (i as f64).sin()).collect();
        let par: Vec<f64> = xs.par_iter().map(|x| x * x + 1.0).collect();
        let ser: Vec<f64> = serial_scope(|| xs.par_iter().map(|x| x * x + 1.0).collect());
        assert_eq!(par, ser);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<usize> = Vec::new();
        let out: Vec<usize> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one: Vec<usize> = [7usize].par_iter().map(|&x| x).collect();
        assert_eq!(one, vec![7]);
    }
}
