//! Indexed parallel iterators (vendored subset).
//!
//! Everything is built on one abstraction: an indexed source that can
//! produce its `i`-th item from a shared reference. Adaptors compose
//! sources; the driver partitions `0..len` into one contiguous chunk per
//! worker, evaluates chunks on scoped threads, and reassembles results in
//! index order.

use std::ops::Range;

/// An indexed item source shareable across worker threads.
pub trait IndexedSource: Sync {
    /// The produced item type.
    type Item: Send;
    /// Number of items.
    fn length(&self) -> usize;
    /// Produce item `i` (must be pure for golden-test bit-identity).
    fn get(&self, i: usize) -> Self::Item;
}

/// Subset of rayon's `ParallelIterator`, implemented for every
/// [`IndexedSource`].
pub trait ParallelIterator: IndexedSource + Sized {
    /// Map each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Run `f` on every item. No ordering guarantee between items.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive_for_each(&self, &f);
    }

    /// Collect into `C` preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_ordered_vec(drive_collect(&self))
    }

    /// Sum the items (deterministic: chunk partials are reduced in index
    /// order, identical to the serial left fold for integer types).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
        Self::Item: Clone,
    {
        drive_collect(&self).into_iter().sum()
    }
}

impl<T: IndexedSource + Sized> ParallelIterator for T {}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing parallel iterator (`par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a reference).
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'data self) -> Self::Iter;
}

/// Collection types constructible from an ordered result vector.
pub trait FromParallelIterator<T> {
    /// Build from items already in index order.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Self {
        v
    }
}

// --- Sources. ------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedSource for SliceIter<'a, T> {
    type Item = &'a T;
    fn length(&self) -> usize {
        self.slice.len()
    }
    fn get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl IndexedSource for RangeIter {
    type Item = usize;
    fn length(&self) -> usize {
        self.len
    }
    fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// The `map` adaptor.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> IndexedSource for Map<I, F>
where
    I: IndexedSource,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;
    fn length(&self) -> usize {
        self.base.length()
    }
    fn get(&self, i: usize) -> R {
        (self.f)(self.base.get(i))
    }
}

// --- Driver. -------------------------------------------------------------

fn plan(n: usize) -> Option<(usize, usize)> {
    // No spawning when serial-forced or already inside a worker —
    // nested parallelism runs inline rather than multiplying threads.
    if n < 2 || crate::in_serial_mode() || crate::in_worker() {
        return None;
    }
    let threads = crate::current_num_threads().min(n);
    if threads < 2 {
        return None;
    }
    Some((threads, n.div_ceil(threads)))
}

fn drive_collect<S: IndexedSource>(src: &S) -> Vec<S::Item> {
    let n = src.length();
    let Some((threads, chunk)) = plan(n) else {
        return (0..n).map(|i| src.get(i)).collect();
    };
    let mut parts: Vec<Vec<S::Item>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move || {
                    crate::enter_worker(|| (lo..hi).map(|i| src.get(i)).collect::<Vec<_>>())
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

fn drive_for_each<S, F>(src: &S, f: &F)
where
    S: IndexedSource,
    F: Fn(S::Item) + Sync,
{
    let n = src.length();
    let Some((threads, chunk)) = plan(n) else {
        for i in 0..n {
            f(src.get(i));
        }
        return;
    };
    std::thread::scope(|scope| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            scope.spawn(move || {
                crate::enter_worker(|| {
                    for i in lo..hi {
                        f(src.get(i));
                    }
                })
            });
        }
    });
}
