//! Vendored offline subset of [serde_json](https://crates.io/crates/serde_json).
//!
//! Renders and parses the vendored `serde` crate's [`serde::Value`] data
//! model as JSON text. Exposes the three entry points the workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`]. Non-finite
//! floats serialize as `null` (upstream's behaviour).

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Result alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// --- Writer. -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip formatting; always valid JSON.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, '[', ']', |o, x, d| {
            write_value(o, x, indent, d)
        }),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            '{',
            '}',
            |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
        ),
    }
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, T, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Parser. -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]` at byte {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}` at byte {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected input at byte {}: {other:?}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("-2.5e3").unwrap(), -2500.0);
        assert!(!from_str::<bool>(" false ").unwrap());
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4.5]]");
        let back: Vec<(f64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1.25f64);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"a\":1.25}");
        let back: std::collections::BTreeMap<String, f64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\n\t\"quoted\" \\ unicode é".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![vec![1u64, 2], vec![]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn u64_precision_preserved() {
        let big = u64::MAX - 3;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<u64>("nope").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
