//! Vendored offline subset of [criterion](https://crates.io/crates/criterion).
//!
//! A minimal wall-clock benchmark harness exposing the API shape the
//! workspace's benches use: `Criterion`, `benchmark_group` /
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `sample_size`,
//! and the `criterion_group!` / `criterion_main!` macros. Measurements
//! are printed as `name: median t/iter (n samples)`; there is no
//! statistical regression machinery. `Bencher::iter` reports the median
//! of per-sample means after a short warm-up, which is stable enough for
//! the ≥4× comparisons the workspace's perf gates assert.

use std::time::{Duration, Instant};

/// Benchmark statistics for one measured function.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median of per-sample mean iteration times, seconds.
    pub median_secs: f64,
    /// Minimum per-sample mean, seconds.
    pub min_secs: f64,
    /// Samples measured.
    pub samples: usize,
}

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("[bench] group `{name}`");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_bench(name, self.default_sample_size, f);
        report(name, &stats);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a function.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let stats = run_bench(&full, self.sample_size, f);
        report(&full, &stats);
        self
    }

    /// Benchmark a function against an explicit input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let stats = run_bench(&full, self.sample_size, |b| f(b, input));
        report(&full, &stats);
        self
    }

    /// Finish the group (upstream requires it; a no-op here).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Conversion into the printed benchmark id.
pub trait IntoBenchmarkId {
    /// Render the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample mean iteration times (seconds).
    sample_means: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, called repeatedly; its return value is black-boxed.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: find an iteration count putting one sample at ≥ ~20 ms
        // (capped so very slow functions still run 1/iter).
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.sample_means.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.sample_means
                .push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }

    fn stats(&self) -> Stats {
        let mut means = self.sample_means.clone();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = if means.is_empty() {
            0.0
        } else {
            means[means.len() / 2]
        };
        Stats {
            median_secs: median,
            min_secs: means.first().copied().unwrap_or(0.0),
            samples: means.len(),
        }
    }
}

fn run_bench<F: FnOnce(&mut Bencher)>(name: &str, samples: usize, f: F) -> Stats {
    let _ = name;
    let mut b = Bencher {
        samples,
        sample_means: Vec::new(),
    };
    f(&mut b);
    b.stats()
}

fn report(name: &str, stats: &Stats) {
    eprintln!(
        "[bench] {name}: median {} ({} samples, min {})",
        fmt_secs(stats.median_secs),
        stats.samples,
        fmt_secs(stats.min_secs),
    );
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Measure one closure directly (vendored extension used by benches that
/// need the numbers programmatically, e.g. to emit JSON artifacts).
pub fn measure<R, F: FnMut() -> R>(samples: usize, f: F) -> Stats {
    run_bench("<inline>", samples, move |b| b.iter(f))
}

/// Group benchmark functions (upstream-compatible simple form).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("id", 42), &42, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn measure_returns_positive_time() {
        let stats = measure(3, || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        assert!(stats.median_secs > 0.0);
        assert_eq!(stats.samples, 3);
    }
}
