//! Vendored offline subset of [serde](https://serde.rs).
//!
//! The build container has no network access, so this crate supplies the
//! slice of serde the workspace uses: `Serialize`/`Deserialize` traits
//! with `#[derive(...)]` support, implemented over a small JSON-shaped
//! [`Value`] data model instead of upstream's visitor machinery. The
//! companion `serde_json` crate renders/parses that model. Derives on
//! plain structs (named or newtype) and enums (unit or struct variants)
//! are supported — exactly the shapes the workspace derives on.
//!
//! Swap this for crates.io `serde` + `serde_json` when a registry is
//! available; call sites only use `derive`, `to_string[_pretty]` and
//! `from_str`, which behave identically.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped self-describing value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (kept exact — seeds are `u64`).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Convert to the data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from the data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up a field in an object's entries (derive-generated code helper).
pub fn field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

// --- Primitive impls. ----------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError(format!("{x} out of range for {}", stringify!($t)))),
                    Value::I64(x) if *x >= 0 => <$t>::try_from(*x as u64)
                        .map_err(|_| DeError(format!("{x} out of range for {}", stringify!($t)))),
                    other => Err(DeError(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError(format!("{x} out of range for {}", stringify!($t)))),
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError(format!("{x} out of range for {}", stringify!($t)))),
                    other => Err(DeError(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(x) => Ok(*x as $t),
                    Value::I64(x) => Ok(*x as $t),
                    other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError(format!("expected 2-element array, got {v:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError(format!("expected 3-element array, got {v:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
