//! Vendored offline `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Upstream `serde_derive` rides on `syn` + `quote`, neither of which is
//! available offline, so this crate walks the raw `proc_macro` token
//! stream directly. It supports exactly the item shapes the workspace
//! derives on:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently, larger
//!   arities as arrays),
//! * enums with unit variants (serialized as the variant-name string) and
//!   struct variants (externally tagged, serde's default).
//!
//! Generics and `#[serde(...)]` attributes are unsupported and rejected
//! loudly — nothing in the workspace uses them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    /// Variant name plus `None` for unit, `Some(fields)` for a struct
    /// variant.
    Enum(Vec<(String, Option<Vec<String>>)>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// --- Parsing. ------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde derive does not support generics (on `{name}`)");
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("vendored serde derive supports struct/enum, got `{other}`"),
    };
    Item { name, shape }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    *i += 1;
                }
                *i += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Parse `name: Type, ...` field lists; returns the names. Commas inside
/// `<...>` belong to the type and are skipped via angle-depth tracking
/// (parenthesized types arrive as single groups and hide theirs).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma would overcount; none of the workspace's tuple
    // structs use one, and an empty trailing slot cannot parse anyway.
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Option<Vec<String>>)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("vendored serde derive does not support tuple enum variant `{name}`")
            }
            _ => None,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// --- Code generation. ----------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!(
                        "{name}::{v} => serde::Value::String(::std::string::String::from(\"{v}\")),"
                    ),
                    Some(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => serde::Value::Object(vec![(::std::string::String::from(\"{v}\"), serde::Value::Object(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{ {body} }}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(serde::field(obj, \"{f}\")?)?")
                })
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| serde::DeError::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if arr.len() != {n} {{ return ::std::result::Result::Err(serde::DeError::custom(\"wrong arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fields| (v, fields)))
                .map(|(v, fields)| {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: serde::Deserialize::from_value(serde::field(obj, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "\"{v}\" => {{\n\
                         let obj = inner.as_object().ok_or_else(|| serde::DeError::custom(\"expected object for {name}::{v}\"))?;\n\
                         ::std::result::Result::Ok({name}::{v} {{ {} }})\n\
                         }}",
                        inits.join(", ")
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                 serde::Value::String(s) => match s.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(serde::DeError::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }},\n\
                 serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(serde::DeError::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(serde::DeError::custom(format!(\"expected {name} variant, got {{other:?}}\"))),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n{body}\n    }}\n}}"
    )
}
