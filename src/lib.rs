#![forbid(unsafe_code)]
//! # battleship-em
//!
//! A from-scratch Rust reproduction of *"The Battleship Approach to the
//! Low Resource Entity Matching Problem"* (Genossar, Gal & Shraga,
//! SIGMOD 2023).
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof so applications can depend on a single package. The documented
//! public surface for applications is [`api`] — sessions (the
//! step-driven, checkpointable active-learning loop), strategies,
//! scenarios, reports and the experiment engine behind one import path.
//!
//! ```
//! use battleship_em::synth::{DatasetProfile, generate};
//! use battleship_em::core::Rng;
//!
//! let profile = DatasetProfile::walmart_amazon().scaled(0.02);
//! let dataset = generate(&profile, &mut Rng::seed_from_u64(7)).unwrap();
//! assert!(dataset.len() > 0);
//! ```
//!
//! See the workspace `README.md` for the architecture overview (the
//! "Session API" section has the phase diagram) and `DESIGN.md` for the
//! paper-to-module map.

pub use battleship::api;

pub use battleship as al;
pub use em_cluster as cluster;
pub use em_core as core;
pub use em_graph as graph;
pub use em_matcher as matcher;
pub use em_synth as synth;
pub use em_vector as vector;

/// Workspace version, from the facade crate's metadata.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
