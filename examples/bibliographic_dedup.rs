//! Bibliographic record linkage (the DBLP-Scholar scenario): a curated
//! library against a noisy crawled corpus, matched with zero labels
//! (ZeroER) versus a small active-learning budget (battleship).
//!
//! ```sh
//! cargo run --release --example bibliographic_dedup
//! ```

use battleship_em::al::{run_active_learning, zeroer_f1, BattleshipStrategy, ExperimentConfig};
use battleship_em::core::{PerfectOracle, Rng};
use battleship_em::matcher::{FeatureConfig, Featurizer};
use battleship_em::synth::{generate, DatasetProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::dblp_scholar().scaled(0.08);
    let dataset = generate(&profile, &mut Rng::seed_from_u64(2024))?;

    // Peek at the data the two sources disagree on.
    let (clean, dirty) = dataset.pair_records(0)?;
    println!("a matched paper, as each source records it:");
    println!("  curated: {}", clean.full_text());
    println!("  crawled: {}", dirty.full_text());

    let featurizer = Featurizer::new(&dataset, FeatureConfig::default())?;

    // --- Zero labels: ZeroER's generative similarity model. ---------------
    let zero = zeroer_f1(&dataset, &featurizer, 1)?;
    println!(
        "\nZeroER (0 labels):      F1 {:>5.1}%  (precision {:.1}%, recall {:.1}%)",
        zero.f1 * 100.0,
        zero.precision * 100.0,
        zero.recall * 100.0
    );

    // --- A small labeling budget: battleship. ------------------------------
    let features = featurizer.featurize_all(&dataset)?;
    let mut config = ExperimentConfig::default();
    config.al.iterations = 3;
    config.al.budget = 80;
    config.al.seed_size = 80;
    config.al.weak_budget = 80;
    config.matcher.epochs = 15;

    let mut strategy = BattleshipStrategy::new();
    let oracle = PerfectOracle::new();
    let report = run_active_learning(&dataset, &features, &mut strategy, &oracle, &config, 9)?;
    for it in &report.iterations {
        println!(
            "battleship ({:>3} labels): F1 {:>5.1}%",
            it.labels_used, it.test_f1_pct
        );
    }
    println!(
        "\nthe paper's observation (§5.1) — battleship needs at most two \
         iterations to overtake the unsupervised approach — {}.",
        if report
            .iterations
            .iter()
            .take(3)
            .any(|it| it.test_f1_pct > zero.f1 * 100.0)
        {
            "holds here"
        } else {
            "does NOT hold on this run"
        }
    );
    Ok(())
}
