//! Compare all selection strategies (plus the ZeroER / Full D extremes)
//! on one dataset — a miniature of the paper's Figure 5 / Table 4,
//! driven by the parallel experiment engine: one grid of
//! strategy × seed cells sharing the dataset artifacts, fanned out
//! across worker threads, aggregated into a deterministic report.
//!
//! ```sh
//! cargo run --release --example compare_strategies
//! ```
//!
//! Knobs (environment):
//! * `EM_COMPARE_SCALE` — dataset scale factor (default 0.2);
//! * `EM_COMPARE_SEEDS` — seeds per strategy cell (default 2);
//! * `EM_COMPARE_ITERS` — active-learning iterations (default 4);
//! * `RAYON_NUM_THREADS` — worker threads for the fan-out.

use battleship_em::al::{ExperimentGrid, GridConfig, Scenario, StrategySpec};
use battleship_em::synth::DatasetProfile;
use em_bench::env_or;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = env_or("EM_COMPARE_SCALE", 0.2);
    let n_seeds: usize = env_or("EM_COMPARE_SEEDS", 2);
    let iterations: usize = env_or("EM_COMPARE_ITERS", 4);

    let mut config = GridConfig {
        master_seed: 3,
        n_seeds,
        include_baselines: true,
        ..GridConfig::default()
    };
    config.experiment.al.iterations = iterations;
    config.experiment.al.budget = 60;
    config.experiment.al.seed_size = 60;
    config.experiment.al.weak_budget = 60;
    config.experiment.matcher.epochs = 20;

    let grid = ExperimentGrid::new(
        vec![Scenario::synthetic_scaled(
            DatasetProfile::amazon_google(),
            scale,
            11,
        )],
        StrategySpec::all().to_vec(),
        config,
    );

    let report = grid.run()?;
    let scenario = grid.scenarios[0].name().to_string();

    println!(
        "grid `{scenario}`: {} runs on {} worker thread(s) in {:.2} s\n",
        report.runs.len(),
        report.threads,
        report.wall_secs
    );
    println!(
        "{:<12} {:>8} {:>14} {:>14}",
        "strategy", "F1@start", "F1@end ± std", "AUC ± std"
    );
    for cell in &report.cells {
        let agg = &cell.aggregate;
        let start = agg.mean_curve.first().map(|&(_, y)| y).unwrap_or(0.0);
        let end = agg.final_f1().unwrap_or(0.0);
        let end_std = cell.std_curve.last().map(|&(_, s)| s).unwrap_or(0.0);
        if agg.mean_curve.len() > 1 {
            println!(
                "{:<12} {:>7.1}% {:>7.1}% ± {:>3.1} {:>7.1} ± {:>3.1}",
                agg.strategy, start, end, end_std, agg.mean_auc, cell.std_auc
            );
        } else {
            // Baselines: one-point curves, no start/AUC to report.
            println!(
                "{:<12} {:>8} {:>7.1}% {:>width$}",
                agg.strategy,
                "-",
                end,
                "-",
                width = 20
            );
        }
    }
    Ok(())
}
