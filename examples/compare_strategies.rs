//! Compare all selection strategies (plus the ZeroER / Full D extremes)
//! on one dataset — a miniature of the paper's Figure 5 / Table 4.
//!
//! ```sh
//! cargo run --release --example compare_strategies
//! ```

use battleship_em::al::{
    full_d_f1, run_active_learning, zeroer_f1, BattleshipStrategy, DalStrategy, DialStrategy,
    ExperimentConfig, RandomStrategy, SelectionStrategy,
};
use battleship_em::core::{PerfectOracle, Rng};
use battleship_em::matcher::{FeatureConfig, Featurizer};
use battleship_em::synth::{generate, DatasetProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::amazon_google().scaled(0.2);
    let dataset = generate(&profile, &mut Rng::seed_from_u64(11))?;
    let featurizer = Featurizer::new(&dataset, FeatureConfig::default())?;
    let features = featurizer.featurize_all(&dataset)?;

    let mut config = ExperimentConfig::default();
    config.al.iterations = 4;
    config.al.budget = 60;
    config.al.seed_size = 60;
    config.al.weak_budget = 60;
    config.matcher.epochs = 20;

    println!(
        "dataset `{}` ({} train pairs, {:.1}% positive)\n",
        dataset.name,
        dataset.split().train.len(),
        100.0 * dataset.stats().train_pos_rate
    );
    println!(
        "{:<12} {:>8} {:>8} {:>8}",
        "strategy", "F1@start", "F1@end", "AUC"
    );

    let strategies: Vec<Box<dyn SelectionStrategy>> = vec![
        Box::new(BattleshipStrategy::new()),
        Box::new(DalStrategy::new()),
        Box::new(DialStrategy::new()),
        Box::new(RandomStrategy::new()),
    ];
    for mut strategy in strategies {
        let oracle = PerfectOracle::new();
        let report =
            run_active_learning(&dataset, &features, strategy.as_mut(), &oracle, &config, 3)?;
        println!(
            "{:<12} {:>7.1}% {:>7.1}% {:>8.1}",
            report.strategy,
            report
                .iterations
                .first()
                .map(|i| i.test_f1_pct)
                .unwrap_or(0.0),
            report.final_f1().unwrap_or(0.0),
            report.auc()?,
        );
    }

    // The two extremes of the labeling-resource spectrum (§4.3).
    let zero = zeroer_f1(&dataset, &featurizer, 1)?;
    println!(
        "{:<12} {:>8} {:>7.1}% {:>8}",
        "zeroer",
        "-",
        zero.f1 * 100.0,
        "-"
    );
    let full = full_d_f1(&dataset, &features, &config.matcher)?;
    println!(
        "{:<12} {:>8} {:>7.1}% {:>8}",
        "full-d",
        "-",
        full.f1 * 100.0,
        "-"
    );
    Ok(())
}
