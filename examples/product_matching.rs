//! End-to-end product matching from raw tables: blocking → featurizing →
//! low-resource active learning — the workflow of the paper's motivating
//! scenario (two product catalogs, few labels to spare).
//!
//! Unlike `quickstart`, this example starts from the *tables* and runs
//! the blocking stage itself, then inspects what the battleship strategy
//! actually hunts: its per-iteration positive yield. The matching stage
//! runs through the session API facade.
//!
//! ```sh
//! cargo run --release --example product_matching
//! ```

use battleship_em::al::ExperimentConfig;
use battleship_em::api::{MatchSession, PerfectOracle, SessionConfig, StrategySpec};
use battleship_em::core::Rng;
use battleship_em::matcher::{FeatureConfig, Featurizer};
use battleship_em::synth::{block_candidates, generate, BlockingConfig, DatasetProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two catalog-shaped tables (the generator gives us ground truth so
    // the oracle can answer).
    let profile = DatasetProfile::walmart_amazon().scaled(0.2);
    let dataset = generate(&profile, &mut Rng::seed_from_u64(99))?;

    // --- Blocking stage (§2.1's preprocessing, built in `em-synth`). -----
    let candidates = block_candidates(&dataset.left, &dataset.right, BlockingConfig::default())?;
    let cross = dataset.left.len() * dataset.right.len();
    let true_matches: Vec<_> = (0..dataset.len())
        .filter(|&i| dataset.ground_truth(i).is_match())
        .map(|i| dataset.pairs()[i])
        .collect();
    let recall = battleship_em::synth::blocking::blocking_recall(&candidates, &true_matches);
    println!(
        "blocking: {} × {} = {} possible pairs → {} candidates (recall {:.1}% of true matches)",
        dataset.left.len(),
        dataset.right.len(),
        cross,
        candidates.len(),
        100.0 * recall
    );

    // --- Matching stage on the generator's candidate set. -----------------
    let featurizer = Featurizer::new(&dataset, FeatureConfig::default())?;
    let features = featurizer.featurize_all(&dataset)?;

    let config = SessionConfig {
        experiment: ExperimentConfig::low_resource(5, 60),
        strategy: StrategySpec::Battleship,
        seed: 5,
    };
    let oracle = PerfectOracle::new();
    let mut session = MatchSession::new(&dataset, &features, config)?;
    let report = session.drive(&oracle)?;

    // The battleship's point: it *hunts matches*. Compare its positive
    // yield per iteration with the dataset's base rate.
    let base_rate = dataset.stats().train_pos_rate;
    println!(
        "\npositive yield per iteration (dataset base rate {:.1}%):",
        100.0 * base_rate
    );
    for it in report.iterations.iter().skip(1) {
        let yield_rate = it.new_positives as f64 / it.new_labels.max(1) as f64;
        println!(
            "  iteration {}: {:>2} of {} new labels were matches ({:>5.1}%)  → F1 {:.1}%",
            it.iteration,
            it.new_positives,
            it.new_labels,
            100.0 * yield_rate,
            it.test_f1_pct
        );
    }
    println!(
        "\nfinal F1 after {} labels: {:.1}%",
        report.total_labels(),
        report.final_f1().unwrap_or(0.0)
    );
    Ok(())
}
