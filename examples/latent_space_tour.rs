//! The Figure 1 story: train a matcher, pool its pair representations,
//! reduce with t-SNE and verify that match pairs concentrate.
//!
//! The paper opens with this observation — "there is a concentration of
//! match pairs in a few main areas of the latent space" — and builds the
//! entire selection mechanism on it. This example reproduces the
//! visualization pipeline and prints the quantitative reading: k-NN
//! label purity in the 2-D embedding, plus a coarse ASCII density plot.
//!
//! ```sh
//! cargo run --release --example latent_space_tour
//! ```

use battleship_em::core::{Label, Rng};
use battleship_em::matcher::{train_matcher, FeatureConfig, Featurizer, MatcherConfig};
use battleship_em::synth::{generate, DatasetProfile};
use battleship_em::vector::tsne::knn_label_purity;
use battleship_em::vector::{Tsne, TsneConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::amazon_google().scaled(0.12);
    let dataset = generate(&profile, &mut Rng::seed_from_u64(1))?;
    let featurizer = Featurizer::new(&dataset, FeatureConfig::default())?;
    let features = featurizer.featurize_all(&dataset)?;

    // Fully trained model, as in Figure 1 ("we trained a DITTO model with
    // the fully available train set").
    let train = dataset.split().train.clone();
    let train_labels = dataset.ground_truth_of(&train);
    let valid = dataset.split().valid.clone();
    let valid_labels = dataset.ground_truth_of(&valid);
    let matcher = train_matcher(
        &features,
        &train,
        &train_labels,
        &valid,
        &valid_labels,
        &MatcherConfig {
            epochs: 25,
            ..Default::default()
        },
    )?;

    // Pool representations for a sample of pairs and reduce to 2-D.
    let sample: Vec<usize> = train.iter().copied().take(600).collect();
    let out = matcher.predict(&features, &sample)?;
    let labels: Vec<bool> = sample
        .iter()
        .map(|&i| dataset.ground_truth(i) == Label::Match)
        .collect();

    println!(
        "running exact t-SNE on {} pair representations…",
        sample.len()
    );
    let embedding = Tsne::new(TsneConfig {
        perplexity: 30.0,
        iterations: 300,
        ..Default::default()
    })
    .fit(&out.representations)?;

    let (pos_purity, neg_purity) = knn_label_purity(&embedding, &labels, 10)?;
    println!(
        "10-NN label purity in the 2-D embedding: match {:.2}, non-match {:.2}",
        pos_purity, neg_purity
    );
    println!(
        "(values near 1.0 = classes concentrate, the Figure 1 phenomenon; \
         the positive rate here is only {:.0}%, so match purity ≫ base rate \
         means matches really do gather together)\n",
        100.0 * dataset.stats().train_pos_rate
    );

    // Coarse ASCII rendering of the embedding (x = match density).
    render_ascii(&embedding, &labels, 64, 24);
    Ok(())
}

/// Print a `width × height` density grid: `#` cells are match-dominated,
/// `.` cells non-match-dominated, ` ` empty.
fn render_ascii(
    embedding: &battleship_em::vector::Embeddings,
    labels: &[bool],
    width: usize,
    height: usize,
) {
    let (mut min_x, mut max_x) = (f32::MAX, f32::MIN);
    let (mut min_y, mut max_y) = (f32::MAX, f32::MIN);
    for i in 0..embedding.len() {
        let r = embedding.row(i);
        min_x = min_x.min(r[0]);
        max_x = max_x.max(r[0]);
        min_y = min_y.min(r[1]);
        max_y = max_y.max(r[1]);
    }
    let mut pos = vec![0i32; width * height];
    let mut neg = vec![0i32; width * height];
    for (i, &label) in labels.iter().enumerate() {
        let r = embedding.row(i);
        let cx = (((r[0] - min_x) / (max_x - min_x).max(1e-6)) * (width - 1) as f32) as usize;
        let cy = (((r[1] - min_y) / (max_y - min_y).max(1e-6)) * (height - 1) as f32) as usize;
        if label {
            pos[cy * width + cx] += 1;
        } else {
            neg[cy * width + cx] += 1;
        }
    }
    println!("t-SNE map (`#` = match-dominated cell, `.` = non-match, ` ` = empty):");
    for y in 0..height {
        let mut line = String::with_capacity(width);
        for x in 0..width {
            let p = pos[y * width + x];
            let n = neg[y * width + x];
            line.push(if p + n == 0 {
                ' '
            } else if p >= n {
                '#'
            } else {
                '.'
            });
        }
        println!("  {line}");
    }
}
