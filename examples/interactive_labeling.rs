//! Interactive labeling: the inverted active-learning loop with a
//! human-in-the-loop labeler — the setting the session API exists for.
//!
//! The session asks for labels; a labeler closure answers them. By
//! default the labeler reads `y`/`n` answers from stdin (type `a` to
//! let ground truth answer the rest automatically); when stdin is not
//! interactive (piped, CI) it auto-answers from ground truth, so
//! `cargo run --release --example interactive_labeling < /dev/null`
//! completes unattended.
//!
//! Between batches the session is checkpointed and restored — the
//! persistence cycle a labeling server would run — to show that
//! resuming changes nothing. The checkpoint travels through a
//! [`FaultyBackend`] that injects transient faults on a fifth of the
//! operations, retried under the serve layer's [`RetryPolicy`]: the
//! same fault-tolerance stack a production store runs, visible in one
//! process.
//!
//! ```sh
//! cargo run --release --example interactive_labeling
//! ```

use std::io::BufRead;

use battleship_em::al::ExperimentConfig;
use battleship_em::api::{
    FaultPlan, FaultyBackend, Label, MatchSession, MemoryBackend, PairIdx, RetryPolicy, Scenario,
    SessionConfig, SessionPhase, SessionSnapshot, SnapshotBackend, SnapshotCodec, StrategySpec,
};
use battleship_em::core::serialize_pair;
use battleship_em::synth::DatasetProfile;

/// One stdin-backed labeling decision; `None` means "answer the rest
/// from ground truth".
fn ask(prompt: &str, stdin: &mut impl BufRead) -> Option<bool> {
    loop {
        println!("{prompt}");
        let mut line = String::new();
        match stdin.read_line(&mut line) {
            Ok(0) | Err(_) => return None, // EOF / closed stdin → auto mode
            Ok(_) => match line.trim() {
                "y" | "Y" => return Some(true),
                "n" | "N" => return Some(false),
                "a" | "A" | "" => return None,
                other => println!("  (got `{other}`; answer y, n, or a for auto)"),
            },
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small task so each training step takes well under a second.
    let art =
        Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.08, 11).materialize()?;
    let dataset = &art.dataset;

    let mut experiment = ExperimentConfig::low_resource(2, 8);
    experiment.al.seed_size = 16;
    let config = SessionConfig {
        experiment,
        strategy: StrategySpec::Battleship,
        seed: 3,
    };

    let mut session = MatchSession::new(dataset, &art.features, config)?;
    let mut stdin = std::io::stdin().lock();
    let mut auto = false;
    let mut batch_no = 0usize;

    // Checkpoints persist through a backend that fails transiently on
    // 20 % of operations; the retry policy rides the faults out.
    let backend = FaultyBackend::new(MemoryBackend::new(), FaultPlan::transient(0xFA11, 0.2));
    let retry = RetryPolicy::default();

    println!(
        "interactive entity matching on `{}` ({} candidate pairs)\n",
        dataset.name,
        dataset.len()
    );

    loop {
        match session.advance()? {
            SessionPhase::AwaitingLabels => {
                batch_no += 1;
                let batch = session.next_query_batch();
                println!(
                    "--- query batch {batch_no}: {} pairs to label ---",
                    batch.len()
                );
                let mut answers: Vec<(PairIdx, Label)> = Vec::with_capacity(batch.len());
                for (i, &pair) in batch.iter().enumerate() {
                    let truth = dataset.ground_truth(pair);
                    let decision = if auto {
                        truth.is_match()
                    } else {
                        let (l, r) = dataset.pair_records(pair)?;
                        let text =
                            serialize_pair(&dataset.left.schema, l, &dataset.right.schema, r);
                        match ask(
                            &format!(
                                "\n[{}/{}] {text}\n  same entity? [y/n/a(uto)]",
                                i + 1,
                                batch.len()
                            ),
                            &mut stdin,
                        ) {
                            Some(d) => d,
                            None => {
                                println!("  → answering the rest from ground truth");
                                auto = true;
                                truth.is_match()
                            }
                        }
                    };
                    answers.push((pair, Label::from_bool(decision)));
                }
                session.submit_labels(&answers)?;

                // Checkpoint between batches: serialize, write through
                // the fault-injecting backend, drop, read back, restore.
                // A labeling service would do exactly this around every
                // human round-trip — through the compact binary codec,
                // which beats the JSON rendering severalfold once a
                // trained matcher's parameters dominate the snapshot.
                let snapshot = session.snapshot()?;
                let json_len = snapshot.encoded_len(SnapshotCodec::Json)?;
                let bytes = SnapshotCodec::Binary.encode(&snapshot)?;
                retry.run(|| backend.put("interactive", &bytes))?;
                drop(session);
                let stored = retry
                    .run(|| backend.get("interactive"))?
                    .expect("checkpoint vanished from the backend");
                let restored: SessionSnapshot = SnapshotCodec::Binary.decode(&stored)?;
                session = MatchSession::restore(dataset, &art.features, &restored)?;
                println!(
                    "(checkpointed {} bytes binary vs {} bytes JSON — {:.1}× smaller — \
                     through the faulty backend and resumed; training on {} labels …)\n",
                    bytes.len(),
                    json_len,
                    json_len as f64 / bytes.len() as f64,
                    session.labels_used()
                );
            }
            SessionPhase::Done => break,
            SessionPhase::SeedDraw | SessionPhase::Training => {}
        }
    }

    let stats = backend.stats();
    let report = session.into_report();
    println!(
        "run complete ({} transient backend faults ridden out over {} ops):",
        stats.transient, stats.ops
    );
    for it in &report.iterations {
        println!(
            "  iteration {}: {:>3} labels → test F1 {:>5.1}%",
            it.iteration, it.labels_used, it.test_f1_pct
        );
    }
    Ok(())
}
