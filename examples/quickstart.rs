//! Quickstart: generate a benchmark, run three battleship iterations,
//! watch F1 climb.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use battleship_em::al::{run_active_learning, BattleshipStrategy, ExperimentConfig};
use battleship_em::core::{serialize_pair, PerfectOracle, Rng};
use battleship_em::matcher::{FeatureConfig, Featurizer};
use battleship_em::synth::{generate, DatasetProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small Walmart-Amazon-shaped task (≈15 % of the paper's size so
    //    the example finishes in seconds).
    let profile = DatasetProfile::walmart_amazon().scaled(0.15);
    let mut rng = Rng::seed_from_u64(42);
    let dataset = generate(&profile, &mut rng)?;
    let stats = dataset.stats();
    println!("dataset `{}`:", dataset.name);
    println!(
        "  {} candidate pairs, {} train / {} valid / {} test, {:.1}% positives, {} attributes",
        stats.total_pairs,
        dataset.split().train.len(),
        dataset.split().valid.len(),
        dataset.split().test.len(),
        100.0 * stats.train_pos_rate,
        stats.n_attrs,
    );

    // 2. What the matcher actually reads: the DITTO-style serialization
    //    of a candidate pair (paper §2.1, Example 3).
    let (left, right) = dataset.pair_records(0)?;
    let serialized = serialize_pair(&dataset.left.schema, left, &dataset.right.schema, right);
    println!("\nfirst candidate pair, serialized for the matcher:\n  {serialized}\n");

    // 3. Featurize once; features are shared across all iterations.
    let featurizer = Featurizer::new(&dataset, FeatureConfig::default())?;
    let features = featurizer.featurize_all(&dataset)?;

    // 4. Three active-learning iterations with a budget of 50 labels each,
    //    on top of a 50-label balanced seed.
    let mut config = ExperimentConfig::default();
    config.al.iterations = 3;
    config.al.budget = 50;
    config.al.seed_size = 50;
    config.al.weak_budget = 50;
    config.matcher.epochs = 20;

    let mut strategy = BattleshipStrategy::new();
    let oracle = PerfectOracle::new();
    let report = run_active_learning(&dataset, &features, &mut strategy, &oracle, &config, 7)?;

    println!(
        "battleship active learning ({} oracle labels total):",
        report.total_labels()
    );
    for it in &report.iterations {
        println!(
            "  iteration {}: {:>3} labels → test F1 {:>5.1}%  ({} of {} new labels were matches)",
            it.iteration, it.labels_used, it.test_f1_pct, it.new_positives, it.new_labels
        );
    }
    println!("  area under the F1 curve: {:.1}", report.auc()?);
    Ok(())
}
