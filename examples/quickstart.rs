//! Quickstart: generate a benchmark, run three battleship iterations
//! through the session API, watch F1 climb.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use battleship_em::al::ExperimentConfig;
use battleship_em::api::{MatchSession, PerfectOracle, Scenario, SessionConfig, StrategySpec};
use battleship_em::core::serialize_pair;
use battleship_em::synth::DatasetProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small Walmart-Amazon-shaped task (≈15 % of the paper's size so
    //    the example finishes in seconds), materialized as a named,
    //    reproducible scenario: dataset + featurizer + pair features.
    let scenario = Scenario::synthetic_scaled(DatasetProfile::walmart_amazon(), 0.15, 42);
    let art = scenario.materialize()?;
    let dataset = &art.dataset;
    let stats = dataset.stats();
    println!("dataset `{}`:", dataset.name);
    println!(
        "  {} candidate pairs, {} train / {} valid / {} test, {:.1}% positives, {} attributes",
        stats.total_pairs,
        dataset.split().train.len(),
        dataset.split().valid.len(),
        dataset.split().test.len(),
        100.0 * stats.train_pos_rate,
        stats.n_attrs,
    );

    // 2. What the matcher actually reads: the DITTO-style serialization
    //    of a candidate pair (paper §2.1, Example 3).
    let (left, right) = dataset.pair_records(0)?;
    let serialized = serialize_pair(&dataset.left.schema, left, &dataset.right.schema, right);
    println!("\nfirst candidate pair, serialized for the matcher:\n  {serialized}\n");

    // 3. Three active-learning iterations with a budget of 50 labels each,
    //    on top of a 50-label balanced seed, driven through a session
    //    against the perfect oracle.
    let config = SessionConfig {
        experiment: ExperimentConfig::low_resource(3, 50),
        strategy: StrategySpec::Battleship,
        seed: 7,
    };
    let oracle = PerfectOracle::new();
    let mut session = MatchSession::new(dataset, &art.features, config)?;
    let report = session.drive(&oracle)?;

    println!(
        "battleship active learning ({} oracle labels total):",
        report.total_labels()
    );
    for it in &report.iterations {
        println!(
            "  iteration {}: {:>3} labels → test F1 {:>5.1}%  ({} of {} new labels were matches)",
            it.iteration, it.labels_used, it.test_f1_pct, it.new_positives, it.new_labels
        );
    }
    println!("  area under the F1 curve: {:.1}", report.auc()?);
    Ok(())
}
