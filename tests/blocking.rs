//! Integration tests for the sub-quadratic blocking tier: recall gates
//! against exhaustive ground truth, determinism/thread-invariance
//! properties, and the end-to-end path from a blocked record pool to a
//! trained session.

use std::collections::HashSet;

use proptest::prelude::*;

use battleship_em::al::ExperimentConfig;
use battleship_em::api::{
    block_tables, BlockingSpec, LshBlocking, MatchSession, Scenario, SessionConfig, SessionPhase,
    StrategySpec, MAX_EXHAUSTIVE_PAIRS,
};
use battleship_em::core::Rng;
use battleship_em::synth::{
    blocking_recall, generate_pool, BlockingConfig, DatasetProfile, PoolProfile,
};

const RECALL_GATE: f64 = 0.95;

/// LSH and token blocking both clear the recall gate against the pool's
/// ground-truth matches at a size where the exhaustive cross product is
/// still co-computable, and both emit strict subsets of it.
#[test]
fn blocking_recall_clears_gate_vs_exhaustive() {
    let profile = PoolProfile::products("it-recall", 3_000);
    let pool = generate_pool(&profile, &mut Rng::seed_from_u64(0xB0CA)).unwrap();
    assert!(pool.exhaustive_pairs() <= MAX_EXHAUSTIVE_PAIRS);

    let exhaustive = block_tables(&pool.left, &pool.right, &BlockingSpec::Exhaustive).unwrap();
    let exhaustive_set: HashSet<(u32, u32)> =
        exhaustive.candidates.iter().map(|p| p.key()).collect();
    assert_eq!(exhaustive.stats.reduction_ratio, 0.0);

    for (name, spec) in [
        ("lsh", BlockingSpec::Lsh(LshBlocking::default())),
        ("token", BlockingSpec::Token(BlockingConfig::default())),
    ] {
        let out = block_tables(&pool.left, &pool.right, &spec).unwrap();
        let recall = blocking_recall(&out.candidates, &pool.true_matches);
        assert!(
            recall >= RECALL_GATE,
            "{name} recall {recall:.4} below gate {RECALL_GATE}"
        );
        assert!(
            out.candidates
                .iter()
                .all(|p| exhaustive_set.contains(&p.key())),
            "{name} emitted a pair outside the cross product"
        );
        assert!(
            out.stats.reduction_ratio > 0.5,
            "{name} reduction {:.4} — blocking did not prune",
            out.stats.reduction_ratio
        );
    }
}

/// An exhaustive-spec scenario is bit-identical to the legacy
/// (pre-blocking) materialization path on a synthetic profile.
#[test]
fn exhaustive_spec_matches_legacy_materialization() {
    let legacy = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.03, 9);
    let spec = legacy.clone().with_blocking(BlockingSpec::Exhaustive);
    assert_eq!(legacy.name(), spec.name(), "Exhaustive must not rename");
    let a = legacy.materialize().unwrap();
    let b = spec.materialize().unwrap();
    assert_eq!(a.dataset.pairs(), b.dataset.pairs());
    assert_eq!(a.dataset.split(), b.dataset.split());
    for i in 0..a.dataset.len() {
        assert_eq!(a.dataset.ground_truth(i), b.dataset.ground_truth(i));
        assert_eq!(a.features.row(i), b.features.row(i));
    }
}

/// A blocked pool scenario materializes into ordinary artifacts that an
/// interactive session can train on end to end.
#[test]
fn blocked_pool_drives_a_session_end_to_end() {
    let scenario = Scenario::pool(PoolProfile::products("it-session", 1_500), 21)
        .with_blocking(BlockingSpec::Lsh(LshBlocking::default()));
    assert_eq!(scenario.name(), "it-session+lsh8x32");
    let art = scenario.materialize().unwrap();
    assert!(!art.dataset.is_empty(), "blocked pool produced no pairs");

    let mut experiment = ExperimentConfig::low_resource(1, 10);
    experiment.al.seed_size = 10;
    experiment.matcher.epochs = 2;
    experiment.battleship.kselect_sample = 64;
    let mut session = MatchSession::new(
        &art.dataset,
        &art.features,
        SessionConfig {
            experiment,
            strategy: StrategySpec::Random,
            seed: 5,
        },
    )
    .unwrap();
    loop {
        match session.advance().unwrap() {
            SessionPhase::AwaitingLabels => {
                let answers: Vec<_> = session
                    .next_query_batch()
                    .into_iter()
                    .map(|p| (p, art.dataset.ground_truth(p)))
                    .collect();
                session.submit_labels(&answers).unwrap();
            }
            SessionPhase::Done => break,
            _ => {}
        }
    }
    assert!(session.report().final_f1().is_some());
}

/// CSV-backed scenarios carry their own curated candidate lists and
/// cannot be re-blocked; an oversized exhaustive pool refuses to
/// materialize the cross product.
#[test]
fn invalid_blocking_combinations_error() {
    let csv = Scenario::csv_dir("nowhere", "/does/not/exist")
        .with_blocking(BlockingSpec::Lsh(LshBlocking::default()));
    let err = csv.materialize().unwrap_err().to_string();
    assert!(err.contains("re-block"), "unexpected error: {err}");

    let big = Scenario::pool(PoolProfile::products("it-big", 100_000), 1);
    let err = big.materialize().unwrap_err().to_string();
    assert!(
        err.contains("exhaustive") || err.contains("cap"),
        "unexpected error: {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any pool seed and size, LSH candidate sets are sorted,
    /// duplicate-free, deterministic across repeated runs, and
    /// identical under the forced-serial scheduler (thread-count
    /// invariance).
    #[test]
    fn lsh_candidates_are_deterministic_and_thread_invariant(
        seed in 0u64..1_000,
        n_records in 200usize..800,
    ) {
        let profile = PoolProfile::products("prop-pool", n_records);
        let pool = generate_pool(&profile, &mut Rng::seed_from_u64(seed)).unwrap();
        let spec = BlockingSpec::Lsh(LshBlocking::default());

        let first = block_tables(&pool.left, &pool.right, &spec).unwrap();
        let again = block_tables(&pool.left, &pool.right, &spec).unwrap();
        let serial =
            rayon::serial_scope(|| block_tables(&pool.left, &pool.right, &spec).unwrap());

        prop_assert!(
            first.candidates.windows(2).all(|w| w[0] < w[1]),
            "candidates must be sorted and duplicate-free"
        );
        prop_assert_eq!(&first.candidates, &again.candidates);
        prop_assert_eq!(&first.candidates, &serial.candidates);
        prop_assert_eq!(first.stats.n_candidates, first.candidates.len());
    }
}
