//! Session-API integration tests: the step-driven `MatchSession` must
//! reproduce the pre-redesign closed loop bit-for-bit (modulo
//! wall-clock) for every strategy, and snapshot→restore at any point of
//! a run must change nothing.

use std::sync::OnceLock;

use battleship_em::al::{run_active_learning, run_closed_loop, ExperimentConfig};
use battleship_em::api::{
    MatchSession, Oracle, PairIdx, PerfectOracle, RunReport, Scenario, SessionConfig, SessionPhase,
    StrategySpec,
};
use battleship_em::core::{Dataset, Label, Rng};
use battleship_em::matcher::{FeatureConfig, Featurizer};
use battleship_em::synth::{generate, DatasetProfile};
use battleship_em::vector::Embeddings;
use proptest::prelude::*;

fn quick_config() -> ExperimentConfig {
    let mut c = ExperimentConfig::default();
    c.al.budget = 20;
    c.al.iterations = 2;
    c.al.seed_size = 20;
    c.al.weak_budget = 20;
    c.matcher.epochs = 6;
    c.battleship.kselect_sample = 128;
    c
}

/// The shared benchmark task, materialized once for the whole file.
fn task() -> &'static (Dataset, Embeddings) {
    static TASK: OnceLock<(Dataset, Embeddings)> = OnceLock::new();
    TASK.get_or_init(|| {
        let p = DatasetProfile::amazon_google().scaled(0.04);
        let d = generate(&p, &mut Rng::seed_from_u64(5)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let feats = f.featurize_all(&d).unwrap();
        (d, feats)
    })
}

/// Zero the wall-clock fields (the only legitimately run-dependent
/// content of a report).
fn strip(mut r: RunReport) -> RunReport {
    for it in &mut r.iterations {
        it.train_secs = 0.0;
        it.select_secs = 0.0;
    }
    r
}

/// Serialize the session to a JSON checkpoint and rebuild it — the full
/// persistence path a server would exercise.
fn json_roundtrip<'a>(
    dataset: &'a Dataset,
    features: &'a Embeddings,
    session: &MatchSession<'_>,
) -> MatchSession<'a> {
    let snapshot = session.snapshot().unwrap();
    let json = serde_json::to_string(&snapshot).unwrap();
    let back: battleship_em::api::SessionSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snapshot, "snapshot JSON round-trip must be lossless");
    MatchSession::restore(dataset, features, &back).unwrap()
}

/// Drive a session to completion, optionally interrupting it with a
/// snapshot→JSON→restore round-trip at the `interrupt_batch`-th query
/// batch (`partial`: submit half the batch first; `after_submit`:
/// checkpoint in the Training phase instead of AwaitingLabels).
fn drive_interrupted(
    dataset: &Dataset,
    features: &Embeddings,
    config: SessionConfig,
    interrupt_batch: Option<usize>,
    partial: bool,
    after_submit: bool,
) -> RunReport {
    let oracle = PerfectOracle::new();
    let mut session = MatchSession::new(dataset, features, config).unwrap();
    let mut batch_idx = 0usize;
    loop {
        match session.advance().unwrap() {
            SessionPhase::AwaitingLabels => {
                let interrupt_here = interrupt_batch == Some(batch_idx);
                if interrupt_here && !after_submit {
                    if partial {
                        let pairs = session.next_query_batch();
                        let half: Vec<(PairIdx, Label)> = pairs[..pairs.len() / 2]
                            .iter()
                            .map(|&p| (p, oracle.label(dataset, p)))
                            .collect();
                        session.submit_labels(&half).unwrap();
                    }
                    session = json_roundtrip(dataset, features, &session);
                }
                let rest: Vec<(PairIdx, Label)> = session
                    .next_query_batch()
                    .into_iter()
                    .map(|p| (p, oracle.label(dataset, p)))
                    .collect();
                session.submit_labels(&rest).unwrap();
                if interrupt_here && after_submit {
                    assert_eq!(session.phase(), SessionPhase::Training);
                    session = json_roundtrip(dataset, features, &session);
                }
                batch_idx += 1;
            }
            SessionPhase::Done => break,
            _ => {}
        }
    }
    session.into_report()
}

/// Tentpole golden: the session-driven `run_active_learning` is
/// bit-identical (modulo wall-clock) to the preserved closed loop for
/// every `StrategySpec`, with identical oracle accounting.
#[test]
fn session_driver_matches_closed_loop_for_every_strategy() {
    let (d, feats) = task();
    let config = quick_config();
    for spec in StrategySpec::all() {
        let closed_oracle = PerfectOracle::new();
        let closed =
            run_closed_loop(d, feats, spec.build().as_mut(), &closed_oracle, &config, 11).unwrap();
        let session_oracle = PerfectOracle::new();
        let session = run_active_learning(
            d,
            feats,
            spec.build().as_mut(),
            &session_oracle,
            &config,
            11,
        )
        .unwrap();
        assert_eq!(
            strip(closed),
            strip(session),
            "session diverged from the closed loop for `{}`",
            spec.name()
        );
        assert_eq!(
            closed_oracle.queries(),
            session_oracle.queries(),
            "oracle accounting diverged for `{}`",
            spec.name()
        );
    }
}

/// Checkpointing the battleship strategy at every batch boundary (and
/// in the Training phase) reproduces the uninterrupted run exactly.
#[test]
fn battleship_snapshot_at_every_batch_reproduces_run() {
    let (d, feats) = task();
    let config = SessionConfig {
        experiment: quick_config(),
        strategy: StrategySpec::Battleship,
        seed: 9,
    };
    let uninterrupted = strip(drive_interrupted(
        d,
        feats,
        config.clone(),
        None,
        false,
        false,
    ));
    // seed batch + 2 iteration batches = 3 interruption points.
    for batch in 0..3 {
        for after_submit in [false, true] {
            let interrupted = strip(drive_interrupted(
                d,
                feats,
                config.clone(),
                Some(batch),
                false,
                after_submit,
            ));
            assert_eq!(
                uninterrupted, interrupted,
                "restore at batch {batch} (after_submit={after_submit}) diverged"
            );
        }
    }
}

/// A restored session keeps a half-labeled batch intact: only the
/// unanswered pairs are re-queried and the report is unchanged.
#[test]
fn partial_batch_survives_checkpoint() {
    let (d, feats) = task();
    let config = SessionConfig {
        experiment: quick_config(),
        strategy: StrategySpec::Random,
        seed: 4,
    };
    let uninterrupted = strip(drive_interrupted(
        d,
        feats,
        config.clone(),
        None,
        false,
        false,
    ));
    let interrupted = strip(drive_interrupted(
        d,
        feats,
        config.clone(),
        Some(1),
        true,
        false,
    ));
    assert_eq!(uninterrupted, interrupted);
}

/// Session bookkeeping and misuse errors.
#[test]
fn session_protocol_validation() {
    let (d, feats) = task();
    let config = SessionConfig {
        experiment: quick_config(),
        strategy: StrategySpec::Random,
        seed: 2,
    };
    let mut session = MatchSession::new(d, feats, config).unwrap();
    assert_eq!(session.phase(), SessionPhase::SeedDraw);
    assert!(session.next_query_batch().is_empty());
    // Labels before any batch exists are rejected.
    assert!(session.submit_labels(&[(0, Label::Match)]).is_err());

    assert_eq!(session.advance().unwrap(), SessionPhase::AwaitingLabels);
    let batch = session.next_query_batch();
    assert_eq!(batch.len(), 20);
    assert_eq!(session.labels_used(), 0);

    // A pair outside the batch is rejected; so is answering twice.
    let outside = (0..d.len())
        .find(|p| !batch.contains(p))
        .expect("pool larger than batch");
    assert!(session.submit_labels(&[(outside, Label::Match)]).is_err());
    let first = batch[0];
    session
        .submit_labels(&[(first, d.ground_truth(first))])
        .unwrap();
    assert!(session
        .submit_labels(&[(first, d.ground_truth(first))])
        .is_err());
    assert_eq!(session.labels_used(), 1);
    assert_eq!(session.next_query_batch().len(), 19);

    // Finish the batch: the session flips to Training by itself.
    let rest: Vec<(PairIdx, Label)> = session
        .next_query_batch()
        .into_iter()
        .map(|p| (p, d.ground_truth(p)))
        .collect();
    assert_eq!(
        session.submit_labels(&rest).unwrap(),
        SessionPhase::Training
    );
    assert_eq!(session.labels_used(), 20);

    // Train the seed model; one record appears.
    session.advance().unwrap();
    assert_eq!(session.records().len(), 1);
    assert!(session.matcher().is_some());
    assert_eq!(session.report().iterations.len(), 1);

    // Restoring a snapshot against the wrong dataset is rejected.
    let snapshot = session.snapshot().unwrap();
    let other = generate(
        &DatasetProfile::walmart_amazon().scaled(0.04),
        &mut Rng::seed_from_u64(1),
    )
    .unwrap();
    let other_feats = Featurizer::new(&other, FeatureConfig::default())
        .unwrap()
        .featurize_all(&other)
        .unwrap();
    assert!(MatchSession::restore(&other, &other_feats, &snapshot).is_err());

    // A caller-managed strategy cannot be checkpointed.
    let mut strategy = battleship_em::al::RandomStrategy::new();
    let borrowed = MatchSession::with_strategy(d, feats, &mut strategy, quick_config(), 1).unwrap();
    assert!(borrowed.snapshot().is_err());

    // Malformed snapshots are rejected at restore, not by a later
    // panic: out-of-range pool or pending-batch pairs, and a version
    // from the future.
    let mut bad = snapshot.clone();
    bad.pool[0] = d.len();
    assert!(MatchSession::restore(d, feats, &bad).is_err());
    let mut bad = snapshot.clone();
    bad.version += 1;
    assert!(MatchSession::restore(d, feats, &bad).is_err());
    let mut mid_batch = MatchSession::new(
        d,
        feats,
        SessionConfig {
            experiment: quick_config(),
            strategy: StrategySpec::Random,
            seed: 2,
        },
    )
    .unwrap();
    mid_batch.advance().unwrap();
    let mut bad = mid_batch.snapshot().unwrap();
    bad.pending.as_mut().unwrap().pairs[0] = d.len();
    assert!(MatchSession::restore(d, feats, &bad).is_err());
}

/// A strategy may select the same pair more than once per batch (the
/// closed loop labeled each occurrence); the batch must still complete.
#[test]
fn duplicate_pairs_in_a_batch_complete() {
    use battleship_em::api::{Selection, SelectionContext, SelectionStrategy};

    struct DupStrategy;
    impl SelectionStrategy for DupStrategy {
        fn name(&self) -> String {
            "dup".into()
        }
        fn select(
            &mut self,
            ctx: &mut SelectionContext<'_>,
            _rng: &mut Rng,
        ) -> battleship_em::core::Result<Selection> {
            Ok(Selection {
                to_label: vec![ctx.pool[0], ctx.pool[0]],
                weak: Vec::new(),
            })
        }
    }

    let (d, feats) = task();
    let mut config = quick_config();
    config.al.iterations = 1;
    let mut strategy = DupStrategy;
    let mut session = MatchSession::with_strategy(d, feats, &mut strategy, config, 6).unwrap();
    let oracle = PerfectOracle::new();
    let report = session.drive(&oracle).unwrap();
    assert_eq!(report.iterations.len(), 2);
    // Both occurrences were queried and recorded, as the closed loop
    // would have.
    assert_eq!(report.iterations[1].new_labels, 2);
    assert_eq!(oracle.queries(), 20 + 2);
}

/// Satellite: the happy-path CSV scenario — a tiny in-repo
/// Magellan-layout fixture materializes through `Scenario::csv_dir` and
/// supports a full (tiny) session run.
#[test]
fn csv_dir_scenario_happy_path() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/magellan_toy");
    let scenario = Scenario::csv_dir("magellan-toy", dir);
    assert_eq!(scenario.name(), "magellan-toy");
    let art = scenario.materialize().unwrap();
    assert_eq!(art.dataset.name, "magellan-toy");
    assert_eq!(art.dataset.len(), 25);
    assert_eq!(art.dataset.split().train.len(), 16);
    assert_eq!(art.dataset.split().valid.len(), 4);
    assert_eq!(art.dataset.split().test.len(), 5);
    assert_eq!(
        art.dataset.left.schema.attrs(),
        &["title", "manufacturer", "price"]
    );
    assert_eq!(art.features.len(), art.dataset.len());

    // Quoted CSV fields survive loading (RFC-4180 commas).
    let (_, r) = art
        .dataset
        .pair_records(art.dataset.split().test[1])
        .unwrap();
    assert_eq!(r.value(0), Some("final fantasy xi, online pc"));

    // A full (tiny) low-resource session runs to completion on it.
    let mut experiment = ExperimentConfig::low_resource(1, 2);
    experiment.al.seed_size = 6;
    experiment.matcher.epochs = 3;
    let config = SessionConfig {
        experiment,
        strategy: StrategySpec::Random,
        seed: 3,
    };
    let oracle = PerfectOracle::new();
    let mut session = MatchSession::new(&art.dataset, &art.features, config).unwrap();
    let report = session.drive(&oracle).unwrap();
    assert_eq!(report.dataset, "magellan-toy");
    assert_eq!(report.iterations.len(), 2); // seed model + 1 iteration
    assert_eq!(report.total_labels(), 8); // 6 seed + 2 selected
    assert_eq!(oracle.queries(), 8);
    // The balanced seed found its 3 matches and 3 non-matches.
    assert_eq!(report.iterations[0].new_positives, 3);
    for it in &report.iterations {
        assert!(it.test_f1_pct.is_finite());
    }
}

proptest! {
    // Full runs per case — keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: snapshot at ANY batch boundary, in either resting
    /// phase, with or without a half-submitted batch → restore → finish
    /// equals an uninterrupted run bit-for-bit.
    #[test]
    fn snapshot_anywhere_reproduces_uninterrupted_run(
        batch in 0usize..3,
        partial in any::<bool>(),
        after_submit in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let (d, feats) = task();
        let config = SessionConfig {
            experiment: quick_config(),
            strategy: StrategySpec::Random,
            seed,
        };
        // `partial` only applies before submission.
        let partial = partial && !after_submit;
        let uninterrupted = strip(drive_interrupted(d, feats, config.clone(), None, false, false));
        let interrupted = strip(drive_interrupted(
            d,
            feats,
            config,
            Some(batch),
            partial,
            after_submit,
        ));
        prop_assert_eq!(uninterrupted, interrupted);
    }
}
