//! Tier-1 gate: the workspace lints clean under its own static
//! analysis. Every `no-panic`, determinism, unsafe-hygiene and
//! error-taxonomy violation must be either fixed or carry an
//! `// em-lint: allow(rule) -- reason` marker before it can merge.

use em_lint::{find_workspace_root, run_workspace, LintConfig};
use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root with [workspace] manifest");
    let report = run_workspace(&root, &LintConfig::workspace_default()).expect("lint walk");
    // Guard against the walk silently finding nothing (wrong root,
    // over-eager skip list): the workspace has far more sources.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert_eq!(
        report.active_count(),
        0,
        "em-lint found violations:\n{}",
        report.to_human(false)
    );
}

#[test]
fn every_silenced_finding_has_an_audit_trail() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let report = run_workspace(&root, &LintConfig::workspace_default()).expect("lint walk");
    for f in report.findings.iter().filter(|f| !f.is_active()) {
        let reason = f.allow_reason.as_deref().unwrap_or_default();
        assert!(
            !reason.trim().is_empty(),
            "{}:{} allowed without a reason",
            f.file,
            f.line
        );
    }
}
