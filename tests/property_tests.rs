//! Property-based tests (proptest) over the core invariants of the
//! substrate data structures and algorithms.

use proptest::prelude::*;

use battleship_em::al::{distribute_budget, lpt_assign, lpt_start_offsets, positive_budget};
use battleship_em::cluster::{constrained_kmeans, ConstrainedConfig};
use battleship_em::core::{jaccard, tokenize, BinaryConfusion, F1Curve, Label, Rng, TokenSet};
use battleship_em::graph::{binary_entropy, connected_components, NodeKind, PairGraph};
use battleship_em::vector::{cosine, AnnPolicy, Embeddings};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Metrics always land in [0, 1] and F1 is 0 whenever tp is 0.
    #[test]
    fn metrics_are_bounded(preds in prop::collection::vec(any::<bool>(), 1..200),
                           truths in prop::collection::vec(any::<bool>(), 1..200)) {
        let n = preds.len().min(truths.len());
        let p: Vec<Label> = preds[..n].iter().map(|&b| Label::from_bool(b)).collect();
        let t: Vec<Label> = truths[..n].iter().map(|&b| Label::from_bool(b)).collect();
        let m = BinaryConfusion::from_labels(&p, &t).unwrap().metrics();
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert!((0.0..=1.0).contains(&m.accuracy));
    }

    /// Binary entropy is symmetric, bounded by [0, 1] and maximal at 0.5.
    #[test]
    fn entropy_properties(p in 0.0f64..=1.0) {
        let h = binary_entropy(p);
        prop_assert!((0.0..=1.0).contains(&h));
        prop_assert!((h - binary_entropy(1.0 - p)).abs() < 1e-9);
        prop_assert!(h <= binary_entropy(0.5) + 1e-12);
    }

    /// Jaccard is symmetric, bounded, and 1 for identical non-empty sets.
    #[test]
    fn jaccard_properties(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
        let ta = TokenSet::from_text(&a);
        let tb = TokenSet::from_text(&b);
        let j_ab = jaccard(&ta, &tb);
        let j_ba = jaccard(&tb, &ta);
        prop_assert!((j_ab - j_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&j_ab));
        prop_assert!((jaccard(&ta, &ta) - 1.0).abs() < 1e-12);
    }

    /// Tokenization is idempotent under re-joining: tokens contain no
    /// separators and re-tokenizing the joined tokens is a fixpoint.
    #[test]
    fn tokenize_fixpoint(text in "[a-zA-Z0-9,.;:!? -]{0,60}") {
        let tokens = tokenize(&text);
        let rejoined = tokens.join(" ");
        prop_assert_eq!(tokenize(&rejoined), tokens);
    }

    /// Cosine similarity is symmetric and bounded.
    #[test]
    fn cosine_properties(a in prop::collection::vec(-10.0f32..10.0, 4),
                         b in prop::collection::vec(-10.0f32..10.0, 4)) {
        let c1 = cosine(&a, &b);
        let c2 = cosine(&b, &a);
        prop_assert!((c1 - c2).abs() < 1e-6);
        prop_assert!((-1.0..=1.0).contains(&c1));
    }

    /// Eq. 2 budget distribution: shares sum to min(budget, Σ sizes) and
    /// never exceed component sizes.
    #[test]
    fn budget_distribution_invariants(budget in 0usize..300,
                                      sizes in prop::collection::vec(1usize..80, 1..12),
                                      seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let shares = distribute_budget(budget, &sizes, &mut rng).unwrap();
        prop_assert_eq!(shares.len(), sizes.len());
        let total: usize = shares.iter().sum();
        let cap: usize = sizes.iter().sum();
        prop_assert_eq!(total, budget.min(cap));
        for (s, z) in shares.iter().zip(&sizes) {
            prop_assert!(s <= z);
        }
    }

    /// The budget schedule over a whole (simulated) grid run: each
    /// iteration's positive/negative split covers exactly the iteration
    /// budget, per-iteration selections never exceed it, the running
    /// total never exceeds budget × iterations, and a zero-budget grid
    /// spends nothing and terminates.
    #[test]
    fn budget_schedule_invariants_over_iterations(
        budget in 0usize..200,
        iterations in 1usize..12,
        sizes in prop::collection::vec(1usize..500, 1..10),
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut total_selected = 0usize;
        for i in 0..iterations {
            // B⁺ schedule (§4.2): within budget, floored at B/2.
            let b_pos = positive_budget(budget, i);
            prop_assert!(b_pos <= budget);
            prop_assert!(b_pos >= budget / 2);
            // Monotone non-increasing in the iteration index.
            if i > 0 {
                prop_assert!(b_pos <= positive_budget(budget, i - 1));
            }
            // Each side's Eq. 2 distribution stays within its share.
            let pos_shares = distribute_budget(b_pos, &sizes, &mut rng).unwrap();
            let neg_shares = distribute_budget(budget - b_pos, &sizes, &mut rng).unwrap();
            let selected: usize =
                pos_shares.iter().sum::<usize>() + neg_shares.iter().sum::<usize>();
            prop_assert!(selected <= budget, "iteration selected {selected} > {budget}");
            total_selected += selected;
        }
        prop_assert!(total_selected <= budget * iterations);
        if budget == 0 {
            prop_assert_eq!(total_selected, 0, "zero-budget grid must spend nothing");
        }
    }

    /// The F1 curve's AUC of a constant curve equals value × span / 100.
    #[test]
    fn f1_curve_constant_auc(value in 0.0f64..100.0, span in 1.0f64..1000.0) {
        let curve = F1Curve::from_points(vec![(0.0, value), (span, value)]).unwrap();
        prop_assert!((curve.auc() - value * span / 100.0).abs() < 1e-6);
    }

    /// SIMD dispatch never changes results: the dispatched dot kernel is
    /// bit-identical across tiers, so a matcher's argmax label (and the
    /// probability itself) cannot depend on which ISA path ran. On
    /// hardware without AVX2 the override clamps to Portable and the
    /// property degenerates to self-comparison (still valid).
    #[test]
    fn simd_dispatch_never_changes_argmax_labels(
        dim in 1usize..40,
        hidden in 1usize..24,
        net_seed in any::<u64>(),
        xs in prop::collection::vec(-3.0f32..3.0, 40),
    ) {
        use battleship_em::matcher::Mlp;
        use battleship_em::matcher::mlp::sigmoid;
        use battleship_em::vector::{with_simd_tier, SimdTier};
        let mlp = Mlp::new(dim, &[hidden], &mut Rng::seed_from_u64(net_seed)).unwrap();
        let x = &xs[..dim];
        let (logit_p, repr_p) =
            with_simd_tier(SimdTier::Portable, || mlp.forward(x).unwrap());
        let (logit_a, repr_a) =
            with_simd_tier(SimdTier::Avx2, || mlp.forward(x).unwrap());
        prop_assert_eq!(logit_p.to_bits(), logit_a.to_bits());
        for (p, a) in repr_p.iter().zip(&repr_a) {
            prop_assert_eq!(p.to_bits(), a.to_bits());
        }
        // The label both tiers imply.
        prop_assert_eq!(sigmoid(logit_p) >= 0.5, sigmoid(logit_a) >= 0.5);
    }

    /// Connected components partition the node set, whatever the edges.
    #[test]
    fn components_partition(n in 1usize..40,
                            edges in prop::collection::vec((0usize..40, 0usize..40), 0..80)) {
        let mut g = PairGraph::new(
            vec![NodeKind::PredictedMatch; n],
            vec![0.5; n],
        ).unwrap();
        for (u, v) in edges {
            let (u, v) = (u % n, v % n);
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v, 0.5).unwrap();
            }
        }
        let comps = connected_components(&g);
        let mut all: Vec<usize> = comps.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        // Every edge stays inside one component.
        for (u, v, _) in g.edges() {
            let cu = comps.iter().position(|c| c.contains(&u));
            let cv = comps.iter().position(|c| c.contains(&v));
            prop_assert_eq!(cu, cv);
        }
    }
}

proptest! {
    // Clustering is costlier — fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Constrained k-means always returns a size-feasible partition when
    /// the instance is feasible.
    #[test]
    fn constrained_kmeans_respects_bounds(seed in any::<u64>(), k in 2usize..5) {
        let n = 60usize;
        let mut rng = Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.normal() as f32, rng.normal() as f32])
            .collect();
        let data = Embeddings::from_rows(&rows).unwrap();
        let min_size = 5usize;
        let max_size = 40usize;
        prop_assume!(k * min_size <= n && k * max_size >= n);
        let res = constrained_kmeans(
            &data,
            ConstrainedConfig {
                k,
                min_size,
                max_size,
                max_iters: 8,
                seed,
                mode: Default::default(),
                ann: Default::default(),
            },
        )
        .unwrap();
        prop_assert_eq!(res.sizes.iter().sum::<usize>(), n);
        for &s in &res.sizes {
            prop_assert!((min_size..=max_size).contains(&s), "size {}", s);
        }
    }

    /// ANN-assisted constrained assignment honours min/max capacity
    /// bounds for arbitrary feasible configs, including true shortlists
    /// (`top_m < k`) where the repair pass must work from the shortlist
    /// plus on-demand distances.
    #[test]
    fn ann_constrained_respects_bounds(
        seed in any::<u64>(),
        k in 2usize..12,
        top_m in 1usize..6,
        min_size in 0usize..6,
    ) {
        let n = 96usize;
        let mut rng = Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..4).map(|_| rng.normal() as f32).collect())
            .collect();
        let data = Embeddings::from_rows(&rows).unwrap();
        let max_size = 60usize;
        prop_assume!(k * min_size <= n && k * max_size >= n);
        let mut ann = AnnPolicy::always();
        ann.top_m = top_m;
        let res = constrained_kmeans(
            &data,
            ConstrainedConfig {
                k,
                min_size,
                max_size,
                max_iters: 6,
                seed,
                mode: Default::default(),
                ann,
            },
        )
        .unwrap();
        prop_assert_eq!(res.sizes.iter().sum::<usize>(), n);
        for &s in &res.sizes {
            prop_assert!((min_size..=max_size).contains(&s), "size {}", s);
        }
    }

    /// Golden: below the ANN-policy threshold the routed path is the
    /// exact path — bit-identical assignment and SSE for any seed. A
    /// full-coverage shortlist (`top_m >= k`) must also reproduce the
    /// exact result bit-for-bit.
    #[test]
    fn ann_below_threshold_bit_identical_to_exact(seed in any::<u64>(), k in 2usize..6) {
        let n = 60usize;
        let mut rng = Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.normal() as f32, rng.normal() as f32])
            .collect();
        let data = Embeddings::from_rows(&rows).unwrap();
        let base = ConstrainedConfig {
            k,
            min_size: 4,
            max_size: 40,
            max_iters: 6,
            seed,
            mode: Default::default(),
            ann: AnnPolicy::never(),
        };
        prop_assume!(k * base.min_size <= n && k * base.max_size >= n);
        let exact = constrained_kmeans(&data, base).unwrap();
        // Default policy: n = 60 is far below the 16384 crossover.
        let routed = constrained_kmeans(
            &data,
            ConstrainedConfig { ann: AnnPolicy::default(), ..base },
        )
        .unwrap();
        prop_assert_eq!(&exact.assignment, &routed.assignment);
        prop_assert_eq!(exact.sse.to_bits(), routed.sse.to_bits());
        // Forced ANN with a full-coverage shortlist (top_m 16 >= k).
        let full = constrained_kmeans(
            &data,
            ConstrainedConfig { ann: AnnPolicy::always(), ..base },
        )
        .unwrap();
        prop_assert_eq!(&exact.assignment, &full.assignment);
        prop_assert_eq!(exact.sse.to_bits(), full.sse.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// LPT scheduling monotonicity: under the engine's cost-model LPT
    /// assignment, more work never schedules strictly later — a heavier
    /// item's idealized start offset is at most a lighter item's. (LPT
    /// places items in descending cost order onto the least-loaded bin,
    /// and the minimum bin load is non-decreasing over placements.)
    #[test]
    fn lpt_start_offsets_are_monotone_in_cost(
        costs in prop::collection::vec(0.0f64..100.0, 0..40),
        n_bins in 1usize..9,
    ) {
        let starts = lpt_start_offsets(&costs, n_bins);
        prop_assert_eq!(starts.len(), costs.len());
        for i in 0..costs.len() {
            for j in 0..costs.len() {
                if costs[i] > costs[j] {
                    prop_assert!(
                        starts[i] <= starts[j],
                        "heavier item {} (cost {}) starts at {} after lighter item {} (cost {}) at {}",
                        i, costs[i], starts[i], j, costs[j], starts[j]
                    );
                }
            }
        }
    }

    /// LPT assignment is always a partition of the items, for any bin
    /// count — nothing dropped, nothing duplicated, bins never exceed
    /// the requested count.
    #[test]
    fn lpt_assign_partitions_the_items(
        costs in prop::collection::vec(0.0f64..100.0, 0..40),
        n_bins in 0usize..9,
    ) {
        let bins = lpt_assign(&costs, n_bins);
        prop_assert_eq!(bins.len(), n_bins.max(1));
        let mut seen: Vec<usize> = bins.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..costs.len()).collect::<Vec<_>>());
    }
}
