//! Serving-layer integration tests: the binary snapshot codec must
//! restore bit-identically to the JSON path for every strategy, a
//! crashed `SessionStore` must recover every session exactly, eviction
//! must never lose in-flight labels, and corrupt frames must always
//! decode to structured errors.

use std::sync::{Arc, OnceLock};

use battleship_em::al::ExperimentConfig;
use battleship_em::api::{
    DirBackend, Label, MatchSession, MemoryBackend, PairIdx, RunReport, Scenario, SessionConfig,
    SessionPhase, SessionSnapshot, SessionStore, SnapshotCodec, StrategySpec,
};
use battleship_em::core::EmError;
use proptest::prelude::*;

/// The shared scenario every test materializes through its store's
/// artifact cache (tiny, so each session finishes in well under a
/// second).
fn scenario() -> Scenario {
    Scenario::synthetic_scaled(
        battleship_em::synth::DatasetProfile::amazon_google(),
        0.04,
        5,
    )
}

fn quick_config(strategy: StrategySpec, seed: u64) -> SessionConfig {
    let mut experiment = ExperimentConfig::low_resource(2, 16);
    experiment.al.seed_size = 16;
    experiment.matcher.epochs = 4;
    experiment.battleship.kselect_sample = 128;
    SessionConfig {
        experiment,
        strategy,
        seed,
    }
}

/// Zero the wall-clock fields (the only legitimately run-dependent
/// content of a report).
fn strip(mut r: RunReport) -> RunReport {
    for it in &mut r.iterations {
        it.train_secs = 0.0;
        it.select_secs = 0.0;
    }
    r
}

/// Drive one stored session to completion through the store API,
/// answering batches from ground truth.
fn drive_stored(store: &SessionStore, id: &str) {
    loop {
        match store.get(id).unwrap().phase {
            SessionPhase::AwaitingLabels => {
                let batch = store.next_query_batch(id).unwrap();
                let artifacts = store.artifacts(id).unwrap();
                let answers: Vec<(PairIdx, Label)> = batch
                    .iter()
                    .map(|&p| (p, artifacts.dataset.ground_truth(p)))
                    .collect();
                store.submit_labels(id, &answers).unwrap();
            }
            SessionPhase::Done => break,
            SessionPhase::SeedDraw | SessionPhase::Training => {
                store.advance(id).unwrap();
            }
        }
    }
}

/// The uninterrupted reference run for (strategy, seed) on the shared
/// scenario.
fn reference_report(strategy: StrategySpec, seed: u64) -> RunReport {
    let art = scenario().materialize().unwrap();
    let oracle = battleship_em::api::PerfectOracle::new();
    let mut session =
        MatchSession::new(&art.dataset, &art.features, quick_config(strategy, seed)).unwrap();
    session.drive(&oracle).unwrap()
}

/// Tentpole golden: for every strategy, a session interrupted
/// mid-protocol and pushed through BOTH codecs — snapshot → JSON →
/// restore → snapshot → binary → restore — finishes with a report
/// bit-identical (modulo wall-clock) to the uninterrupted run, and both
/// decode paths agree on the snapshot value itself.
#[test]
fn json_then_binary_restore_is_bit_identical_for_every_strategy() {
    let art = scenario().materialize().unwrap();
    for spec in StrategySpec::all() {
        let uninterrupted = reference_report(spec, 11);
        let mut session =
            MatchSession::new(&art.dataset, &art.features, quick_config(spec, 11)).unwrap();
        let mut interrupted_batches = 0usize;
        loop {
            match session.advance().unwrap() {
                SessionPhase::AwaitingLabels => {
                    // Interrupt mid-batch: answer half, then round-trip
                    // the session through JSON and binary in sequence.
                    if interrupted_batches < 2 {
                        interrupted_batches += 1;
                        let pairs = session.next_query_batch();
                        let half: Vec<(PairIdx, Label)> = pairs[..pairs.len() / 2]
                            .iter()
                            .map(|&p| (p, art.dataset.ground_truth(p)))
                            .collect();
                        session.submit_labels(&half).unwrap();

                        let snap = session.snapshot().unwrap();
                        let json = SnapshotCodec::Json.encode(&snap).unwrap();
                        let from_json = SnapshotCodec::Json.decode(&json).unwrap();
                        assert_eq!(from_json, snap, "JSON round-trip lossy for {spec:?}");
                        let mid =
                            MatchSession::restore(&art.dataset, &art.features, &from_json).unwrap();

                        let snap2 = mid.snapshot().unwrap();
                        assert_eq!(snap2, snap, "restore changed state for {spec:?}");
                        let bytes = SnapshotCodec::Binary.encode(&snap2).unwrap();
                        let from_bin = SnapshotCodec::Binary.decode(&bytes).unwrap();
                        assert_eq!(from_bin, snap, "binary round-trip lossy for {spec:?}");
                        assert!(
                            bytes.len() < json.len(),
                            "binary ({} B) not smaller than JSON ({} B) for {spec:?}",
                            bytes.len(),
                            json.len()
                        );
                        session =
                            MatchSession::restore(&art.dataset, &art.features, &from_bin).unwrap();
                    }
                    let rest: Vec<(PairIdx, Label)> = session
                        .next_query_batch()
                        .into_iter()
                        .map(|p| (p, art.dataset.ground_truth(p)))
                        .collect();
                    session.submit_labels(&rest).unwrap();
                }
                SessionPhase::Done => break,
                SessionPhase::SeedDraw | SessionPhase::Training => {}
            }
        }
        assert!(interrupted_batches >= 2, "protocol too short for {spec:?}");
        assert_eq!(
            strip(session.into_report()),
            strip(uninterrupted),
            "codec chain diverged from the uninterrupted run for {spec:?}"
        );
    }
}

/// Acceptance: checkpoint all → drop store → reload from the (on-disk)
/// backend → finish reproduces every uninterrupted per-session report
/// exactly.
#[test]
fn store_crash_recovery_reproduces_every_report() {
    let dir = std::env::temp_dir().join(format!("serve-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plan: Vec<(String, StrategySpec, u64)> = StrategySpec::all()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (format!("sess-{i}"), s, 21 + i as u64))
        .collect();

    // Phase 1: a store drives every session partway, checkpoints all,
    // then "crashes" (is dropped).
    {
        let store = SessionStore::new(
            Box::new(DirBackend::new(&dir).unwrap()),
            SnapshotCodec::Binary,
        );
        store.register_scenario(scenario());
        for (id, spec, seed) in &plan {
            store
                .create(id, scenario().name(), quick_config(*spec, *seed))
                .unwrap();
            store.advance(id).unwrap(); // seed batch out
                                        // Leave a half-labeled batch in flight — the hardest state.
            let batch = store.next_query_batch(id).unwrap();
            let artifacts = store.artifacts(id).unwrap();
            let half: Vec<(PairIdx, Label)> = batch[..batch.len() / 2]
                .iter()
                .map(|&p| (p, artifacts.dataset.ground_truth(p)))
                .collect();
            store.submit_labels(id, &half).unwrap();
        }
        let sizes = store.checkpoint_all().unwrap();
        assert_eq!(sizes.len(), plan.len());
    }

    // Phase 2: a fresh store over the same directory recovers and
    // finishes every session.
    let store = SessionStore::new(
        Box::new(DirBackend::new(&dir).unwrap()),
        SnapshotCodec::Binary,
    );
    store.register_scenario(scenario());
    let recovery = store.recover().unwrap();
    assert_eq!(recovery.recovered.len(), plan.len());
    assert!(recovery.quarantined.is_empty());
    assert!(recovery.lost.is_empty());
    for (id, spec, seed) in &plan {
        assert_eq!(
            store.get(id).unwrap().phase,
            SessionPhase::AwaitingLabels,
            "recovered `{id}` lost its in-flight batch"
        );
        drive_stored(&store, id);
        assert_eq!(
            strip(store.report(id).unwrap()),
            strip(reference_report(*spec, *seed)),
            "recovered `{id}` diverged from the uninterrupted run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: evicting an in-flight (half-labeled) session
/// checkpoints first — evict → transparent reload → finish equals the
/// uninterrupted report, and the submitted half-batch survives.
#[test]
fn evict_of_in_flight_session_checkpoints_first() {
    let backend = Arc::new(MemoryBackend::new());
    let store = SessionStore::new(Box::new(backend.clone()), SnapshotCodec::Binary);
    store.register_scenario(scenario());
    store
        .create(
            "live",
            scenario().name(),
            quick_config(StrategySpec::Dal, 31),
        )
        .unwrap();
    store.advance("live").unwrap();
    let batch = store.next_query_batch("live").unwrap();
    let artifacts = store.artifacts("live").unwrap();
    let half: Vec<(PairIdx, Label)> = batch[..batch.len() / 2]
        .iter()
        .map(|&p| (p, artifacts.dataset.ground_truth(p)))
        .collect();
    store.submit_labels("live", &half).unwrap();
    let labels_before = store.get("live").unwrap().labels_used;
    assert_eq!(labels_before, half.len());

    store.evict("live").unwrap();
    assert_eq!(store.resident_len(), 0);
    // The checkpoint happened: the backend holds a decodable snapshot
    // with the half-batch intact.
    let bytes = {
        use battleship_em::api::SnapshotBackend as _;
        backend.get("live").unwrap().expect("evict must checkpoint")
    };
    let snap: SessionSnapshot = SnapshotCodec::Binary.decode(&bytes).unwrap();
    assert_eq!(snap.pending.as_ref().unwrap().received.len(), half.len());

    // Operations on the evicted id transparently reload and finish the
    // run exactly as if nothing happened.
    assert_eq!(store.get("live").unwrap().labels_used, labels_before);
    drive_stored(&store, "live");
    assert_eq!(
        strip(store.report("live").unwrap()),
        strip(reference_report(StrategySpec::Dal, 31)),
        "evict→reload→finish diverged from the uninterrupted run"
    );
}

/// Parallel stepping is bit-identical to forced-serial stepping for a
/// mixed-strategy session population.
#[test]
fn step_ready_sessions_matches_serial_stepping() {
    let run = |serial: bool| -> Vec<RunReport> {
        let store = SessionStore::new(Box::new(MemoryBackend::new()), SnapshotCodec::Binary);
        store.register_scenario(scenario());
        let ids: Vec<String> = StrategySpec::all()
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let id = format!("p{i}");
                store
                    .create(&id, scenario().name(), quick_config(s, 40 + i as u64))
                    .unwrap();
                id
            })
            .collect();
        let drive = || loop {
            for id in &ids {
                let batch = store.next_query_batch(id).unwrap();
                if batch.is_empty() {
                    continue;
                }
                let artifacts = store.artifacts(id).unwrap();
                let answers: Vec<(PairIdx, Label)> = batch
                    .iter()
                    .map(|&p| (p, artifacts.dataset.ground_truth(p)))
                    .collect();
                store.submit_labels(id, &answers).unwrap();
            }
            if store.step_ready_sessions().unwrap().is_empty() {
                break;
            }
        };
        if serial {
            rayon::serial_scope(drive);
        } else {
            drive();
        }
        ids.iter().map(|id| store.report(id).unwrap()).collect()
    };
    let parallel: Vec<RunReport> = run(false).into_iter().map(strip).collect();
    let serial: Vec<RunReport> = run(true).into_iter().map(strip).collect();
    assert_eq!(parallel, serial);
}

/// A mid-run snapshot with every optional field populated, shared by
/// the corruption proptests.
fn snapshot_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let art = scenario().materialize().unwrap();
        let mut session = MatchSession::new(
            &art.dataset,
            &art.features,
            quick_config(StrategySpec::Random, 13),
        )
        .unwrap();
        session.advance().unwrap();
        let pairs = session.next_query_batch();
        let answers: Vec<(PairIdx, Label)> = pairs
            .iter()
            .map(|&p| (p, art.dataset.ground_truth(p)))
            .collect();
        session.submit_labels(&answers).unwrap();
        session.advance().unwrap(); // train → next batch pending
        let half: Vec<(PairIdx, Label)> = session.next_query_batch()[..2]
            .iter()
            .map(|&p| (p, art.dataset.ground_truth(p)))
            .collect();
        session.submit_labels(&half).unwrap();
        session.snapshot().unwrap().to_bytes()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Satellite: `from_bytes` on a truncated frame is always a
    /// structured codec error — never a panic, never a bogus decode.
    #[test]
    fn truncated_frames_decode_to_structured_errors(cut_frac in 0.0f64..1.0) {
        let bytes = snapshot_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        match SessionSnapshot::from_bytes(&bytes[..cut.min(bytes.len() - 1)]) {
            Err(EmError::Codec(_)) => {}
            Err(other) => prop_assert!(false, "non-codec error {other}"),
            Ok(_) => prop_assert!(false, "truncated frame decoded"),
        }
    }

    /// Satellite: any single flipped bit anywhere in the frame is
    /// detected (checksum, magic, version or tag validation).
    #[test]
    fn bit_flipped_frames_decode_to_structured_errors(
        pos_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let bytes = snapshot_bytes();
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        let mut bad = bytes.clone();
        bad[pos] ^= 1 << bit;
        match SessionSnapshot::from_bytes(&bad) {
            Err(EmError::Codec(_)) => {}
            Err(other) => prop_assert!(false, "non-codec error {other}"),
            Ok(_) => prop_assert!(false, "flip at byte {pos} bit {bit} went undetected"),
        }
    }
}
