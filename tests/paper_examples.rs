//! Integration tests pinning the paper's worked examples end-to-end
//! through the public facade (`battleship_em::…`), complementing the
//! per-crate unit tests that cover them at module level.

use battleship_em::core::{serialize_pair, Record, RecordId, Rng, Schema};
use battleship_em::graph::{build_graph, spatial_confidence, EdgeConfig, MatrixSim, NodeKind};

/// Paper Example 3: the DITTO serialization of the Amazon-Google match
/// pair, byte for byte.
#[test]
fn example3_serialization() {
    let schema = Schema::new(["title", "manufacturer", "price"]).unwrap();
    let amazon = Record::new(
        RecordId(0),
        ["sims 2 glamour life stuff pack", "aspyr media", "24.99"],
    );
    let google = Record::new(
        RecordId(1),
        [
            "aspyr media inc sims 2 glamour life stuff pack",
            "",
            "23.44",
        ],
    );
    assert_eq!(
        serialize_pair(&schema, &amazon, &schema, &google),
        "[CLS] [COL] title [VAL] sims 2 glamour life stuff pack [COL] manufacturer \
         [VAL] aspyr media [COL] price [VAL] 24.99 [SEP] [COL] title [VAL] aspyr \
         media inc sims 2 glamour life stuff pack [COL] manufacturer [VAL] [COL] \
         price [VAL] 23.44"
    );
}

fn paper_graph() -> battleship_em::graph::PairGraph {
    // Table 2's off-diagonal similarities, s1..s8 = nodes 0..7.
    let sim = MatrixSim::from_entries(
        8,
        &[
            (0, 1, 0.9),
            (0, 2, 0.5),
            (0, 3, 0.6),
            (0, 4, 0.85),
            (0, 5, 0.5),
            (0, 6, 0.9),
            (0, 7, 0.82),
            (1, 2, 0.55),
            (1, 3, 0.58),
            (1, 4, 0.92),
            (1, 5, 0.45),
            (1, 6, 0.83),
            (1, 7, 0.6),
            (2, 3, 0.75),
            (2, 4, 0.67),
            (2, 5, 0.56),
            (2, 6, 0.4),
            (2, 7, 0.38),
            (3, 4, 0.88),
            (3, 5, 0.84),
            (3, 6, 0.5),
            (3, 7, 0.55),
            (4, 5, 0.57),
            (4, 6, 0.63),
            (4, 7, 0.65),
            (5, 6, 0.41),
            (5, 7, 0.54),
            (6, 7, 0.64),
        ],
    )
    .unwrap();
    let kinds = vec![
        NodeKind::PredictedMatch,
        NodeKind::PredictedMatch,
        NodeKind::PredictedMatch,
        NodeKind::PredictedMatch,
        NodeKind::PredictedNonMatch,
        NodeKind::PredictedNonMatch,
        NodeKind::LabeledMatch,
        NodeKind::LabeledNonMatch,
    ];
    let confs = vec![0.95, 0.92, 0.96, 0.94, 0.98, 0.88, 1.0, 1.0];
    build_graph(
        &sim,
        &kinds,
        &confs,
        &[(0..8).collect()],
        EdgeConfig {
            q: 2,
            extra_ratio: 0.15,
        },
    )
    .unwrap()
}

/// Paper Example 4: the two extra edges are s1–s5 and s5–s7; the
/// labeled–labeled pair s7–s8 is never connected.
#[test]
fn example4_edge_creation() {
    let g = paper_graph();
    assert!(g.has_edge(0, 4), "extra edge s1–s5 missing");
    assert!(g.has_edge(4, 6), "extra edge s5–s7 missing");
    assert!(
        !g.has_edge(6, 7),
        "labeled–labeled edge s7–s8 must not exist"
    );
    assert_eq!(g.n_edges(), 13);
}

/// Paper Example 7: ϕ̃(s1) ≈ 0.51.
#[test]
fn example7_spatial_confidence() {
    let g = paper_graph();
    let phi = spatial_confidence(&g, 0).unwrap();
    assert!((phi - 0.51).abs() < 0.005, "ϕ̃(s1) = {phi}");
}

/// Paper Example 6: Eq. 2 budget shares for B⁺ = 50 over components of
/// sizes 2×500, 4×300, 4×200.
#[test]
fn example6_budget_distribution() {
    let sizes = [500usize, 500, 300, 300, 300, 300, 200, 200, 200, 200];
    let mut rng = Rng::seed_from_u64(0);
    let shares = battleship_em::al::distribute_budget(50, &sizes, &mut rng).unwrap();
    // Floor shares 8/8/5/5/5/5/3/3/3/3 plus a residue of 2.
    assert_eq!(shares.iter().sum::<usize>(), 50);
    for (share, base) in shares.iter().zip([8, 8, 5, 5, 5, 5, 3, 3, 3, 3]) {
        assert!(*share == base || *share == base + 1, "{shares:?}");
    }
}

/// §4.2's positive-budget schedule: B⁺ starts at 80 % and decays to the
/// 50 % floor.
#[test]
fn positive_budget_schedule() {
    assert_eq!(battleship_em::al::positive_budget(100, 0), 80);
    assert_eq!(battleship_em::al::positive_budget(100, 6), 50);
    assert_eq!(battleship_em::al::positive_budget(100, 99), 50);
}
