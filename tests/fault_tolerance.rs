//! Fault-tolerance properties of the serve layer: the retry schedule
//! is deterministic and triple-bounded, generational recovery never
//! panics on arbitrary garbage frames (it quarantines and falls back),
//! and a store over a fault-injecting backend rides transient faults
//! out without losing a session.

use std::sync::{Arc, OnceLock};

use battleship_em::al::ExperimentConfig;
use battleship_em::api::{
    ArtifactCache, Fault, FaultPlan, FaultyBackend, Label, MatchSession, MemoryBackend, PairIdx,
    RetryPolicy, Scenario, SessionConfig, SessionPhase, SessionStore, SnapshotBackend,
    SnapshotCodec, StrategySpec,
};
use battleship_em::core::EmError;
use proptest::prelude::*;

/// The shared scenario (tiny, so each session finishes in well under a
/// second).
fn scenario() -> Scenario {
    Scenario::synthetic_scaled(
        battleship_em::synth::DatasetProfile::amazon_google(),
        0.04,
        5,
    )
}

fn quick_config(strategy: StrategySpec, seed: u64) -> SessionConfig {
    let mut experiment = ExperimentConfig::low_resource(1, 10);
    experiment.al.seed_size = 10;
    experiment.matcher.epochs = 2;
    experiment.battleship.kselect_sample = 128;
    SessionConfig {
        experiment,
        strategy,
        seed,
    }
}

/// One materialization shared by every proptest case — the artifacts
/// are immutable, so every store can borrow the same cache.
fn shared_cache() -> Arc<ArtifactCache> {
    static CACHE: OnceLock<Arc<ArtifactCache>> = OnceLock::new();
    CACHE.get_or_init(|| Arc::new(ArtifactCache::new())).clone()
}

/// A valid binary checkpoint frame for a mid-protocol session, built
/// once (proptest cases only need the bytes).
fn good_frame() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let art = shared_cache().get_or_materialize(&scenario()).unwrap();
        let mut session = MatchSession::new(
            &art.dataset,
            &art.features,
            quick_config(StrategySpec::Random, 13),
        )
        .unwrap();
        session.advance().unwrap();
        let pairs = session.next_query_batch();
        let answers: Vec<(PairIdx, Label)> = pairs
            .iter()
            .map(|&p| (p, art.dataset.ground_truth(p)))
            .collect();
        session.submit_labels(&answers).unwrap();
        SnapshotCodec::Binary
            .encode(&session.snapshot().unwrap())
            .unwrap()
    })
}

/// Drive one stored session to completion, answering from ground truth.
fn drive_stored(store: &SessionStore, id: &str) {
    loop {
        match store.get(id).unwrap().phase {
            SessionPhase::AwaitingLabels => {
                let batch = store.next_query_batch(id).unwrap();
                let artifacts = store.artifacts(id).unwrap();
                let answers: Vec<(PairIdx, Label)> = batch
                    .iter()
                    .map(|&p| (p, artifacts.dataset.ground_truth(p)))
                    .collect();
                store.submit_labels(id, &answers).unwrap();
            }
            SessionPhase::Done => break,
            SessionPhase::SeedDraw | SessionPhase::Training => {
                store.advance(id).unwrap();
            }
        }
    }
}

/// Split proptest-drawn byte values into `n` (possibly empty) frames.
fn split_into_frames(raw: &[usize], n: usize) -> Vec<Vec<u8>> {
    let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
    let per = bytes.len() / n;
    (0..n)
        .map(|i| {
            let end = if i + 1 == n {
                bytes.len()
            } else {
                (i + 1) * per
            };
            bytes[i * per..end].to_vec()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Satellite: the retry backoff schedule is a pure function of the
    /// policy (same seed ⇒ same schedule, byte for byte) and honours
    /// all three bounds: attempt cap, per-delay cap, total budget.
    #[test]
    fn retry_schedule_is_deterministic_and_triple_bounded(
        seed in any::<u64>(),
        max_attempts in 1usize..16,
        base in 1u64..5_000,
        max_delay in 1u64..50_000,
        budget in 0u64..200_000,
    ) {
        let policy = RetryPolicy {
            max_attempts,
            base_delay_micros: base,
            max_delay_micros: max_delay,
            total_budget_micros: budget,
            jitter_seed: seed,
        };
        let schedule = policy.schedule();
        prop_assert_eq!(&schedule, &policy.schedule(), "schedule not reproducible");
        prop_assert_eq!(
            &schedule,
            &policy.clone().with_seed(seed).schedule(),
            "with_seed(same seed) changed the schedule"
        );
        prop_assert!(schedule.len() < max_attempts, "attempt cap violated");
        prop_assert!(
            schedule.iter().all(|&d| d <= max_delay),
            "per-delay cap violated: {:?}", schedule
        );
        prop_assert!(
            schedule.iter().sum::<u64>() <= budget,
            "total budget violated: {:?} sums past {}", schedule, budget
        );
    }

    /// Satellite: successive delays never shrink by more than the
    /// jitter floor allows — the schedule is monotonically bounded by
    /// the doubling curve from below and above.
    #[test]
    fn retry_schedule_follows_the_capped_doubling_curve(seed in any::<u64>()) {
        let policy = RetryPolicy::default().with_seed(seed);
        let schedule = policy.schedule();
        let mut base = policy.base_delay_micros;
        for (i, &d) in schedule.iter().enumerate() {
            // Jitter scales each delay into [½·base, base].
            prop_assert!(
                d >= base / 2 && d <= base,
                "delay {i} = {d} outside [{}, {base}]", base / 2
            );
            base = base.saturating_mul(2).min(policy.max_delay_micros);
        }
    }

    /// Tentpole property: arbitrary garbage planted as the *newest*
    /// generations of a session's checkpoint history never panics the
    /// store — reload quarantines the garbage and restores from the
    /// good frame underneath, bit-identically.
    #[test]
    fn garbage_newest_generations_are_quarantined_not_fatal(
        n_frames in 1usize..3,
        raw in prop::collection::vec(0usize..256, 0..600),
    ) {
        let garbage = split_into_frames(&raw, n_frames);
        let backend = Arc::new(MemoryBackend::with_keep(8));
        backend.put("s", good_frame()).unwrap();
        for frame in &garbage {
            backend.put("s", frame).unwrap();
        }
        let store = SessionStore::with_cache(
            Box::new(backend.clone()),
            SnapshotCodec::Binary,
            shared_cache(),
        );
        store.register_scenario(scenario());
        let report = store.recover().unwrap();
        // Every garbage frame that fails to decode is quarantined; the
        // session itself must come back from the good frame. (A garbage
        // frame could in principle be a valid empty-ish frame only if
        // the codec accepted it — the magic/checksum make that
        // impossible for random bytes.)
        prop_assert_eq!(&report.recovered, &vec!["s".to_string()]);
        prop_assert_eq!(report.quarantined.len(), garbage.len());
        prop_assert!(report.lost.is_empty());
        let status = store.get("s").unwrap();
        prop_assert_eq!(status.phase, SessionPhase::Training);
    }

    /// Tentpole property: when *every* generation is garbage, recovery
    /// still never panics — the session is reported lost with all its
    /// frames quarantined, and operations on it fail with a structured
    /// error.
    #[test]
    fn all_garbage_histories_are_structured_losses(
        n_frames in 1usize..4,
        raw in prop::collection::vec(0usize..256, 0..600),
    ) {
        let garbage = split_into_frames(&raw, n_frames);
        let backend = Arc::new(MemoryBackend::with_keep(8));
        for frame in &garbage {
            backend.put("junk", frame).unwrap();
        }
        let store = SessionStore::with_cache(
            Box::new(backend.clone()),
            SnapshotCodec::Binary,
            shared_cache(),
        );
        store.register_scenario(scenario());
        let report = store.recover().unwrap();
        prop_assert!(report.recovered.is_empty());
        prop_assert_eq!(&report.lost, &vec!["junk".to_string()]);
        prop_assert_eq!(report.quarantined.len(), garbage.len());
        match store.get("junk") {
            Err(EmError::Storage(msg)) => prop_assert!(msg.contains("lost")),
            other => prop_assert!(false, "expected structured loss, got {:?}", other.map(|_| ())),
        }
    }
}

/// Integration: a store whose backend injects transient faults, torn
/// writes and crash-before-commit still drives a mixed population to
/// completion — the retry policy and generational recovery absorb all
/// of it.
#[test]
fn store_over_faulty_backend_completes_under_transient_chaos() {
    let backend = Arc::new(FaultyBackend::new(
        MemoryBackend::with_keep(8),
        FaultPlan::transient(0x7E57_FA11, 0.25),
    ));
    let store = SessionStore::with_cache(
        Box::new(backend.clone()),
        SnapshotCodec::Binary,
        shared_cache(),
    )
    .with_retry_policy(RetryPolicy {
        base_delay_micros: 10,
        max_delay_micros: 200,
        total_budget_micros: 20_000,
        ..RetryPolicy::default()
    });
    store.register_scenario(scenario());
    for (i, strategy) in StrategySpec::all().iter().enumerate() {
        store
            .create(
                &format!("s{i}"),
                scenario().name(),
                quick_config(*strategy, 40 + i as u64),
            )
            .unwrap();
    }
    // Checkpoint traffic (the faultiest path), one forced torn write,
    // one forced silent corruption, an eviction round-trip — then every
    // session must still finish.
    backend.force_on_put(Fault::TornWrite);
    store.checkpoint_all().unwrap();
    backend.force_on_put(Fault::Corrupt);
    store.checkpoint("s0").unwrap();
    store.evict("s0").unwrap();
    for i in 0..StrategySpec::all().len() {
        drive_stored(&store, &format!("s{i}"));
        assert_eq!(
            store.get(&format!("s{i}")).unwrap().phase,
            SessionPhase::Done
        );
    }
    let stats = backend.stats();
    assert!(stats.transient > 0, "fault plan injected nothing — vacuous");
    assert!(stats.torn_writes >= 1 && stats.corruptions >= 1);
}
