//! Golden-report test: the canonical (timing-zeroed) JSON of a pinned
//! tiny experiment grid must be bit-identical to the committed
//! fixture. This is the cross-session complement to the engine's
//! serial-vs-parallel invariance test — it catches determinism
//! regressions (hash-order iteration, ambient clock/env reads) that
//! change results between *builds*, not just between schedulers.
//!
//! Regenerate after an intentional algorithm change with:
//! `EM_UPDATE_GOLDEN=1 cargo test --test report_golden`
//!
//! The run is pinned to the AVX2 tier family: Portable and AVX2 are
//! bit-identical by the kernel's reduction-order contract, so the
//! fixture holds on any x86 host and on non-x86 (where the pin clamps
//! to Portable). AVX-512 ships under a *tolerance* contract instead
//! (FMA changes the bits) — letting it float here would fork the
//! fixture by host CPU. Its cross-tier agreement is gated separately in
//! `tests/simd_tolerance.rs`.

use battleship_em::al::{ExperimentConfig, ExperimentGrid, GridConfig, Scenario, StrategySpec};
use battleship_em::synth::DatasetProfile;
use battleship_em::vector::{with_simd_tier, SimdTier};

fn golden_path() -> String {
    format!(
        "{}/tests/fixtures/golden_grid_report.json",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn tiny_grid() -> ExperimentGrid {
    let mut experiment = ExperimentConfig::default();
    experiment.al.budget = 20;
    experiment.al.iterations = 2;
    experiment.al.seed_size = 20;
    experiment.al.weak_budget = 20;
    experiment.matcher.epochs = 6;
    experiment.battleship.kselect_sample = 128;
    ExperimentGrid::new(
        vec![Scenario::synthetic_scaled(
            DatasetProfile::amazon_google(),
            0.04,
            5,
        )],
        vec![StrategySpec::Random, StrategySpec::Battleship],
        GridConfig {
            experiment,
            master_seed: 0x0B17_5EED,
            n_seeds: 1,
            include_baselines: false,
        },
    )
}

#[test]
fn canonical_report_matches_committed_golden() {
    // Serial scope: the tier override is thread-local, so the grid must
    // not fan out onto workers that would fall back to the detected tier.
    let json = rayon::serial_scope(|| with_simd_tier(SimdTier::Avx2, || tiny_grid().run()))
        .expect("grid run")
        .canonical()
        .to_json()
        .expect("to_json");
    let path = golden_path();
    if std::env::var_os("EM_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, json.as_bytes()).expect("writing golden fixture");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("golden fixture missing — regenerate with EM_UPDATE_GOLDEN=1");
    assert_eq!(
        json, want,
        "canonical grid report diverged from the committed golden fixture; \
         if the change is intentional, regenerate with \
         `EM_UPDATE_GOLDEN=1 cargo test --test report_golden`"
    );
}
