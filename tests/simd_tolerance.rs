//! The AVX-512 tolerance contract, enforced end to end.
//!
//! Portable and AVX2 are bit-identical by construction (same lane
//! structure, no FMA — the kernel's reduction-order contract). AVX-512
//! is allowed to differ: its kernels use single-rounding FMA, so each
//! dot product may deviate from the portable bits — but only within the
//! standard floating-point error budget. This suite is the gate that
//! permits AVX-512 as the *detected default* tier:
//!
//! 1. a golden harness bounding every kernel's deviation from the
//!    portable tier by `2·γ(n)·Σ|aᵢbᵢ|` (γ(n) = n·ε/(1−n·ε), ε = 2⁻²⁴:
//!    each tier's error vs the exact sum is ≤ γ(n)·Σ|aᵢbᵢ|, Higham
//!    eq. 3.5, so two tiers differ by at most twice that), plus an ULP
//!    sanity bound on well-conditioned inputs;
//! 2. an argmax-stability proptest: whenever a score gap exceeds the
//!    combined error budget, every tier picks the same argmax — labels
//!    and top-k winners cannot flip across tiers outside provably
//!    ambiguous (FP-tie) cases;
//! 3. an end-to-end ΔF1 gate: a pinned tiny grid run under the AVX-512
//!    tier must reproduce the portable tier's final F1 within a small
//!    tolerance on every cell.
//!
//! On hosts without AVX-512 the override clamps to the best available
//! tier, so every check degenerates to comparing a tier with itself and
//! the suite stays green — the contract is enforced exactly where the
//! new code paths actually run.

use proptest::prelude::*;

use battleship_em::al::{ExperimentConfig, ExperimentGrid, GridConfig, Scenario, StrategySpec};
use battleship_em::synth::DatasetProfile;
use battleship_em::vector::{
    gemm, gemm_bias_relu, kernel, sq_dist, ulp_diff, with_simd_tier, SimdTier,
};

const TIERS: [SimdTier; 3] = [SimdTier::Portable, SimdTier::Avx2, SimdTier::Avx512];

/// `2·γ(n)·Σ|aᵢbᵢ|` — the maximum distance between two correctly
/// implemented summation orders of the same dot product.
fn dot_budget(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().max(1) as f64;
    let eps = (f32::EPSILON as f64) / 2.0;
    let gamma = n * eps / (1.0 - n * eps);
    let sum_abs: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64 * y as f64).abs())
        .sum();
    (2.0 * gamma * sum_abs) as f32
}

/// Deterministic pseudorandom `f32` in [-1, 1) (xorshift; no ambient
/// randomness so the golden harness is reproducible).
fn lcg(state: &mut u64) -> f32 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    ((*state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
}

fn fill(state: &mut u64, n: usize) -> Vec<f32> {
    (0..n).map(|_| lcg(state)).collect()
}

/// Golden harness: every tier's `dot` and `sq_dist` stay within the
/// error budget of the portable tier, across lengths covering all
/// vector-width remainder cases (32-lane AVX-512 chunks, 16-lane AVX2
/// chunks, scalar tails).
#[test]
fn dot_and_sq_dist_match_portable_within_budget() {
    let mut state = 0x5EED_CAFE_u64;
    for len in (1..=130).chain([192, 255, 256, 300, 384]) {
        let a = fill(&mut state, len);
        let b = fill(&mut state, len);
        let reference = with_simd_tier(SimdTier::Portable, || kernel::dot(&a, &b));
        let budget = dot_budget(&a, &b);
        for tier in TIERS {
            let got = with_simd_tier(tier, || kernel::dot(&a, &b));
            assert!(
                (got - reference).abs() <= budget,
                "dot len={len} tier={:?}: {got} vs {reference} (budget {budget})",
                tier
            );
            // ULP sanity on well-conditioned results: when there is no
            // catastrophic cancellation, the tiers land within a few
            // hundred representable steps of each other.
            if reference.abs() > budget * 8.0 {
                assert!(
                    ulp_diff(got, reference) <= 512,
                    "dot len={len} tier={:?}: {} ULPs apart",
                    tier,
                    ulp_diff(got, reference)
                );
            }
            let sq_ref = with_simd_tier(SimdTier::Portable, || sq_dist(&a, &b));
            let sq = with_simd_tier(tier, || sq_dist(&a, &b));
            // d·d terms are the squared differences; budget with the
            // difference vector as both operands.
            let d: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
            assert!(
                (sq - sq_ref).abs() <= dot_budget(&d, &d),
                "sq_dist len={len} tier={:?}: {sq} vs {sq_ref}",
                tier
            );
        }
    }
}

/// Golden harness: blocked GEMM (and the fused bias+ReLU variant) stay
/// within the per-entry budget of the portable tier — including the
/// AVX-512 4-row micro-kernel and its remainder rows/columns.
#[test]
fn gemm_matches_portable_within_budget() {
    let mut state = 0xB10C_7E57_u64;
    for (m, n, k) in [
        (1, 1, 7),
        (3, 5, 33),
        (6, 9, 64),
        (5, 70, 96),
        (17, 13, 129),
    ] {
        let a = fill(&mut state, m * k);
        let b = fill(&mut state, n * k);
        let bias = fill(&mut state, n);
        let mut reference = vec![0.0f32; m * n];
        with_simd_tier(SimdTier::Portable, || gemm(&a, m, &b, n, k, &mut reference));
        for tier in TIERS {
            let mut out = vec![0.0f32; m * n];
            with_simd_tier(tier, || gemm(&a, m, &b, n, k, &mut out));
            for i in 0..m {
                for j in 0..n {
                    let budget = dot_budget(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    let (got, want) = (out[i * n + j], reference[i * n + j]);
                    assert!(
                        (got - want).abs() <= budget,
                        "gemm ({m}x{n}x{k}) entry ({i},{j}) tier={:?}: {got} vs {want}",
                        tier
                    );
                }
            }
            // Fused bias+ReLU adds the bias after the reduction on every
            // tier, so the same per-entry budget holds (plus one add's
            // rounding, absorbed by the slack of the 2γ bound).
            let mut fused = vec![0.0f32; m * n];
            with_simd_tier(tier, || {
                gemm_bias_relu(&a, m, &b, n, k, &bias, true, &mut fused)
            });
            for i in 0..m {
                for j in 0..n {
                    let budget = dot_budget(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    let want = (reference[i * n + j] + bias[j]).max(0.0);
                    assert!(
                        (fused[i * n + j] - want).abs() <= budget + f32::EPSILON * want.abs(),
                        "gemm_bias_relu ({m}x{n}x{k}) entry ({i},{j}) tier={:?}",
                        tier
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Argmax stability across tiers: when the top-2 score gap exceeds
    /// the combined error budget of both rows, every tier agrees on the
    /// winning row. (Within the budget the scores are FP-ties — no
    /// correct implementation can promise an order there.)
    #[test]
    fn argmax_never_flips_across_tiers_outside_fp_ties(
        rows in prop::collection::vec(
            prop::collection::vec(-1.0f32..1.0, 24), 2..24),
        query in prop::collection::vec(-1.0f32..1.0, 24),
    ) {
        let score = |tier: SimdTier| -> Vec<f32> {
            with_simd_tier(tier, || rows.iter().map(|r| kernel::dot(&query, r)).collect())
        };
        let reference = score(SimdTier::Portable);
        let argmax = |s: &[f32]| {
            let mut best = 0;
            for i in 1..s.len() {
                if s[i] > s[best] {
                    best = i;
                }
            }
            best
        };
        let best = argmax(&reference);
        let mut runner_up = f32::NEG_INFINITY;
        let mut runner_idx = best;
        for (i, &s) in reference.iter().enumerate() {
            if i != best && s > runner_up {
                runner_up = s;
                runner_idx = i;
            }
        }
        let gap = reference[best] - runner_up;
        let combined_budget =
            dot_budget(&query, &rows[best]) + dot_budget(&query, &rows[runner_idx]);
        prop_assume!(gap > combined_budget);
        for tier in TIERS {
            prop_assert_eq!(
                argmax(&score(tier)), best,
                "tier {:?} flipped the argmax across a gap of {} (budget {})",
                tier, gap, combined_budget
            );
        }
    }

    /// `EM_SIMD_TIER` parsing is total: arbitrary strings either name a
    /// tier or produce a structured `InvalidConfig` error — never a
    /// panic, so a typo in the environment can only fall back, not crash.
    #[test]
    fn simd_tier_parse_is_total(input in "[a-zA-Z0-9 ._-]{0,16}") {
        match SimdTier::parse(&input) {
            Ok(tier) => {
                prop_assert!(input.trim().eq_ignore_ascii_case(tier.name()));
            }
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(msg.contains("SIMD tier"), "unstructured error: {}", msg);
            }
        }
    }
}

/// End-to-end ΔF1 gate: the pinned tiny grid's final F1 per cell under
/// the AVX-512 tier must match the portable tier within half an F1
/// point. This is the check that makes AVX-512 admissible as the
/// detected default — bounded kernels are necessary, but only an
/// end-to-end run shows the deviation doesn't amplify through training.
#[test]
fn end_to_end_f1_is_stable_across_tiers() {
    let mut experiment = ExperimentConfig::default();
    experiment.al.budget = 20;
    experiment.al.iterations = 2;
    experiment.al.seed_size = 20;
    experiment.al.weak_budget = 20;
    experiment.matcher.epochs = 6;
    experiment.battleship.kselect_sample = 128;
    let grid = ExperimentGrid::new(
        vec![Scenario::synthetic_scaled(
            DatasetProfile::amazon_google(),
            0.04,
            5,
        )],
        vec![StrategySpec::Random, StrategySpec::Battleship],
        GridConfig {
            experiment,
            master_seed: 0x0B17_5EED,
            n_seeds: 1,
            include_baselines: false,
        },
    );
    // Serial scope: the tier override is thread-local and must govern
    // the whole run, not just the coordinating thread.
    let run = |tier: SimdTier| {
        rayon::serial_scope(|| with_simd_tier(tier, || grid.run())).expect("grid run")
    };
    let portable = run(SimdTier::Portable);
    let avx512 = run(SimdTier::Avx512);
    for (p, v) in portable.cells.iter().zip(&avx512.cells) {
        let (pf, vf) = (
            p.aggregate.mean_curve.last().expect("curve").1,
            v.aggregate.mean_curve.last().expect("curve").1,
        );
        assert!(
            (pf - vf).abs() <= 0.5,
            "cell {} final F1 diverged across tiers: portable {pf} vs avx512 {vf}",
            p.strategy()
        );
    }
}
