//! Cross-crate integration tests: the full pipeline from synthetic data
//! generation through featurization, training, spatial indexing and the
//! active-learning loop.

use battleship_em::al::{
    full_d_f1, run_active_learning, zeroer_f1, BattleshipStrategy, DalStrategy, ExperimentConfig,
    RandomStrategy,
};
use battleship_em::core::{Oracle, PerfectOracle, Rng};
use battleship_em::matcher::{FeatureConfig, Featurizer};
use battleship_em::synth::{generate, DatasetProfile};

fn quick_config() -> ExperimentConfig {
    let mut c = ExperimentConfig::default();
    c.al.budget = 30;
    c.al.iterations = 3;
    c.al.seed_size = 30;
    c.al.weak_budget = 30;
    c.matcher.epochs = 10;
    c.battleship.kselect_sample = 128;
    c
}

#[test]
fn battleship_improves_over_its_seed_model() {
    let profile = DatasetProfile::walmart_amazon().scaled(0.08);
    let dataset = generate(&profile, &mut Rng::seed_from_u64(3)).unwrap();
    let featurizer = Featurizer::new(&dataset, FeatureConfig::default()).unwrap();
    let features = featurizer.featurize_all(&dataset).unwrap();
    let oracle = PerfectOracle::new();
    let mut strategy = BattleshipStrategy::new();
    let report = run_active_learning(
        &dataset,
        &features,
        &mut strategy,
        &oracle,
        &quick_config(),
        1,
    )
    .unwrap();
    let start = report.iterations.first().unwrap().test_f1_pct;
    let end = report.final_f1().unwrap();
    assert!(
        end > start - 5.0,
        "active learning degraded badly: {start} → {end}"
    );
    // Budget accounting: every iteration consumed exactly its budget.
    assert_eq!(oracle.queries(), 30 + 3 * 30);
}

#[test]
fn battleship_hunts_more_positives_than_random() {
    // The correspondence criterion's whole purpose: battleship's labeled
    // batches should contain clearly more matches than random sampling
    // from a ~10 %-positive pool.
    let profile = DatasetProfile::walmart_amazon().scaled(0.12);
    let dataset = generate(&profile, &mut Rng::seed_from_u64(4)).unwrap();
    let featurizer = Featurizer::new(&dataset, FeatureConfig::default()).unwrap();
    let features = featurizer.featurize_all(&dataset).unwrap();
    let config = quick_config();

    let positives_of = |strategy: &mut dyn battleship_em::al::SelectionStrategy, seed: u64| {
        let oracle = PerfectOracle::new();
        let report =
            run_active_learning(&dataset, &features, strategy, &oracle, &config, seed).unwrap();
        report
            .iterations
            .iter()
            .skip(1)
            .map(|i| i.new_positives)
            .sum::<usize>()
    };
    let mut total_battleship = 0;
    let mut total_random = 0;
    for seed in [1, 2] {
        total_battleship += positives_of(&mut BattleshipStrategy::new(), seed);
        total_random += positives_of(&mut RandomStrategy::new(), seed);
    }
    assert!(
        total_battleship > total_random,
        "battleship found {total_battleship} positives, random {total_random}"
    );
}

#[test]
fn all_strategies_respect_pool_and_budget() {
    let profile = DatasetProfile::wdc_cameras().scaled(0.06);
    let dataset = generate(&profile, &mut Rng::seed_from_u64(5)).unwrap();
    let featurizer = Featurizer::new(&dataset, FeatureConfig::default()).unwrap();
    let features = featurizer.featurize_all(&dataset).unwrap();
    let config = quick_config();
    let strategies: Vec<Box<dyn battleship_em::al::SelectionStrategy>> = vec![
        Box::new(BattleshipStrategy::new()),
        Box::new(DalStrategy::new()),
        Box::new(RandomStrategy::new()),
    ];
    for mut s in strategies {
        let oracle = PerfectOracle::new();
        let report =
            run_active_learning(&dataset, &features, s.as_mut(), &oracle, &config, 9).unwrap();
        // Labels grow by exactly the budget each iteration (pool is large
        // enough here).
        for w in report.iterations.windows(2) {
            assert_eq!(
                w[1].labels_used - w[0].labels_used,
                30,
                "{}",
                report.strategy
            );
        }
    }
}

#[test]
fn label_spectrum_extremes_bracket_active_learning() {
    // ZeroER (0 labels) ≤ battleship-after-training ≲ Full D, the
    // paper's qualitative spectrum (§5.1) — checked loosely since the
    // task is scaled down.
    let profile = DatasetProfile::dblp_scholar().scaled(0.03);
    let dataset = generate(&profile, &mut Rng::seed_from_u64(6)).unwrap();
    let featurizer = Featurizer::new(&dataset, FeatureConfig::default()).unwrap();
    let features = featurizer.featurize_all(&dataset).unwrap();

    let zero = zeroer_f1(&dataset, &featurizer, 1).unwrap().f1 * 100.0;
    let full = full_d_f1(&dataset, &features, &quick_config().matcher)
        .unwrap()
        .f1
        * 100.0;
    // Both extremes must be functional matchers. (At this 3 % scale
    // ZeroER's engineered similarity battery can out-score the learned
    // matcher — its features practically encode the generator; the
    // full-scale ordering is exercised by the bench harness.)
    assert!(full > 40.0, "Full D too weak: {full}");
    assert!(zero > 20.0, "ZeroER too weak: {zero}");

    let oracle = PerfectOracle::new();
    let mut strategy = BattleshipStrategy::new();
    let report = run_active_learning(
        &dataset,
        &features,
        &mut strategy,
        &oracle,
        &quick_config(),
        2,
    )
    .unwrap();
    let al_f1 = report.final_f1().unwrap();
    // With ~120 labels on a 3 %-scale task the AL matcher cannot be
    // expected to reach ZeroER's generator-encoding similarity features;
    // it must however be a functional matcher in the same league.
    assert!(
        al_f1 >= zero - 25.0 && al_f1 > 40.0,
        "battleship ({al_f1}) far below ZeroER ({zero})"
    );
}

#[test]
fn facade_reexports_work_together() {
    // Compile-time check that the facade exposes a coherent API surface.
    let profile = DatasetProfile::abt_buy().scaled(0.02);
    let dataset = generate(&profile, &mut Rng::seed_from_u64(8)).unwrap();
    let featurizer = Featurizer::new(&dataset, FeatureConfig::default()).unwrap();
    let features = featurizer.featurize_all(&dataset).unwrap();
    assert_eq!(features.len(), dataset.len());
    assert!(!battleship_em::VERSION.is_empty());
}
