//! Workspace file discovery: find every `.rs` file that belongs to the
//! workspace's own crates (vendored subsets and build output are not
//! ours to lint) and classify it by target kind.

use std::fs;
use std::path::{Path, PathBuf};

/// What kind of target a source file belongs to. Rules use this to
/// scope themselves (e.g. `env-read` waives CLI/bench/example code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/` outside `src/bin/`).
    Lib,
    /// Binary target (`src/bin/`).
    Bin,
    /// Integration tests (`tests/`).
    Test,
    /// Criterion-style benches (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// A discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Target-kind classification.
    pub kind: FileKind,
}

/// Directory names never descended into. `fixtures` holds lint test
/// fixtures with *seeded violations* — linting them would be
/// self-defeating.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", ".github", "fixtures"];

/// Recursively collect the workspace's `.rs` files, sorted by relative
/// path so every report and finding list is deterministic.
pub fn walk_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            let kind = classify(&rel);
            out.push(SourceFile {
                abs: path,
                rel,
                kind,
            });
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

fn classify(rel: &str) -> FileKind {
    let has = |seg: &str| rel.split('/').any(|c| c == seg);
    if rel.contains("/src/bin/") {
        FileKind::Bin
    } else if has("tests") {
        FileKind::Test
    } else if has("benches") {
        FileKind::Bench
    } else if has("examples") {
        FileKind::Example
    } else {
        FileKind::Lib
    }
}

/// The crate a file belongs to: `crates/<name>/…` maps to `<name>`,
/// anything at the workspace top level maps to the root package.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "<root>".to_string()
}
