#![forbid(unsafe_code)]
//! # em-lint — workspace-native static analysis
//!
//! The workspace's hardest-won guarantees are invisible to the type
//! system: bit-identical reports across thread counts, panic-freedom
//! in the serve path, documented contracts on every `unsafe` block.
//! Tests pin those properties at *existing* call sites; this crate
//! enforces them at every **future** call site, as a lint that walks
//! the workspace source with a hand-rolled lexer (no `syn`, no
//! registry — it must build before everything it lints).
//!
//! ## Rule catalog
//!
//! | rule | contract it enforces |
//! |------|----------------------|
//! | `no-panic` | no `unwrap`/`expect`/`panic!` in `serve/`, `session/`, `em-core::codec` |
//! | `map-iter` | no `HashMap`/`HashSet` iteration in report-feeding modules |
//! | `wall-clock` | no `Instant::now`/`SystemTime` in report-feeding modules |
//! | `env-read` | no `env::var` outside the config/bench/CLI allowlist |
//! | `safety-comment` | every `unsafe` has an immediately-preceding `// SAFETY:` contract |
//! | `forbid-unsafe` | unsafe-free crates declare `#![forbid(unsafe_code)]` |
//! | `error-taxonomy` | no `Box<dyn Error>`/`Result<_, String>` in public APIs |
//! | `allow-marker` | every allow marker parses and names a real rule |
//!
//! A finding is silenced — with an audit trail — by a marker on the
//! same line or the line above:
//!
//! ```text
//! // em-lint: allow(wall-clock) -- timing field; canonical() zeroes it
//! let t0 = Instant::now();
//! ```

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod walk;

pub use config::LintConfig;
pub use report::{Finding, LintReport};

use rules::FileCtx;
use scope::FileModel;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use walk::{crate_of, FileKind};

/// Lint a whole workspace rooted at `root`. Reads every non-vendored
/// `.rs` file, runs the rule catalog, resolves allow markers, and
/// returns the findings sorted by (file, line, rule).
pub fn run_workspace(root: &Path, config: &LintConfig) -> std::io::Result<LintReport> {
    let files = walk::walk_workspace(root)?;
    let mut findings = Vec::new();
    // Crate name -> (has any unsafe, lib.rs forbids it, lib.rs path).
    let mut crates: BTreeMap<String, (bool, bool, Option<String>)> = BTreeMap::new();

    for file in &files {
        let src = std::fs::read(&file.abs)?;
        let tokens = lexer::lex_bytes(&src);
        let model = FileModel::build(&tokens);
        let ctx = FileCtx {
            rel: &file.rel,
            kind: file.kind,
            tokens: &tokens,
            model: &model,
            config,
        };

        rules::panic_free::check(&ctx, &mut findings);
        rules::determinism::check(&ctx, &mut findings);
        rules::unsafe_hygiene::check(&ctx, &mut findings);
        rules::error_taxonomy::check(&ctx, &mut findings);

        let entry = crates
            .entry(crate_of(&file.rel))
            .or_insert((false, false, None));
        entry.0 |= rules::unsafe_hygiene::file_has_unsafe(&ctx);
        if file.kind == FileKind::Lib && file.rel.ends_with("src/lib.rs") {
            entry.1 = rules::unsafe_hygiene::file_forbids_unsafe(&ctx);
            entry.2 = Some(file.rel.clone());
        }

        // Malformed / unknown-rule markers are findings themselves.
        for bad in &model.bad_markers {
            findings.push(Finding {
                rule: rules::ALLOW_MARKER,
                file: file.rel.clone(),
                line: bad.line,
                message: format!("malformed allow marker: {}", bad.problem),
                allow_reason: None,
            });
        }
        for marker in &model.allows {
            for r in &marker.rules {
                if !rules::ALL_RULES.contains(&r.as_str()) {
                    findings.push(Finding {
                        rule: rules::ALLOW_MARKER,
                        file: file.rel.clone(),
                        line: marker.line,
                        message: format!("allow marker names unknown rule `{r}`"),
                        allow_reason: None,
                    });
                }
            }
        }

        // Resolve markers for the findings this file just produced
        // (markers never cross files).
        for f in findings.iter_mut().filter(|f| f.file == file.rel) {
            if let Some(m) = model.allow_for(f.rule, f.line) {
                f.allow_reason = Some(m.reason.clone());
            }
        }
    }

    // Crate-level pass: unsafe-free crates must forbid unsafe_code.
    for (name, (has_unsafe, forbids, lib)) in &crates {
        let Some(lib) = lib else { continue };
        if !has_unsafe && !forbids {
            findings.push(Finding {
                rule: rules::FORBID_UNSAFE,
                file: lib.clone(),
                line: 1,
                message: format!(
                    "crate `{name}` has no unsafe code but its root does not \
                     declare `#![forbid(unsafe_code)]`"
                ),
                allow_reason: None,
            });
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(LintReport {
        root: root.to_string_lossy().into_owned(),
        files_scanned: files.len(),
        findings,
    })
}

/// Lint a single in-memory source as if it lived at `rel` — the unit
/// the fixture tests drive. Crate-level rules (`forbid-unsafe`) do not
/// run here.
pub fn lint_source(rel: &str, kind: FileKind, src: &[u8], config: &LintConfig) -> Vec<Finding> {
    let tokens = lexer::lex_bytes(src);
    let model = FileModel::build(&tokens);
    let ctx = FileCtx {
        rel,
        kind,
        tokens: &tokens,
        model: &model,
        config,
    };
    let mut findings = Vec::new();
    rules::panic_free::check(&ctx, &mut findings);
    rules::determinism::check(&ctx, &mut findings);
    rules::unsafe_hygiene::check(&ctx, &mut findings);
    rules::error_taxonomy::check(&ctx, &mut findings);
    for bad in &model.bad_markers {
        findings.push(Finding {
            rule: rules::ALLOW_MARKER,
            file: rel.to_string(),
            line: bad.line,
            message: format!("malformed allow marker: {}", bad.problem),
            allow_reason: None,
        });
    }
    for marker in &model.allows {
        for r in &marker.rules {
            if !rules::ALL_RULES.contains(&r.as_str()) {
                findings.push(Finding {
                    rule: rules::ALLOW_MARKER,
                    file: rel.to_string(),
                    line: marker.line,
                    message: format!("allow marker names unknown rule `{r}`"),
                    allow_reason: None,
                });
            }
        }
    }
    for f in &mut findings {
        if let Some(m) = model.allow_for(f.rule, f.line) {
            f.allow_reason = Some(m.reason.clone());
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Walk upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
