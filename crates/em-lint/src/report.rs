//! Structured diagnostics and the two output formats (human, JSON).
//!
//! The JSON writer is hand-rolled: `em-lint` is dependency-free by
//! design (it is CI's first job and must not sit behind anything it
//! lints), and the report shape is flat enough that an escaper plus
//! string concatenation is the whole cost.

use std::fmt::Write as _;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule ID, e.g. `no-panic`.
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(reason)` when an `em-lint: allow(...)` marker covers the
    /// finding; allowed findings never fail the lint.
    pub allow_reason: Option<String>,
}

impl Finding {
    /// True when no allow marker covers this finding.
    pub fn is_active(&self) -> bool {
        self.allow_reason.is_none()
    }
}

/// The result of linting a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Workspace root the paths are relative to.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule) — allowed ones too.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Findings not covered by an allow marker.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_active())
    }

    /// Number of active (lint-failing) findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Render the human-readable report.
    pub fn to_human(&self, show_allowed: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            match &f.allow_reason {
                None => {
                    let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
                }
                Some(reason) if show_allowed => {
                    let _ = writeln!(
                        out,
                        "{}:{}: [{}] allowed: {} (reason: {})",
                        f.file, f.line, f.rule, f.message, reason
                    );
                }
                Some(_) => {}
            }
        }
        let allowed = self.findings.len() - self.active_count();
        let _ = writeln!(
            out,
            "em-lint: {} file(s) scanned, {} finding(s) ({} allowed)",
            self.files_scanned,
            self.active_count(),
            allowed
        );
        out
    }

    /// Render the machine-readable JSON report (stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"version\":1,\"root\":{},", json_str(&self.root));
        let _ = write!(out, "\"files_scanned\":{},", self.files_scanned);
        out.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{},\"allowed\":{}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                !f.is_active(),
            );
            match &f.allow_reason {
                Some(r) => {
                    let _ = write!(out, ",\"allow_reason\":{}}}", json_str(r));
                }
                None => out.push_str(",\"allow_reason\":null}"),
            }
        }
        out.push_str("],");
        let active = self.active_count();
        let _ = write!(
            out,
            "\"summary\":{{\"total\":{},\"active\":{},\"allowed\":{}}}",
            self.findings.len(),
            active,
            self.findings.len() - active
        );
        out.push('}');
        out
    }
}

/// JSON string literal with full escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
