//! `em-lint` binary: lint the workspace, print human or JSON output.
//!
//! ```text
//! em-lint [--root PATH] [--format human|json] [--show-allowed] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 active findings, 2 usage/I-O error.

use em_lint::{find_workspace_root, run_workspace, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = "human".to_string();
    let mut show_allowed = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--format" => match args.next() {
                Some(v) if v == "human" || v == "json" => format = v,
                _ => return usage("--format must be `human` or `json`"),
            },
            "--show-allowed" => show_allowed = true,
            "--list-rules" => {
                for r in em_lint::rules::ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "em-lint [--root PATH] [--format human|json] [--show-allowed] [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage("no workspace root found (pass --root)"),
    };

    let report = match run_workspace(&root, &LintConfig::workspace_default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("em-lint: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_human(show_allowed));
    }
    if report.active_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("em-lint: {msg}");
    eprintln!("usage: em-lint [--root PATH] [--format human|json] [--show-allowed] [--list-rules]");
    ExitCode::from(2)
}
