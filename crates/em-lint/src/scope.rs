//! File-level source model built on top of the token stream: which
//! lines belong to `#[cfg(test)]` / `#[test]` items (brace-tracked),
//! and which lines carry `em-lint: allow(...)` markers.

use crate::lexer::Token;

/// A parsed `// em-lint: allow(rule-id) -- reason` marker.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// Line of the comment's first byte.
    pub line: u32,
    /// Line of the comment's last byte (differs for block comments).
    pub end_line: u32,
    /// Rule IDs named inside `allow(…)` (comma-separated).
    pub rules: Vec<String>,
    /// Mandatory justification after `--`.
    pub reason: String,
}

/// A malformed marker: mentions `em-lint:` but does not parse.
#[derive(Debug, Clone)]
pub struct BadMarker {
    /// Line of the comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// Per-file source model consumed by the rules.
#[derive(Debug)]
pub struct FileModel {
    /// Indices into the token stream of non-comment tokens.
    pub code: Vec<usize>,
    /// Half-open, sorted line spans `[start, end]` covered by
    /// `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(u32, u32)>,
    /// Well-formed allow markers, in source order.
    pub allows: Vec<AllowMarker>,
    /// Markers that failed to parse (reported as findings).
    pub bad_markers: Vec<BadMarker>,
}

impl FileModel {
    /// Build the model from a lexed token stream.
    pub fn build(tokens: &[Token]) -> Self {
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let mut model = FileModel {
            code,
            test_spans: Vec::new(),
            allows: Vec::new(),
            bad_markers: Vec::new(),
        };
        model.scan_markers(tokens);
        model.scan_test_items(tokens);
        model
    }

    /// True when `line` falls inside a test-gated item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// The allow marker (if any) covering a finding for `rule` at
    /// `line`: a marker allows its own line(s) and the line right
    /// after it ends (trailing-comment and line-above placements).
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<&AllowMarker> {
        self.allows
            .iter()
            .find(|m| m.rules.iter().any(|r| r == rule) && m.line <= line && line <= m.end_line + 1)
    }

    fn scan_markers(&mut self, tokens: &[Token]) {
        for tok in tokens {
            // A marker is a comment whose *content* starts with
            // `em-lint:` — prose that merely mentions the syntax
            // (like this crate's own docs) is not a marker.
            if !tok.is_comment() || !comment_content(&tok.text).starts_with("em-lint:") {
                continue;
            }
            let end_line = tok.line + tok.text.bytes().filter(|&b| b == b'\n').count() as u32;
            match parse_marker(&tok.text) {
                Ok((rules, reason)) => self.allows.push(AllowMarker {
                    line: tok.line,
                    end_line,
                    rules,
                    reason,
                }),
                Err(problem) => self.bad_markers.push(BadMarker {
                    line: tok.line,
                    problem,
                }),
            }
        }
    }

    /// Find `#[cfg(test)]` / `#[test]` attributes and mark the line
    /// span of the item that follows (through its matching `}` for
    /// braced items, or its `;` otherwise).
    fn scan_test_items(&mut self, tokens: &[Token]) {
        let code = &self.code;
        let mut i = 0;
        while i < code.len() {
            if !is_attr_start(tokens, code, i) {
                i += 1;
                continue;
            }
            let (inner, after) = match attr_body(tokens, code, i) {
                Some(x) => x,
                None => {
                    i += 1;
                    continue;
                }
            };
            if !is_test_attr(&inner) {
                i = after;
                continue;
            }
            let start_line = tokens[code[i]].line;
            // Skip any further attributes between the test attr and
            // the item itself.
            let mut j = after;
            while is_attr_start(tokens, code, j) {
                match attr_body(tokens, code, j) {
                    Some((_, nxt)) => j = nxt,
                    None => break,
                }
            }
            // Scan to the item's `{` (then match braces) or `;`.
            let mut end_line = start_line;
            while j < code.len() {
                let t = &tokens[code[j]];
                if t.text == ";" {
                    end_line = t.line;
                    j += 1;
                    break;
                }
                if t.text == "{" {
                    let (close, line) = match_brace(tokens, code, j);
                    end_line = line;
                    j = close + 1;
                    break;
                }
                end_line = t.line;
                j += 1;
            }
            self.test_spans.push((start_line, end_line));
            i = j.max(after);
        }
        self.test_spans.sort_unstable();
    }
}

/// Does code token `i` start an attribute (`#[` or `#![`)?
fn is_attr_start(tokens: &[Token], code: &[usize], i: usize) -> bool {
    let at = |k: usize| code.get(k).map(|&ix| tokens[ix].text.as_str());
    at(i) == Some("#")
        && (at(i + 1) == Some("[") || (at(i + 1) == Some("!") && at(i + 2) == Some("[")))
}

/// Collect an attribute's inner token texts; returns `(inner, index
/// after the closing bracket)`. `i` must satisfy [`is_attr_start`].
fn attr_body(tokens: &[Token], code: &[usize], i: usize) -> Option<(Vec<String>, usize)> {
    let mut j = i + 1;
    if code.get(j).map(|&ix| tokens[ix].text.as_str()) == Some("!") {
        j += 1;
    }
    // j is at `[`
    let mut depth = 0usize;
    let mut inner = Vec::new();
    while j < code.len() {
        let t = &tokens[code[j]];
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some((inner, j + 1));
                }
            }
            _ => {
                if depth >= 1 {
                    inner.push(t.text.clone());
                }
            }
        }
        j += 1;
    }
    None // unterminated attribute
}

/// `#[test]`, `#[cfg(test)]`, and conjunctive forms like
/// `#[cfg(all(test, …))]` gate test code; `#[cfg(not(test))]` does not.
fn is_test_attr(inner: &[String]) -> bool {
    match inner.first().map(String::as_str) {
        Some("test") => inner.len() == 1,
        Some("cfg") => inner.iter().any(|t| t == "test") && !inner.iter().any(|t| t == "not"),
        _ => false,
    }
}

/// From the `{` at code index `open`, return the index of its matching
/// `}` and that token's line (EOF-recovering: last token if unmatched).
fn match_brace(tokens: &[Token], code: &[usize], open: usize) -> (usize, u32) {
    let mut depth = 0i64;
    let mut j = open;
    let mut last_line = tokens[code[open]].line;
    while j < code.len() {
        let t = &tokens[code[j]];
        last_line = t.line;
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return (j, t.line);
                }
            }
            _ => {}
        }
        j += 1;
    }
    (code.len().saturating_sub(1), last_line)
}

/// Strip comment fencing (`//`, `///`, `//!`, `/*`, `/**`, leading
/// `*`) and whitespace off the front of a comment's text.
fn comment_content(text: &str) -> &str {
    text.trim_start_matches(['/', '!', '*', ' ', '\t'])
}

/// Parse `em-lint: allow(rule-a, rule-b) -- reason` out of a comment's
/// text. Returns the rule list and the reason, or a description of the
/// syntax problem.
fn parse_marker(text: &str) -> Result<(Vec<String>, String), String> {
    let Some(at) = text.find("em-lint:") else {
        return Err("missing `em-lint:` prefix".into());
    };
    let rest = text[at + "em-lint:".len()..].trim_start();
    let Some(body) = rest.strip_prefix("allow") else {
        return Err(format!(
            "unknown directive `{}` (only `allow(rule) -- reason` is supported)",
            rest.split_whitespace().next().unwrap_or("")
        ));
    };
    let body = body.trim_start();
    let Some(body) = body.strip_prefix('(') else {
        return Err("expected `(` after `allow`".into());
    };
    let Some(close) = body.find(')') else {
        return Err("unclosed `allow(`".into());
    };
    let rules: Vec<String> = body[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("empty rule list in `allow()`".into());
    }
    let tail = body[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("missing `-- reason` (every allow must say why)".into());
    };
    // Block comments: strip the closing fence from the reason.
    let reason = reason.trim().trim_end_matches("*/").trim();
    if reason.is_empty() {
        return Err("empty reason after `--`".into());
    }
    Ok((rules, reason.to_string()))
}
