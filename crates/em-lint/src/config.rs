//! Lint configuration: which workspace paths each rule bites on.
//!
//! The rule catalog is generic; the *scopes* are this workspace's
//! hard-won contracts (see README § Static analysis):
//!
//! - panic-freedom guards the paths PR 7 made panic-free (`serve/`,
//!   `session/`, `em-core::codec`);
//! - the determinism rules guard every module whose output lands in a
//!   `RunReport`/`GridReport` or in snapshot bytes (PR 3/5/8 promise
//!   bit-identical results across thread counts and checkpoints);
//! - the env allowlist names the sanctioned config-read sites
//!   (`EM_SIMD_TIER`, `EM_ANN_*`, bench knobs).

/// Path scopes and allowlists consumed by the rules. All entries are
/// workspace-relative prefixes with forward slashes; a file is in
/// scope when its path starts with any entry.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// `no-panic` applies to library code under these prefixes.
    pub panic_scopes: Vec<String>,
    /// `map-iter` and `wall-clock` apply to library code under these
    /// prefixes (modules feeding reports or snapshot bytes).
    pub determinism_scopes: Vec<String>,
    /// `env-read` is waived under these prefixes (sanctioned config
    /// reads; bench/CLI/example targets are waived by file kind).
    pub env_allowlist: Vec<String>,
}

impl LintConfig {
    /// The scopes for this workspace.
    pub fn workspace_default() -> Self {
        LintConfig {
            panic_scopes: vec![
                "crates/battleship/src/serve/".into(),
                "crates/battleship/src/session/".into(),
                "crates/em-core/src/codec.rs".into(),
            ],
            determinism_scopes: vec![
                // Report producers and aggregators.
                "crates/battleship/src/report.rs".into(),
                "crates/battleship/src/engine/".into(),
                "crates/battleship/src/runner.rs".into(),
                "crates/battleship/src/baselines.rs".into(),
                // Session state feeds both reports and snapshot bytes.
                "crates/battleship/src/session/".into(),
                "crates/battleship/src/serve/".into(),
                // Selection order decides which pairs get labeled,
                // which decides every downstream report number.
                "crates/battleship/src/strategies/".into(),
                "crates/battleship/src/selection.rs".into(),
                "crates/battleship/src/blocking.rs".into(),
                "crates/battleship/src/weak.rs".into(),
            ],
            env_allowlist: vec![
                // Runtime ISA dispatch override (EM_SIMD_TIER).
                "crates/em-vector/src/kernel.rs".into(),
                // ANN routing policy overrides (EM_ANN_*).
                "crates/em-vector/src/policy.rs".into(),
                // Bench harness knobs (EM_BENCH_*).
                "crates/em-bench/".into(),
            ],
        }
    }

    /// Is `path` inside any of the given prefixes?
    pub fn in_scope(path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| path.starts_with(p.as_str()))
    }
}
