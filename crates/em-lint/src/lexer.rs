//! Hand-rolled Rust lexer.
//!
//! `em-lint` deliberately ships no dependencies (see `Cargo.toml`), so
//! instead of `syn` it carries a small token scanner that understands
//! exactly as much Rust as the rules need: string literals (escaped,
//! raw with arbitrary `#` fences, byte variants), char literals vs
//! lifetimes, nested block comments, doc comments, identifiers,
//! numbers, and punctuation — each token tagged with its 1-based source
//! line. Everything the scanner does not model collapses to one-byte
//! [`TokKind::Punct`] tokens, which keeps it total: lexing arbitrary
//! byte soup never panics and never loses line synchronisation (there
//! is a proptest for exactly that).

/// Classification of a scanned token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Numeric literal (integers, floats, suffixed forms).
    Num,
    /// `"…"` or `b"…"` string literal, escapes resolved only for
    /// scanning purposes (the raw source text is preserved).
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#` raw string literal.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'` char/byte literal.
    Char,
    /// `// …` comment, doc (`///`, `//!`) included.
    LineComment,
    /// `/* … */` comment, nesting handled; doc (`/** */`) included.
    BlockComment,
    /// Any other single byte (braces, operators, stray bytes).
    Punct,
}

/// One scanned token: kind, 1-based line of its first byte, and the
/// raw source text (lossily decoded for non-UTF-8 input).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token classification.
    pub kind: TokKind,
    /// 1-based line number of the token's first byte.
    pub line: u32,
    /// Raw source text of the token.
    pub text: String,
}

impl Token {
    /// True for comment tokens (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lex a source string. Convenience wrapper over [`lex_bytes`].
pub fn lex(src: &str) -> Vec<Token> {
    lex_bytes(src.as_bytes())
}

/// Lex arbitrary bytes. Total: never panics, regardless of input.
pub fn lex_bytes(src: &[u8]) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        let start = cur.pos;
        let line = cur.line;
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                cur.eat_while(|c| c != b'\n');
                TokKind::LineComment
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.eat_block_comment();
                TokKind::BlockComment
            }
            b'"' => {
                cur.eat_quoted(b'"');
                TokKind::Str
            }
            b'r' if matches!(cur.peek(1), Some(b'"' | b'#')) => {
                if let Some(k) = cur.try_eat_raw_string(1) {
                    k
                } else {
                    // `r#ident` or a lone `r#` — an identifier.
                    cur.bump();
                    if cur.peek(0) == Some(b'#') {
                        cur.bump();
                    }
                    cur.eat_while(is_ident_continue);
                    TokKind::Ident
                }
            }
            b'b' if cur.peek(1) == Some(b'"') => {
                cur.bump();
                cur.eat_quoted(b'"');
                TokKind::Str
            }
            b'b' if cur.peek(1) == Some(b'\'') => {
                cur.bump();
                cur.eat_quoted(b'\'');
                TokKind::Char
            }
            b'b' if cur.peek(1) == Some(b'r') && matches!(cur.peek(2), Some(b'"' | b'#')) => {
                if let Some(k) = cur.try_eat_raw_string(2) {
                    k
                } else {
                    cur.eat_while(is_ident_continue);
                    TokKind::Ident
                }
            }
            b'\'' => cur.eat_char_or_lifetime(),
            c if is_ident_start(c) => {
                cur.eat_while(is_ident_continue);
                TokKind::Ident
            }
            c if c.is_ascii_digit() => {
                cur.eat_number();
                TokKind::Num
            }
            _ => {
                cur.bump();
                TokKind::Punct
            }
        };
        let text = String::from_utf8_lossy(&src[start..cur.pos]).into_owned();
        out.push(Token { kind, line, text });
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl Cursor<'_> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }

    /// `/* … */` with nesting; unterminated comments run to EOF.
    fn eat_block_comment(&mut self) {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return, // unterminated: recover at EOF
            }
        }
    }

    /// A `"…"`/`'…'` body with `\` escapes; unterminated runs to EOF.
    /// The opening quote has not been consumed yet.
    fn eat_quoted(&mut self, quote: u8) {
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            if b == b'\\' {
                self.bump(); // escaped byte, whatever it is
            } else if b == quote {
                return;
            }
        }
    }

    /// Try `r"…"` / `r##"…"##` (or `br…` with `prefix_len == 2`)
    /// starting at the current position. Returns `None` — consuming
    /// nothing — when the `#` fence is not followed by `"` (that is a
    /// raw identifier, not a raw string).
    fn try_eat_raw_string(&mut self, prefix_len: usize) -> Option<TokKind> {
        let mut hashes = 0usize;
        while self.peek(prefix_len + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(prefix_len + hashes) != Some(b'"') {
            return None;
        }
        for _ in 0..prefix_len + hashes + 1 {
            self.bump();
        }
        // Body ends at `"` followed by `hashes` `#` bytes.
        while let Some(b) = self.bump() {
            if b == b'"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some(b'#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return Some(TokKind::RawStr);
                }
            }
        }
        Some(TokKind::RawStr) // unterminated: recover at EOF
    }

    /// Disambiguate `'a'` (char), `'\n'` (escaped char) and `'a`
    /// (lifetime). The opening `'` has not been consumed.
    fn eat_char_or_lifetime(&mut self) -> TokKind {
        match self.peek(1) {
            Some(b'\\') => {
                self.eat_quoted(b'\'');
                TokKind::Char
            }
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                // `'ident` — char literal iff a `'` closes it right
                // after the ident run (`'a'`), else a lifetime (`'a`).
                let mut off = 2;
                while self.peek(off).is_some_and(is_ident_continue) {
                    off += 1;
                }
                if self.peek(off) == Some(b'\'') {
                    for _ in 0..=off {
                        self.bump();
                    }
                    TokKind::Char
                } else {
                    self.bump(); // `'`
                    self.eat_while(is_ident_continue);
                    TokKind::Lifetime
                }
            }
            // `'(' `, `' '` … — char literal when a quote closes it.
            Some(c) if c != b'\'' && self.peek(2) == Some(b'\'') => {
                self.bump();
                self.bump();
                self.bump();
                TokKind::Char
            }
            Some(c) if c != b'\'' => {
                self.bump();
                TokKind::Punct // stray quote: recover
            }
            _ => {
                self.bump();
                TokKind::Punct // `''` or EOF: recover
            }
        }
    }

    /// Numbers, loosely: digits, alphanumeric suffixes/radices and
    /// underscores, plus `.` only when a digit follows (so `0..5`
    /// leaves the range operator alone).
    fn eat_number(&mut self) {
        self.bump();
        loop {
            match self.peek(0) {
                Some(b'.') if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                    self.bump();
                }
                Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                    self.bump();
                }
                // `1e-5` / `1E+5`: exponent sign right after e/E.
                Some(b'+' | b'-')
                    if self
                        .src
                        .get(self.pos.wrapping_sub(1))
                        .is_some_and(|&p| p == b'e' || p == b'E')
                        && self.peek(1).is_some_and(|c| c.is_ascii_digit()) =>
                {
                    self.bump();
                }
                _ => return,
            }
        }
    }
}
