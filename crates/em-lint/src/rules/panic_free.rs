//! `no-panic`: the serve/session/codec paths must not contain a
//! reachable panic. PR 7 bought this property by hand (poisoned-lock
//! recovery, length-validated codec reads); this rule keeps new call
//! sites from spending it.

use super::{FileCtx, NO_PANIC};
use crate::config::LintConfig;
use crate::report::Finding;
use crate::walk::FileKind;

/// Macros whose expansion is an unconditional panic.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Check one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib || !LintConfig::in_scope(ctx.rel, &ctx.config.panic_scopes) {
        return;
    }
    for k in 0..ctx.clen() {
        if ctx.is_test(k) {
            continue;
        }
        let t = ctx.ctext(k);
        // `.unwrap()` / `.expect(` — method position only, so local
        // functions *named* unwrap and `unwrap_or{,_else,_default}`
        // stay legal.
        if (t == "unwrap" || t == "expect")
            && ctx.ctext(k.wrapping_sub(1)) == "."
            && ctx.ctext(k + 1) == "("
        {
            let target = if ctx.ctext(k.wrapping_sub(2)) == ")"
                && find_call_head(ctx, k.wrapping_sub(2)) == Some("lock")
            {
                // The exact shape PR 7 eliminated: a poisoned mutex
                // takes the whole serve path down.
                format!("`.lock().{t}()` can panic on a poisoned lock")
            } else {
                format!("`.{t}()` can panic")
            };
            ctx.emit(
                out,
                NO_PANIC,
                ctx.cline(k),
                format!(
                    "{target}; this path is panic-free — return an `EmError` \
                     (or justify with `// em-lint: allow(no-panic) -- reason`)"
                ),
            );
        }
        // `panic!(…)` and friends.
        if PANIC_MACROS.contains(&t) && ctx.ctext(k + 1) == "!" {
            ctx.emit(
                out,
                NO_PANIC,
                ctx.cline(k),
                format!("`{t}!` in a panic-free path; return an `EmError` instead"),
            );
        }
    }
}

/// For a `)` at code index `close`, walk back over the balanced paren
/// group and return the method/function name just before it (the
/// `lock` in `lock().unwrap()`).
fn find_call_head<'a>(ctx: &'a FileCtx, close: usize) -> Option<&'a str> {
    let mut depth = 0i64;
    let mut k = close;
    loop {
        match ctx.ctext(k) {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return Some(ctx.ctext(k.checked_sub(1)?));
                }
            }
            "" => return None,
            _ => {}
        }
        k = k.checked_sub(1)?;
    }
}
