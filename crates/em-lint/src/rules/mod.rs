//! The rule catalog. Each rule is a free function over a [`FileCtx`]
//! pushing [`Finding`]s; the runner in `lib.rs` wires them together
//! and resolves allow markers afterwards.

pub mod determinism;
pub mod error_taxonomy;
pub mod panic_free;
pub mod unsafe_hygiene;

use crate::config::LintConfig;
use crate::lexer::Token;
use crate::report::Finding;
use crate::scope::FileModel;
use crate::walk::FileKind;

/// `no-panic`: `unwrap`/`expect`/`panic!`-family forbidden in the
/// panic-free scopes.
pub const NO_PANIC: &str = "no-panic";
/// `map-iter`: iteration over `HashMap`/`HashSet` in deterministic
/// scopes (iteration order is randomized per process).
pub const MAP_ITER: &str = "map-iter";
/// `wall-clock`: `Instant::now`/`SystemTime` in deterministic scopes.
pub const WALL_CLOCK: &str = "wall-clock";
/// `env-read`: `std::env::var` outside the config/bench/CLI allowlist.
pub const ENV_READ: &str = "env-read";
/// `safety-comment`: `unsafe` without an immediately-preceding
/// `// SAFETY:` contract (or `# Safety` doc section).
pub const SAFETY_COMMENT: &str = "safety-comment";
/// `forbid-unsafe`: a crate with zero `unsafe` must say so with
/// `#![forbid(unsafe_code)]`.
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
/// `error-taxonomy`: no `Box<dyn Error>`/stringly `Result<_, String>`
/// escaping a public API — the workspace has `EmError`.
pub const ERROR_TAXONOMY: &str = "error-taxonomy";
/// `allow-marker`: a marker that mentions `em-lint:` but fails to
/// parse, or names a rule that does not exist.
pub const ALLOW_MARKER: &str = "allow-marker";

/// Every rule ID, for `--list-rules` and marker validation.
pub const ALL_RULES: [&str; 8] = [
    NO_PANIC,
    MAP_ITER,
    WALL_CLOCK,
    ENV_READ,
    SAFETY_COMMENT,
    FORBID_UNSAFE,
    ERROR_TAXONOMY,
    ALLOW_MARKER,
];

/// Everything a per-file rule gets to look at.
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// Target-kind classification.
    pub kind: FileKind,
    /// Full token stream (comments included).
    pub tokens: &'a [Token],
    /// Scope model (code indices, test spans, allow markers).
    pub model: &'a FileModel,
    /// Path scopes.
    pub config: &'a LintConfig,
}

impl FileCtx<'_> {
    /// Text of the `k`-th *code* token, or `""` past the end.
    pub fn ctext(&self, k: usize) -> &str {
        self.model
            .code
            .get(k)
            .map(|&ix| self.tokens[ix].text.as_str())
            .unwrap_or("")
    }

    /// Line of the `k`-th code token (0 past the end).
    pub fn cline(&self, k: usize) -> u32 {
        self.model
            .code
            .get(k)
            .map(|&ix| self.tokens[ix].line)
            .unwrap_or(0)
    }

    /// Number of code tokens.
    pub fn clen(&self) -> usize {
        self.model.code.len()
    }

    /// Is this code-token index inside a `#[cfg(test)]`/`#[test]`
    /// region?
    pub fn is_test(&self, k: usize) -> bool {
        self.model.is_test_line(self.cline(k))
    }

    /// Push a finding for this file.
    pub fn emit(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
        out.push(Finding {
            rule,
            file: self.rel.to_string(),
            line,
            message,
            allow_reason: None,
        });
    }
}
