//! Unsafe hygiene: every `unsafe` occurrence carries a written
//! contract, and crates that need no `unsafe` at all say so in their
//! crate root (`#![forbid(unsafe_code)]`), so a future `unsafe` block
//! cannot slip into them without loosening the attribute in review.

use super::{FileCtx, SAFETY_COMMENT};
use crate::lexer::{TokKind, Token};
use crate::report::Finding;

/// Per-file half of the rule: flag `unsafe` tokens without an
/// immediately-preceding `// SAFETY:` contract (a `# Safety` doc
/// section on an `unsafe fn` counts — rustdoc's own convention).
pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if tok.kind != TokKind::Ident || tok.text != "unsafe" {
            continue;
        }
        if has_adjacent_contract(ctx.tokens, i) || contract_through_attrs(ctx.tokens, i) {
            continue;
        }
        let what = match ctx.tokens.get(i + 1).map(|t| t.text.as_str()) {
            Some("impl") => "`unsafe impl`",
            Some("fn") => "`unsafe fn`",
            Some("trait") => "`unsafe trait`",
            _ => "`unsafe` block",
        };
        ctx.emit(
            out,
            SAFETY_COMMENT,
            tok.line,
            format!(
                "{what} without an immediately-preceding `// SAFETY:` comment \
                 stating the contract that makes it sound"
            ),
        );
    }
}

fn is_contract(text: &str) -> bool {
    text.contains("SAFETY") || text.contains("# Safety")
}

/// Last source line a token touches (block comments span many).
fn last_line(tok: &Token) -> u32 {
    tok.line + tok.text.bytes().filter(|&b| b == b'\n').count() as u32
}

/// A contract comment *block* ending on the `unsafe` token's own line
/// or the line right above it (covers `Tier::Avx2 => unsafe { … }`
/// match arms, where the comment sits above the whole arm). A block is
/// a run of comment tokens adjacent in both the token stream and the
/// line numbering — `// SAFETY: …` followed by its continuation lines
/// counts as one contract even though each line is its own token.
fn has_adjacent_contract(tokens: &[Token], unsafe_ix: usize) -> bool {
    let line = tokens[unsafe_ix].line;
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_comment() {
            i += 1;
            continue;
        }
        let start = tokens[i].line;
        let mut end = last_line(&tokens[i]);
        let mut has = is_contract(&tokens[i].text);
        while i + 1 < tokens.len() && tokens[i + 1].is_comment() && tokens[i + 1].line <= end + 1 {
            i += 1;
            end = last_line(&tokens[i]);
            has |= is_contract(&tokens[i].text);
        }
        if has && start <= line && end + 1 >= line {
            return true;
        }
        i += 1;
    }
    false
}

/// Walk backwards from the `unsafe` token over things legitimately
/// between an item and its doc — attributes, visibility — requiring
/// line contiguity, and accept a contract comment found on the way
/// (covers `/// # Safety` docs above `#[target_feature] unsafe fn`).
fn contract_through_attrs(tokens: &[Token], unsafe_ix: usize) -> bool {
    let mut expect_line = tokens[unsafe_ix].line;
    let mut i = unsafe_ix;
    loop {
        i = match i.checked_sub(1) {
            Some(i) => i,
            None => return false,
        };
        let tok = &tokens[i];
        if last_line(tok) + 1 < expect_line {
            return false; // blank-line gap: not "immediately preceding"
        }
        if tok.is_comment() {
            if is_contract(&tok.text) {
                return true;
            }
            expect_line = tok.line;
            continue;
        }
        match tok.text.as_str() {
            // Attribute `#[…]` / `#![…]`: hop from its `]` to its `#`.
            "]" => {
                let mut depth = 0i64;
                loop {
                    let t = &tokens[i];
                    match t.text.as_str() {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i = match i.checked_sub(1) {
                        Some(i) => i,
                        None => return false,
                    };
                }
                // Step over `#` (and `!` of an inner attribute).
                while i > 0 && matches!(tokens[i - 1].text.as_str(), "#" | "!") {
                    i -= 1;
                }
                expect_line = tokens[i].line;
            }
            // Visibility and qualifiers that precede `unsafe` in item
            // position: `pub unsafe fn`, `pub(crate) const unsafe fn`.
            "pub" | "crate" | "const" | "extern" | "(" | ")" => {
                expect_line = tok.line;
            }
            _ => return false,
        }
    }
}

/// Does this file contain any `unsafe` code token?
pub fn file_has_unsafe(ctx: &FileCtx) -> bool {
    (0..ctx.clen()).any(|k| ctx.ctext(k) == "unsafe")
}

/// Does this file carry `#![forbid(unsafe_code)]`?
pub fn file_forbids_unsafe(ctx: &FileCtx) -> bool {
    (0..ctx.clen()).any(|k| {
        ctx.ctext(k) == "forbid"
            && ctx.ctext(k + 1) == "("
            && ctx.ctext(k + 2) == "unsafe_code"
            && ctx.ctext(k + 3) == ")"
            && ctx.ctext(k.wrapping_sub(1)) == "["
    })
}
