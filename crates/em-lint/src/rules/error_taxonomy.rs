//! `error-taxonomy`: the workspace has one error type (`EmError`) and
//! every fallible public API returns it. `Box<dyn Error>` and stringly
//! `Result<_, String>` escaping a `pub fn` erase the structure the
//! serve layer dispatches on (`is_transient()`, codec-vs-storage).

use super::{FileCtx, ERROR_TAXONOMY};
use crate::report::Finding;
use crate::walk::FileKind;

/// Check one file: scan `pub fn` signatures' return types.
pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for k in 0..ctx.clen() {
        if ctx.ctext(k) != "pub" || ctx.is_test(k) {
            continue;
        }
        // `pub fn` / `pub unsafe fn` / `pub const fn` / `pub async fn`
        // — but not `pub(crate) fn`, which is not public API.
        let mut f = k + 1;
        while matches!(ctx.ctext(f), "unsafe" | "const" | "async") {
            f += 1;
        }
        if ctx.ctext(f) != "fn" {
            continue;
        }
        // Find `->`, then scan the return type until the body `{`,
        // a `;` (trait method), or a `where` clause.
        let line = ctx.cline(f);
        let Some(arrow) = find_arrow(ctx, f) else {
            continue;
        };
        let mut ret = Vec::new();
        for j in arrow..(arrow + 96).min(ctx.clen()) {
            match ctx.ctext(j) {
                "{" | ";" | "where" => break,
                t => ret.push(t),
            }
        }
        if contains_seq(&ret, &["Box", "<", "dyn"]) && ret.contains(&"Error") {
            ctx.emit(
                out,
                ERROR_TAXONOMY,
                line,
                "public API returns `Box<dyn Error>`; use the workspace's \
                 structured `EmError` so callers can dispatch on the variant"
                    .to_string(),
            );
        } else if ret.contains(&"Result") && contains_seq(&ret, &[",", "String", ">"]) {
            ctx.emit(
                out,
                ERROR_TAXONOMY,
                line,
                "public API returns a stringly `Result<_, String>`; use the \
                 workspace's structured `EmError` instead"
                    .to_string(),
            );
        }
    }
}

/// Code-token index just after the `->` of this fn's signature, if it
/// has a return type. Skips the balanced `(…)` parameter list first so
/// closures with `->` inside default-arg positions don't confuse it.
fn find_arrow(ctx: &FileCtx, fn_ix: usize) -> Option<usize> {
    // Find the parameter list's `(`.
    let mut j = fn_ix + 1;
    while j < ctx.clen() && ctx.ctext(j) != "(" {
        if matches!(ctx.ctext(j), "{" | ";") {
            return None;
        }
        j += 1;
    }
    // Balance it.
    let mut depth = 0i64;
    while j < ctx.clen() {
        match ctx.ctext(j) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    // `-` `>` right after the params.
    if ctx.ctext(j + 1) == "-" && ctx.ctext(j + 2) == ">" {
        Some(j + 3)
    } else {
        None
    }
}

/// Is `needle` a contiguous subsequence of `hay`?
fn contains_seq(hay: &[&str], needle: &[&str]) -> bool {
    hay.windows(needle.len()).any(|w| w == needle)
}
