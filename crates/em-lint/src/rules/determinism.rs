//! Determinism rules for report-feeding modules.
//!
//! The workspace promises bit-identical `RunReport`/`GridReport`s and
//! snapshot bytes across thread counts and checkpoint boundaries
//! (PR 3/5/8 golden-test it). Three things silently break that
//! promise and are invisible to those tests at *new* call sites:
//!
//! - `map-iter` — `HashMap`/`HashSet` iteration order is randomized
//!   per process (SipHash keys), so any iteration that feeds ordered
//!   output must go through `BTreeMap` or an explicit sort;
//! - `wall-clock` — `Instant::now`/`SystemTime` values differ per run
//!   (sanctioned only for the timing fields `canonical()` zeroes);
//! - `env-read` — `std::env::var` makes results depend on ambient
//!   process state; config reads live in the allowlisted modules.

use super::{FileCtx, ENV_READ, MAP_ITER, WALL_CLOCK};
use crate::config::LintConfig;
use crate::report::Finding;
use crate::walk::FileKind;
use std::collections::BTreeSet;

/// Methods on a map/set that observe iteration order.
const ORDER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Check one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    if LintConfig::in_scope(ctx.rel, &ctx.config.determinism_scopes) {
        check_map_iter(ctx, out);
        check_wall_clock(ctx, out);
    }
    if !LintConfig::in_scope(ctx.rel, &ctx.config.env_allowlist) {
        check_env_read(ctx, out);
    }
}

/// Track identifiers bound to `HashMap`/`HashSet` (by type ascription
/// — covering `let`, fields and params — or by `HashMap::new()`-style
/// initializers), then flag order-observing uses of those names.
fn check_map_iter(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let tracked = collect_map_bindings(ctx);
    if tracked.is_empty() {
        return;
    }
    for k in 0..ctx.clen() {
        if ctx.is_test(k) || !tracked.contains(ctx.ctext(k)) {
            continue;
        }
        let name = ctx.ctext(k);
        // Don't flag the *binding* occurrences themselves: a name
        // directly followed by `:` (ascription/field) or preceded by
        // `let`/`mut` with `=` ahead is a definition site.
        if ctx.ctext(k + 1) == ":" {
            continue;
        }
        // Step over one `[index]` group (`bands[i].iter()`).
        let mut after = k + 1;
        if ctx.ctext(after) == "[" {
            let mut depth = 0i64;
            while after < ctx.clen() {
                match ctx.ctext(after) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            after += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                after += 1;
            }
        }
        if ctx.ctext(after) == "." && ORDER_METHODS.contains(&ctx.ctext(after + 1)) {
            let method = ctx.ctext(after + 1);
            ctx.emit(
                out,
                MAP_ITER,
                ctx.cline(k),
                format!(
                    "`{name}.{method}()` iterates a hash map/set in randomized \
                     order inside a report-feeding module; use `BTreeMap`/\
                     `BTreeSet` or sort before consuming"
                ),
            );
            continue;
        }
        // `for x in name {` / `for x in &name {` — direct iteration.
        if after == k + 1 && ctx.ctext(after) != "." && in_for_header(ctx, k) {
            ctx.emit(
                out,
                MAP_ITER,
                ctx.cline(k),
                format!(
                    "`for … in {name}` iterates a hash map/set in randomized \
                     order inside a report-feeding module; use `BTreeMap`/\
                     `BTreeSet` or sort before consuming"
                ),
            );
        }
    }
}

/// Names with a `HashMap`/`HashSet` type ascription or initializer.
fn collect_map_bindings(ctx: &FileCtx) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for k in 0..ctx.clen() {
        let t = ctx.ctext(k);
        let is_name = |s: &str| {
            !s.is_empty()
                && s.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
        };
        // `name : … HashMap< …` — let ascriptions, struct fields, fn
        // params. Only the *outermost* type matters: `Vec<HashMap<…>>`
        // iterates the Vec (deterministic), so it is not tracked.
        if t == ":"
            && is_name(ctx.ctext(k.wrapping_sub(1)))
            && ctx.ctext(k + 1) != ":"
            && head_is_map(ctx, k + 1)
        {
            tracked.insert(ctx.ctext(k.wrapping_sub(1)).to_string());
        }
        // `let [mut] name = … HashMap::new()/with_capacity/from…`
        if t == "let" {
            let mut n = k + 1;
            if ctx.ctext(n) == "mut" {
                n += 1;
            }
            let name = ctx.ctext(n);
            if is_name(name) && ctx.ctext(n + 1) == "=" && head_is_map(ctx, n + 2) {
                tracked.insert(name.to_string());
            }
        }
    }
    tracked
}

/// Does the type (or initializer expression) starting at code token
/// `j` have `HashMap`/`HashSet` as its outermost constructor? Skips
/// `&`/`mut`/lifetimes, `std::collections::`-style path prefixes, and
/// the transparent wrappers (`Arc`, `Rc`, `Box`, `Option`) through
/// which auto-deref still exposes map iteration.
fn head_is_map(ctx: &FileCtx, mut j: usize) -> bool {
    for _ in 0..12 {
        match ctx.ctext(j) {
            "&" | "mut" => j += 1,
            t if t.starts_with('\'') => j += 1, // lifetime
            "Arc" | "Rc" | "Box" | "Option" if ctx.ctext(j + 1) == "<" => j += 2,
            "HashMap" | "HashSet" => return true,
            t if !t.is_empty()
                && t.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                && ctx.ctext(j + 1) == ":"
                && ctx.ctext(j + 2) == ":" =>
            {
                j += 3; // path segment `std::`, `collections::`
            }
            _ => return false,
        }
    }
    false
}

/// Is code token `k` inside the header of a `for … in … {` loop —
/// i.e. between a `for` and its body `{`, after the `in`?
fn in_for_header(ctx: &FileCtx, k: usize) -> bool {
    // Walk back a bounded distance looking for `for`, aborting at
    // tokens that cannot appear in a loop header.
    let mut saw_in = false;
    let mut j = k;
    for _ in 0..24 {
        j = match j.checked_sub(1) {
            Some(j) => j,
            None => return false,
        };
        match ctx.ctext(j) {
            "in" => saw_in = true,
            "for" => return saw_in,
            ";" | "{" | "}" => return false,
            _ => {}
        }
    }
    false
}

/// `Instant::now()` / `SystemTime::now()` / `SystemTime` mentions.
fn check_wall_clock(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for k in 0..ctx.clen() {
        if ctx.is_test(k) {
            continue;
        }
        let t = ctx.ctext(k);
        let flagged = match t {
            "Instant" => ctx.ctext(k + 1) == ":" && ctx.ctext(k + 3) == "now",
            // Any SystemTime use is wall-clock, not just `::now()`
            // (UNIX_EPOCH arithmetic, serialized timestamps, …), but
            // skip the `use std::time::SystemTime;` import itself.
            "SystemTime" => ctx.ctext(k + 1) != ";",
            _ => false,
        };
        if flagged {
            ctx.emit(
                out,
                WALL_CLOCK,
                ctx.cline(k),
                format!(
                    "`{t}` reads the wall clock inside a report-feeding module; \
                     results must be reproducible — if this only fills a timing \
                     field that `canonical()` zeroes, say so with an allow marker"
                ),
            );
        }
    }
}

/// `std::env::var` / `env::var` / `var_os` outside the allowlist.
fn check_env_read(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for k in 0..ctx.clen() {
        if ctx.is_test(k) {
            continue;
        }
        if ctx.ctext(k) == "env"
            && ctx.ctext(k + 1) == ":"
            && ctx.ctext(k + 2) == ":"
            && (ctx.ctext(k + 3) == "var" || ctx.ctext(k + 3) == "var_os")
        {
            ctx.emit(
                out,
                ENV_READ,
                ctx.cline(k),
                "`env::var` read outside the config/bench/CLI allowlist makes \
                 results depend on ambient process state"
                    .to_string(),
            );
        }
    }
}
