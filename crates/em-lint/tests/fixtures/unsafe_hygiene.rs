//! Fixture: the `safety-comment` rule. Linted at any path — the rule
//! is not scope-gated; every `unsafe` in the workspace needs a
//! contract.

fn has_contract(p: *const u8) -> u8 {
    // SAFETY: fixture — the caller guarantees `p` is valid for reads.
    unsafe { *p }
}

fn missing_contract(p: *const u8) -> u8 {
    unsafe { *p } // ~FINDING(safety-comment)
}

fn multiline_contract(p: *const u8) -> u8 {
    // SAFETY: a contract may span several comment lines; the whole
    // contiguous comment block counts as one contract, so the
    // `unsafe` below is still "immediately preceded" by it.
    unsafe { *p }
}

fn match_arm_contract(tier: u8, p: *const u8) -> u8 {
    match tier {
        // SAFETY: fixture — same shape as the SIMD dispatch arms.
        1 => unsafe { *p },
        _ => 0,
    }
}

/// Reads one byte from a raw pointer.
///
/// # Safety
///
/// `p` must be non-null and valid for reads — rustdoc's own `# Safety`
/// section is an accepted contract for an `unsafe fn`.
pub unsafe fn doc_section_contract(p: *const u8) -> u8 {
    *p
}

pub unsafe fn undocumented(p: *const u8) -> u8 { // ~FINDING(safety-comment)
    *p
}

fn mentions_in_strings_are_not_unsafe() -> &'static str {
    "the word unsafe inside a string is just a word"
}

// A line comment mentioning unsafe code is not an unsafe token either.
fn mentions_in_comments_are_not_unsafe() -> u32 {
    0
}
