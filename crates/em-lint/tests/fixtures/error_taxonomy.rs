//! Fixture: the `error-taxonomy` rule. Public APIs must return the
//! structured workspace error, not `Box<dyn Error>` or a stringly
//! `Result<_, String>`.

pub fn boxed_error() -> Result<(), Box<dyn std::error::Error>> { // ~FINDING(error-taxonomy)
    Ok(())
}

pub fn stringly() -> Result<u32, String> { // ~FINDING(error-taxonomy)
    Ok(0)
}

pub async fn async_stringly(x: u32) -> Result<u32, String> { // ~FINDING(error-taxonomy)
    Ok(x)
}

fn private_fns_may_box() -> Result<(), Box<dyn std::error::Error>> {
    Ok(())
}

pub(crate) fn crate_private_is_not_public_api() -> Result<u32, String> {
    Ok(0)
}

pub fn string_payload_is_fine() -> Result<String, ()> {
    Ok(String::new()) // `String` in the Ok position is not stringly
}

pub fn no_return_type(_x: u32) {}

#[cfg(test)]
mod tests {
    pub fn helpers_in_test_code_are_exempt() -> Result<u32, String> {
        Ok(1)
    }
}
