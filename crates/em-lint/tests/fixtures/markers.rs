//! Fixture: allow-marker hygiene (`allow-marker` rule). A marker that
//! does not parse, or names a rule that does not exist, is itself a
//! finding — silencing must leave an audit trail, not a typo.

// em-lint: allow(no-panic) ~FINDING(allow-marker)
fn marker_without_reason() {}

// em-lint: allowing everything forever ~FINDING(allow-marker)
fn marker_without_allow_clause() {}

// em-lint: allow(not-a-real-rule) -- reason present, rule unknown ~FINDING(allow-marker)
fn marker_with_unknown_rule() {}

// em-lint: allow(wall-clock, env-read) -- one marker may name several rules
fn well_formed_multi_rule_marker() {}

// A comment that merely *mentions* em-lint: allow(...) syntax mid-prose
// is not a marker; only comments that start with `em-lint:` parse.
fn prose_mention_is_not_a_marker() {}

/* em-lint: allow(no-panic) ~FINDING(allow-marker) */
fn block_comment_markers_parse_too() {}
