//! Fixture: the determinism rules (`map-iter`, `wall-clock`,
//! `env-read`). Linted as if it lived under
//! `crates/battleship/src/engine/` — a report-feeding module outside
//! the env allowlist.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

fn map_method_iteration(m: &HashMap<u32, u32>) -> u32 {
    m.values().sum() // ~FINDING(map-iter)
}

fn set_for_loop(s: HashSet<u32>) -> u32 {
    let mut total = 0;
    for v in s { // ~FINDING(map-iter)
        total += v;
    }
    total
}

fn local_binding_by_initializer() -> Vec<u32> {
    let mut scores = HashMap::new();
    scores.insert(1u32, 2u32);
    scores.into_values().collect() // ~FINDING(map-iter)
}

fn vec_of_maps_is_fine(bands: &[HashMap<u64, u32>]) -> usize {
    bands.iter().count() // outer slice iterates in order: no finding
}

fn wrapped_map_still_counts(m: std::sync::Arc<HashMap<u32, u32>>) -> usize {
    m.keys().count() // ~FINDING(map-iter)
}

fn sorted_use_is_fine(m: &HashMap<u32, u32>) -> Option<u32> {
    m.get(&1).copied() // keyed access is deterministic
}

fn wall_clock() -> f64 {
    let t0 = Instant::now(); // ~FINDING(wall-clock)
    t0.elapsed().as_secs_f64()
}

fn allowed_wall_clock() -> Instant {
    // em-lint: allow(wall-clock) -- fixture: timing field zeroed downstream
    Instant::now() // ~ALLOWED(wall-clock)
}

fn system_time_nanos() -> u128 {
    let now = std::time::SystemTime::now(); // ~FINDING(wall-clock)
    now.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
}

fn env_read() -> Option<String> {
    std::env::var("EM_FIXTURE").ok() // ~FINDING(env-read)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_observe_order_and_clocks() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert_eq!(m.iter().count(), 0);
        let _ = Instant::now();
    }
}
