//! Fixture: the `no-panic` rule. The harness lints this file as if it
//! lived at `crates/battleship/src/serve/fixture.rs` (a panic scope)
//! and diffs the findings against the tilde-tagged annotations on the
//! offending lines.

fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // ~FINDING(no-panic)
}

fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present") // ~FINDING(no-panic)
}

fn bad_macro(x: u32) -> u32 {
    match x {
        0 => unreachable!("zero was filtered upstream"), // ~FINDING(no-panic)
        n => n,
    }
}

fn bad_lock(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap() // ~FINDING(no-panic)
}

fn justified(v: Option<u32>) -> u32 {
    // em-lint: allow(no-panic) -- fixture: invariant documented here
    v.unwrap() // ~ALLOWED(no-panic)
}

fn unwrap_or_is_legal(v: Option<u32>) -> u32 {
    v.unwrap_or(0) + v.unwrap_or_else(|| 1) + v.unwrap_or_default()
}

fn a_local_fn_named_unwrap_is_legal() -> u32 {
    fn unwrap() -> u32 {
        7
    }
    unwrap()
}

fn strings_do_not_count() -> &'static str {
    "calling .unwrap() here would panic!() at runtime"
}

fn raw_strings_do_not_count() -> &'static str {
    r#"x.unwrap() and a quoted ".expect(" too"#
}

/* block comments
   /* even nested ones mentioning x.unwrap() */
   do not count */
fn comments_do_not_count() -> u32 {
    0 // neither does .unwrap() in a line comment
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_test_code_is_fine() {
        Some(1u32).unwrap();
        Some(2u32).expect("fixture");
        panic!("tests may panic");
    }
}
