//! Fixture-driven rule tests.
//!
//! Each fixture under `tests/fixtures/` is annotated inline: a line
//! tagged `~FINDING(rule)` must produce exactly one *active* finding
//! for that rule on that line, a line tagged `~ALLOWED(rule)` must
//! produce a marker-silenced one, and every untagged line must stay
//! clean. The harness diffs the full (line, rule) sets, so both false
//! positives and false negatives fail loudly.

use em_lint::walk::FileKind;
use em_lint::{lint_source, LintConfig};
use std::collections::BTreeSet;

fn fixture(name: &str) -> Vec<u8> {
    let path = format!("{}/tests/fixtures/{}", env!("CARGO_MANIFEST_DIR"), name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("reading fixture {path}: {e}"))
}

/// Collect `(line, rule)` pairs for every `<tag>rule)` annotation.
fn expectations(text: &str, tag: &str) -> BTreeSet<(u32, String)> {
    let mut out = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find(tag) {
            let after = &rest[at + tag.len()..];
            let close = after.find(')').expect("unclosed expectation tag");
            out.insert((i as u32 + 1, after[..close].to_string()));
            rest = &after[close..];
        }
    }
    out
}

/// Lint `name` as if it lived at `rel` and diff findings against the
/// fixture's inline annotations.
fn check_fixture(name: &str, rel: &str) {
    let src = fixture(name);
    let text = String::from_utf8_lossy(&src).into_owned();
    let config = LintConfig::workspace_default();
    let findings = lint_source(rel, FileKind::Lib, &src, &config);

    let got = |allowed: bool| -> BTreeSet<(u32, String)> {
        findings
            .iter()
            .filter(|f| f.allow_reason.is_some() == allowed)
            .map(|f| (f.line, f.rule.to_string()))
            .collect()
    };
    assert_eq!(
        got(false),
        expectations(&text, "~FINDING("),
        "active findings diverge from annotations in {name}"
    );
    assert_eq!(
        got(true),
        expectations(&text, "~ALLOWED("),
        "allowed findings diverge from annotations in {name}"
    );
}

#[test]
fn panic_freedom_fixture() {
    check_fixture("panic_free.rs", "crates/battleship/src/serve/fixture.rs");
}

#[test]
fn determinism_fixture() {
    check_fixture("determinism.rs", "crates/battleship/src/engine/fixture.rs");
}

#[test]
fn unsafe_hygiene_fixture() {
    check_fixture("unsafe_hygiene.rs", "crates/em-vector/src/fixture.rs");
}

#[test]
fn error_taxonomy_fixture() {
    check_fixture("error_taxonomy.rs", "crates/em-core/src/fixture.rs");
}

#[test]
fn allow_marker_fixture() {
    check_fixture("markers.rs", "crates/em-matcher/src/fixture.rs");
}

#[test]
fn panic_rule_is_scope_gated() {
    // The same panic-ridden fixture outside serve/session/codec is
    // clean: the rule encodes *where* panics are banned, not a style.
    let src = fixture("panic_free.rs");
    let findings = lint_source(
        "crates/em-matcher/src/fixture.rs",
        FileKind::Lib,
        &src,
        &LintConfig::workspace_default(),
    );
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn determinism_rules_only_fire_in_report_feeding_scopes() {
    // Under the bench allowlist nothing fires: env reads are
    // sanctioned there and it is not a report-feeding module.
    let src = fixture("determinism.rs");
    let findings = lint_source(
        "crates/em-bench/src/fixture.rs",
        FileKind::Lib,
        &src,
        &LintConfig::workspace_default(),
    );
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn integration_test_files_are_exempt_from_scoped_rules() {
    let src = fixture("panic_free.rs");
    let findings = lint_source(
        "crates/battleship/src/serve/fixture.rs",
        FileKind::Test,
        &src,
        &LintConfig::workspace_default(),
    );
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn codec_is_a_panic_scope() {
    let src = b"pub fn decode(v: Option<u32>) -> u32 { v.unwrap() }";
    let findings = lint_source(
        "crates/em-core/src/codec.rs",
        FileKind::Lib,
        src,
        &LintConfig::workspace_default(),
    );
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "no-panic");
    assert_eq!(findings[0].line, 1);
    assert!(findings[0].allow_reason.is_none());
}

#[test]
fn json_report_escapes_and_parses() {
    // The hand-rolled JSON writer must survive quotes/backslashes in
    // messages and reasons; round-trip through the vendored serde_json.
    let src = fixture("determinism.rs");
    let findings = lint_source(
        "crates/battleship/src/engine/fixture.rs",
        FileKind::Lib,
        &src,
        &LintConfig::workspace_default(),
    );
    let report = em_lint::LintReport {
        root: "/tmp/ws with \"quotes\" and \\backslash".into(),
        files_scanned: 1,
        findings,
    };
    let json = report.to_json();
    let parsed: serde::Value = serde_json::from_str(&json).expect("report JSON must parse");
    let top = parsed.as_object().expect("top-level JSON object");
    let field = |k: &str| top.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    assert!(matches!(field("files_scanned"), Some(serde::Value::U64(1))));
    assert!(field("findings")
        .and_then(|v| v.as_array())
        .is_some_and(|a| !a.is_empty()));
    assert!(field("root")
        .and_then(|v| v.as_str())
        .is_some_and(|s| s.contains("\"quotes\"")));
}
