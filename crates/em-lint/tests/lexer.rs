//! Unit tests for the hand-rolled lexer: the tricky spans the rules
//! depend on getting right — strings that mention forbidden syntax,
//! raw strings with fences, nested comments, char-vs-lifetime, and
//! line accounting across multi-line tokens.

use em_lint::lexer::{lex, lex_bytes, TokKind};

fn kinds(src: &str) -> Vec<TokKind> {
    lex(src).into_iter().map(|t| t.kind).collect()
}

fn texts_of(src: &str, kind: TokKind) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter(|t| t.kind == kind)
        .map(|t| t.text)
        .collect()
}

#[test]
fn strings_hide_their_contents() {
    let toks = lex(r#"let s = "x.unwrap() /* not a comment */ // nor this";"#);
    assert!(toks.iter().all(|t| !t.is_comment()));
    assert!(!toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "unwrap"));
    let strs = texts_of(r#"let s = "x.unwrap()";"#, TokKind::Str);
    assert_eq!(strs, vec![r#""x.unwrap()""#.to_string()]);
}

#[test]
fn escaped_quotes_do_not_end_strings() {
    let toks = lex(r#"let s = "a \" b"; after"#);
    assert_eq!(
        texts_of(r#"let s = "a \" b"; after"#, TokKind::Str),
        vec![r#""a \" b""#]
    );
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "after"));
}

#[test]
fn raw_strings_with_fences() {
    let src = r###"let s = r##"quote " and fence "# inside"##; tail"###;
    let raws = texts_of(src, TokKind::RawStr);
    assert_eq!(raws, vec![r###"r##"quote " and fence "# inside"##"###]);
    assert!(lex(src)
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "tail"));
}

#[test]
fn byte_and_byte_raw_strings() {
    assert_eq!(texts_of(r#"b"bytes""#, TokKind::Str), vec![r#"b"bytes""#]);
    assert_eq!(
        texts_of(r##"br#"raw bytes"#"##, TokKind::RawStr),
        vec![r##"br#"raw bytes"#"##]
    );
    assert_eq!(texts_of("b'x'", TokKind::Char), vec!["b'x'"]);
}

#[test]
fn raw_identifiers_are_idents_not_raw_strings() {
    let toks = lex("let r#type = 1;");
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "r#type"));
    assert!(toks.iter().all(|t| t.kind != TokKind::RawStr));
}

#[test]
fn nested_block_comments_are_one_token() {
    let toks = lex("/* a /* nested b */ c */ fn x() {}");
    assert_eq!(toks[0].kind, TokKind::BlockComment);
    assert_eq!(toks[0].text, "/* a /* nested b */ c */");
    assert_eq!(toks[1].kind, TokKind::Ident);
    assert_eq!(toks[1].text, "fn");
}

#[test]
fn unterminated_comment_and_string_recover_at_eof() {
    assert_eq!(kinds("/* never closed"), vec![TokKind::BlockComment]);
    assert_eq!(kinds("\"never closed"), vec![TokKind::Str]);
    assert_eq!(kinds("r#\"never closed"), vec![TokKind::RawStr]);
}

#[test]
fn char_literals_vs_lifetimes() {
    let src = "let c = 'a'; fn f<'long>(x: &'long str) -> Option<char> { Some('\\n') }";
    let toks = lex(src);
    assert_eq!(texts_of(src, TokKind::Char), vec!["'a'", "'\\n'"]);
    assert_eq!(texts_of(src, TokKind::Lifetime), vec!["'long", "'long"]);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "str"));
}

#[test]
fn numbers_do_not_swallow_range_operators() {
    let src = "for i in 0..10 { let x = 1.5e-3 + 0xFF_u32; }";
    assert_eq!(
        texts_of(src, TokKind::Num),
        vec!["0", "10", "1.5e-3", "0xFF_u32"]
    );
}

#[test]
fn line_numbers_survive_multiline_tokens() {
    let src = "let a = \"line one\nline two\";\n/* c\n   c */\nfn later() {}";
    let toks = lex(src);
    let fn_tok = toks
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text == "fn")
        .expect("fn token");
    assert_eq!(fn_tok.line, 5);
}

#[test]
fn invalid_utf8_is_total_and_keeps_scanning() {
    let mut bytes = vec![0xFF, 0xFE, b' '];
    bytes.extend_from_slice(b"fn x() {}");
    bytes.push(0x80);
    let toks = lex_bytes(&bytes);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "fn"));
}
