//! Property tests: the lexer and everything stacked on it are *total*.
//! Linting runs over whatever bytes happen to be in the tree, so no
//! input — valid Rust, truncated Rust, or raw byte soup — may panic it.

use em_lint::lexer::{lex, lex_bytes};
use em_lint::scope::FileModel;
use em_lint::walk::FileKind;
use em_lint::{lint_source, LintConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup lexes without panicking, line numbers stay
    /// monotone and within the file, and the scope model builds on top.
    #[test]
    fn lexing_byte_soup_is_total(bytes in prop::collection::vec(0u8..=255, 0..2048)) {
        let toks = lex_bytes(&bytes);
        let max_line = bytes.iter().filter(|&&b| b == b'\n').count() as u32 + 1;
        let mut prev = 1u32;
        for t in &toks {
            prop_assert!(t.line >= prev, "line numbers went backwards");
            prop_assert!((1..=max_line).contains(&t.line), "line {} out of range", t.line);
            prev = t.line;
        }
        let _ = FileModel::build(&toks);
    }

    /// Strings over the bytes the lexer special-cases (quotes, hashes,
    /// slashes, stars, backslashes) — the adversarial subset for
    /// delimiter handling.
    #[test]
    fn lexing_delimiter_soup_is_total(src in r#"[ \nbr"'#/\\*a0]{0,512}"#) {
        let toks = lex(&src);
        let _ = FileModel::build(&toks);
    }

    /// The whole per-file pipeline (lex → scope → every rule → marker
    /// resolution) is panic-free on arbitrary input, even when the file
    /// claims a path where all rules are in scope.
    #[test]
    fn lint_source_on_soup_is_total(bytes in prop::collection::vec(0u8..=255, 0..1024)) {
        let config = LintConfig::workspace_default();
        let _ = lint_source("crates/battleship/src/serve/soup.rs", FileKind::Lib, &bytes, &config);
        let _ = lint_source("crates/battleship/src/session/soup.rs", FileKind::Lib, &bytes, &config);
    }
}
