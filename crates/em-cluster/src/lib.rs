#![forbid(unsafe_code)]
//! # em-cluster
//!
//! Clustering substrate for the `battleship-em` workspace.
//!
//! The battleship approach partitions the pair-representation space with a
//! *constrained* K-Means "to avoid small clusters that cannot be
//! represented under budget limitations, or alternatively, large clusters
//! that demand multiple similarity comparisons" (§3.3.1), choosing `k` by
//! the Kneedle algorithm over the SSE curve with a silhouette-score
//! fallback. The ZeroER baseline additionally needs a two-component
//! Gaussian mixture fitted by EM. All of that lives here:
//!
//! * [`kmeans()`](kmeans::kmeans) — Lloyd's algorithm with k-means++ seeding,
//! * [`constrained`] — min/max cluster-size enforcement, with a greedy
//!   capacity-respecting assignment (scales to the benchmark sizes) and
//!   an exact min-cost-flow assignment ([`flow`]) for small instances,
//! * [`kneedle`] — knee-point detection (Satopaa et al. 2011),
//! * [`silhouette`] — cluster-quality scoring (Rousseeuw 1987),
//! * [`kselect`] — the paper's `k`-selection policy combining the two,
//! * [`gmm`] — diagonal-covariance Gaussian mixture EM,
//! * [`reference`] — the seed's scalar/serial clustering paths, kept
//!   verbatim as the measured baseline for the blocked + parallel
//!   implementations above.

pub mod constrained;
pub mod flow;
pub mod gmm;
pub mod kmeans;
pub mod kneedle;
pub mod kselect;
pub mod reference;
pub mod silhouette;

pub use constrained::{constrained_kmeans, ConstrainedConfig};
pub use gmm::{Gmm, GmmConfig};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use kneedle::kneedle_decreasing;
pub use kselect::{select_k, KSelectConfig, KSelection, KSelectionMethod};
pub use reference::{
    constrained_kmeans_reference, kmeans_reference, select_k_reference, silhouette_reference,
};
pub use silhouette::silhouette_score;
