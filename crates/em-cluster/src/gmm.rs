//! Diagonal-covariance Gaussian mixture models fitted by EM.
//!
//! The ZeroER baseline (Wu et al. 2020) "relies on the assumption that
//! similarity vectors for match pairs should differ from that of no match
//! pairs": it fits a two-component generative model over similarity
//! feature vectors and reads match probabilities off the responsibilities.
//! This module is that substrate — a standard EM fit of `K` diagonal
//! Gaussians, kept general (any `K`) because it is also useful for
//! latent-space diagnostics.

// Numeric kernels here walk several parallel arrays by index; the
// indexed form keeps the lockstep structure visible.
#![allow(clippy::needless_range_loop)]
use em_core::{EmError, Result, Rng};
use em_vector::Embeddings;

/// GMM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub n_components: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on mean log-likelihood improvement.
    pub tol: f64,
    /// Variance floor — keeps components from collapsing onto single
    /// points.
    pub min_var: f64,
    /// Seed for responsibility initialisation.
    pub seed: u64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig {
            n_components: 2,
            max_iters: 100,
            tol: 1e-6,
            min_var: 1e-6,
            seed: 0x6E_E4,
        }
    }
}

/// A fitted mixture.
#[derive(Debug, Clone)]
pub struct Gmm {
    /// Mixing weights, sum to 1.
    pub weights: Vec<f64>,
    /// Component means, `n_components × dim` row-major.
    pub means: Vec<Vec<f64>>,
    /// Component diagonal variances, same shape as `means`.
    pub variances: Vec<Vec<f64>>,
    /// Mean log-likelihood of the training data at convergence.
    pub log_likelihood: f64,
    /// EM iterations actually run.
    pub iterations: usize,
}

impl Gmm {
    /// Fit a mixture to `data` by EM.
    ///
    /// Initialisation assigns soft responsibilities from a k-means-like
    /// seeding (distinct random points as means), which keeps the fit
    /// deterministic per seed.
    pub fn fit(data: &Embeddings, config: GmmConfig) -> Result<Gmm> {
        let n = data.len();
        let k = config.n_components;
        if n == 0 {
            return Err(EmError::EmptyInput("gmm data".into()));
        }
        if k == 0 || k > n {
            return Err(EmError::InvalidConfig(format!(
                "gmm n_components={k} must be in 1..={n}"
            )));
        }
        if config.min_var <= 0.0 {
            return Err(EmError::InvalidConfig("gmm min_var must be > 0".into()));
        }
        let dim = data.dim();
        let mut rng = Rng::seed_from_u64(config.seed);

        // Init: means at distinct sample points, shared global variance,
        // uniform weights.
        let seeds = rng.sample_indices(n, k);
        let mut means: Vec<Vec<f64>> = seeds
            .iter()
            .map(|&i| data.row(i).iter().map(|&x| x as f64).collect())
            .collect();
        let global_mean: Vec<f64> = {
            let c = data.centroid()?;
            c.into_iter().map(|x| x as f64).collect()
        };
        let mut global_var = vec![0.0f64; dim];
        for i in 0..n {
            for (d, &x) in data.row(i).iter().enumerate() {
                let diff = x as f64 - global_mean[d];
                global_var[d] += diff * diff;
            }
        }
        for v in &mut global_var {
            *v = (*v / n as f64).max(config.min_var);
        }
        let mut variances: Vec<Vec<f64>> = (0..k).map(|_| global_var.clone()).collect();
        let mut weights = vec![1.0 / k as f64; k];

        let mut resp = vec![0.0f64; n * k];
        let mut prev_ll = f64::NEG_INFINITY;
        let mut iterations = 0;

        for iter in 0..config.max_iters {
            iterations = iter + 1;
            // E step: responsibilities via log-sum-exp.
            let mut ll = 0.0f64;
            for i in 0..n {
                let x = data.row(i);
                let mut logp = vec![0.0f64; k];
                for c in 0..k {
                    logp[c] = weights[c].max(1e-300).ln()
                        + log_gaussian_diag(x, &means[c], &variances[c]);
                }
                let max_lp = logp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let sum_exp: f64 = logp.iter().map(|&lp| (lp - max_lp).exp()).sum();
                let log_norm = max_lp + sum_exp.ln();
                ll += log_norm;
                for c in 0..k {
                    resp[i * k + c] = (logp[c] - log_norm).exp();
                }
            }
            ll /= n as f64;

            // M step.
            for c in 0..k {
                let nk: f64 = (0..n).map(|i| resp[i * k + c]).sum();
                let nk_safe = nk.max(1e-12);
                weights[c] = nk / n as f64;
                for d in 0..dim {
                    let mut m = 0.0f64;
                    for i in 0..n {
                        m += resp[i * k + c] * data.row(i)[d] as f64;
                    }
                    means[c][d] = m / nk_safe;
                }
                for d in 0..dim {
                    let mut v = 0.0f64;
                    for i in 0..n {
                        let diff = data.row(i)[d] as f64 - means[c][d];
                        v += resp[i * k + c] * diff * diff;
                    }
                    variances[c][d] = (v / nk_safe).max(config.min_var);
                }
            }

            if (ll - prev_ll).abs() < config.tol {
                prev_ll = ll;
                break;
            }
            prev_ll = ll;
        }

        Ok(Gmm {
            weights,
            means,
            variances,
            log_likelihood: prev_ll,
            iterations,
        })
    }

    /// Posterior responsibilities `p(component | x)` for one vector.
    pub fn responsibilities(&self, x: &[f32]) -> Result<Vec<f64>> {
        let k = self.weights.len();
        if x.len() != self.means[0].len() {
            return Err(EmError::DimensionMismatch {
                context: "gmm responsibilities".into(),
                expected: self.means[0].len(),
                actual: x.len(),
            });
        }
        let mut logp = vec![0.0f64; k];
        for c in 0..k {
            logp[c] = self.weights[c].max(1e-300).ln()
                + log_gaussian_diag(x, &self.means[c], &self.variances[c]);
        }
        let max_lp = logp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let sum_exp: f64 = logp.iter().map(|&lp| (lp - max_lp).exp()).sum();
        let log_norm = max_lp + sum_exp.ln();
        Ok(logp.into_iter().map(|lp| (lp - log_norm).exp()).collect())
    }

    /// Index of the most likely component for `x`.
    pub fn predict(&self, x: &[f32]) -> Result<usize> {
        let r = self.responsibilities(x)?;
        Ok(r.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }
}

/// Log density of a diagonal Gaussian at `x`.
fn log_gaussian_diag(x: &[f32], mean: &[f64], var: &[f64]) -> f64 {
    const LOG_2PI: f64 = 1.8378770664093453;
    let mut acc = 0.0f64;
    for d in 0..x.len() {
        let diff = x[d] as f64 - mean[d];
        acc += -0.5 * (LOG_2PI + var[d].ln() + diff * diff / var[d]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gaussians(n_per: usize, sep: f32, seed: u64) -> (Embeddings, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            let cx = if c == 0 { -sep } else { sep };
            for _ in 0..n_per {
                rows.push(vec![
                    cx + rng.normal() as f32 * 0.5,
                    rng.normal() as f32 * 0.5,
                ]);
                labels.push(c);
            }
        }
        (Embeddings::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn recovers_two_separated_components() {
        let (data, labels) = two_gaussians(150, 3.0, 1);
        let gmm = Gmm::fit(&data, GmmConfig::default()).unwrap();
        // Means should sit near ±3 on the x axis (order unknown).
        let mut xs: Vec<f64> = gmm.means.iter().map(|m| m[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] + 3.0).abs() < 0.3, "mean {}", xs[0]);
        assert!((xs[1] - 3.0).abs() < 0.3, "mean {}", xs[1]);
        // Predictions should agree with ground truth up to label swap.
        let preds: Vec<usize> = (0..data.len())
            .map(|i| gmm.predict(data.row(i)).unwrap())
            .collect();
        let agree = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        let acc = agree.max(data.len() - agree) as f64 / data.len() as f64;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn weights_sum_to_one_and_reflect_imbalance() {
        let mut rng = Rng::seed_from_u64(2);
        let mut rows = Vec::new();
        for _ in 0..180 {
            rows.push(vec![rng.normal() as f32 * 0.4 - 3.0]);
        }
        for _ in 0..20 {
            rows.push(vec![rng.normal() as f32 * 0.4 + 3.0]);
        }
        let data = Embeddings::from_rows(&rows).unwrap();
        let gmm = Gmm::fit(&data, GmmConfig::default()).unwrap();
        let total: f64 = gmm.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let minor = gmm.weights.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((minor - 0.1).abs() < 0.05, "minor weight {minor}");
    }

    #[test]
    fn responsibilities_are_probabilities() {
        let (data, _) = two_gaussians(50, 2.0, 3);
        let gmm = Gmm::fit(&data, GmmConfig::default()).unwrap();
        for i in 0..data.len() {
            let r = gmm.responsibilities(data.row(i)).unwrap();
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(r.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn log_likelihood_improves_with_components_on_multimodal_data() {
        let (data, _) = two_gaussians(100, 4.0, 4);
        let one = Gmm::fit(
            &data,
            GmmConfig {
                n_components: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let two = Gmm::fit(&data, GmmConfig::default()).unwrap();
        assert!(
            two.log_likelihood > one.log_likelihood + 0.1,
            "2-comp {} vs 1-comp {}",
            two.log_likelihood,
            one.log_likelihood
        );
    }

    #[test]
    fn variance_floor_prevents_collapse() {
        // Duplicated points would otherwise drive a variance to zero.
        let rows = vec![vec![1.0f32], vec![1.0], vec![1.0], vec![5.0], vec![5.0]];
        let data = Embeddings::from_rows(&rows).unwrap();
        let gmm = Gmm::fit(&data, GmmConfig::default()).unwrap();
        for c in &gmm.variances {
            assert!(c.iter().all(|&v| v >= 1e-6));
        }
    }

    #[test]
    fn validates_config() {
        let (data, _) = two_gaussians(5, 1.0, 5);
        assert!(Gmm::fit(
            &data,
            GmmConfig {
                n_components: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(Gmm::fit(
            &data,
            GmmConfig {
                n_components: 99,
                ..Default::default()
            }
        )
        .is_err());
        assert!(Gmm::fit(
            &data,
            GmmConfig {
                min_var: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        let gmm = Gmm::fit(&data, GmmConfig::default()).unwrap();
        assert!(gmm.responsibilities(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = two_gaussians(40, 2.5, 6);
        let a = Gmm::fit(&data, GmmConfig::default()).unwrap();
        let b = Gmm::fit(&data, GmmConfig::default()).unwrap();
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.means, b.means);
    }
}
