//! Scalar reference implementations — the pre-kernel baseline.
//!
//! Verbatim ports of the seed's serial clustering code paths: one
//! point-at-a-time `sq_euclidean` (single-accumulator), distances
//! recomputed in every pass, no parallelism. They exist for two
//! purposes:
//!
//! * the `em-bench` spatial suite measures the blocked/parallel pipeline
//!   **against these** in the same run (the ≥4× acceptance gate), and
//! * regression tests can cross-check that the optimized paths still
//!   produce clusterings of the same quality.
//!
//! Nothing in the production pipeline calls into this module. Outputs
//! are *not* bit-compatible with the optimized paths (the unrolled
//! distance kernel sums in a different association); quality-level
//! equivalence is asserted in tests instead.

// Numeric kernels here walk several parallel arrays by index; the
// indexed form keeps the lockstep structure visible.
#![allow(clippy::needless_range_loop)]
use em_core::{EmError, Result, Rng};
use em_vector::embeddings::sq_euclidean;
use em_vector::Embeddings;

use crate::kmeans::{KMeansConfig, KMeansResult};
use crate::kneedle::kneedle_decreasing;
use crate::kselect::{KSelectConfig, KSelection, KSelectionMethod};
use crate::ConstrainedConfig;

/// Seed-style k-means++ seeding (serial, scalar distances).
fn kmeanspp_init_reference(data: &Embeddings, k: usize, rng: &mut Rng) -> Vec<usize> {
    let n = data.len();
    let mut chosen = Vec::with_capacity(k);
    chosen.push(rng.below(n));
    let mut d2: Vec<f64> = (0..n)
        .map(|i| sq_euclidean(data.row(i), data.row(chosen[0])) as f64)
        .collect();
    while chosen.len() < k {
        let next = match rng.weighted_index(&d2) {
            Some(i) => i,
            None => rng.below(n),
        };
        chosen.push(next);
        for i in 0..n {
            let d = sq_euclidean(data.row(i), data.row(next)) as f64;
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    chosen
}

/// Seed-style Lloyd's algorithm: serial assignment with the
/// single-accumulator distance loop.
pub fn kmeans_reference(data: &Embeddings, config: KMeansConfig) -> Result<KMeansResult> {
    let n = data.len();
    let k = config.k;
    if n == 0 {
        return Err(EmError::EmptyInput("kmeans data".into()));
    }
    if k == 0 || k > n {
        return Err(EmError::InvalidConfig(format!(
            "kmeans k={k} must be in 1..={n}"
        )));
    }
    let dim = data.dim();
    let mut rng = Rng::seed_from_u64(config.seed);

    let seeds = kmeanspp_init_reference(data, k, &mut rng);
    let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
    for &s in &seeds {
        centroids.extend_from_slice(data.row(s));
    }

    let mut assignment = vec![0usize; n];

    for _iter in 0..config.max_iters {
        for (i, slot) in assignment.iter_mut().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = sq_euclidean(data.row(i), &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            *slot = best;
        }

        let mut new_centroids = vec![0.0f32; k * dim];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignment[i];
            counts[c] += 1;
            for (acc, &x) in new_centroids[c * dim..(c + 1) * dim]
                .iter_mut()
                .zip(data.row(i))
            {
                *acc += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_euclidean(
                            data.row(a),
                            &centroids[assignment[a] * dim..(assignment[a] + 1) * dim],
                        );
                        let db = sq_euclidean(
                            data.row(b),
                            &centroids[assignment[b] * dim..(assignment[b] + 1) * dim],
                        );
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("n > 0");
                new_centroids[c * dim..(c + 1) * dim].copy_from_slice(data.row(far));
            } else {
                let inv = 1.0 / counts[c] as f32;
                for x in &mut new_centroids[c * dim..(c + 1) * dim] {
                    *x *= inv;
                }
            }
        }

        let movement: f32 = (0..k)
            .map(|c| {
                sq_euclidean(
                    &centroids[c * dim..(c + 1) * dim],
                    &new_centroids[c * dim..(c + 1) * dim],
                )
            })
            .sum();
        centroids = new_centroids;
        if movement < config.tol {
            break;
        }
    }

    let mut sse = 0.0f32;
    let mut sizes = vec![0usize; k];
    for (i, slot) in assignment.iter_mut().enumerate() {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..k {
            let d = sq_euclidean(data.row(i), &centroids[c * dim..(c + 1) * dim]);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        *slot = best;
        sizes[best] += 1;
        sse += best_d;
    }

    Ok(KMeansResult {
        centroids: Embeddings::from_flat(dim, centroids)?,
        assignment,
        sse,
        sizes,
    })
}

/// Seed-style constrained K-Means (greedy assignment mode only):
/// distances recomputed in the regret, assignment and repair passes.
pub fn constrained_kmeans_reference(
    data: &Embeddings,
    config: ConstrainedConfig,
) -> Result<KMeansResult> {
    let n = data.len();
    if n == 0 {
        return Err(EmError::EmptyInput("constrained kmeans data".into()));
    }
    let dim = data.dim();
    let k = config.k;
    if k == 0 || k > n || config.min_size > config.max_size {
        return Err(EmError::InvalidConfig(
            "invalid constrained reference config".into(),
        ));
    }
    if config.k * config.min_size > n || config.k * config.max_size < n {
        return Err(EmError::InvalidConfig("infeasible size bounds".into()));
    }

    let init = kmeans_reference(
        data,
        KMeansConfig {
            k,
            max_iters: 5,
            tol: 1e-4,
            seed: config.seed,
        },
    )?;
    let mut centroids: Vec<f32> = init.centroids.flat().to_vec();
    let mut assignment = vec![usize::MAX; n];
    let mut rng = Rng::seed_from_u64(config.seed ^ 0xBADC_0FFE);

    for _iter in 0..config.max_iters {
        let new_assignment = greedy_assign_reference(data, &centroids, k, config, &mut rng)?;
        let converged = new_assignment == assignment;
        assignment = new_assignment;

        let mut sums = vec![0.0f32; k * dim];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignment[i];
            counts[c] += 1;
            for (acc, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(data.row(i)) {
                *acc += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f32;
                for x in &mut sums[c * dim..(c + 1) * dim] {
                    *x *= inv;
                }
            } else {
                sums[c * dim..(c + 1) * dim].copy_from_slice(&centroids[c * dim..(c + 1) * dim]);
            }
        }
        centroids = sums;
        if converged {
            break;
        }
    }

    let mut sse = 0.0f32;
    let mut sizes = vec![0usize; k];
    for i in 0..n {
        let c = assignment[i];
        sizes[c] += 1;
        sse += sq_euclidean(data.row(i), &centroids[c * dim..(c + 1) * dim]);
    }

    Ok(KMeansResult {
        centroids: Embeddings::from_flat(dim, centroids)?,
        assignment,
        sse,
        sizes,
    })
}

fn greedy_assign_reference(
    data: &Embeddings,
    centroids: &[f32],
    k: usize,
    config: ConstrainedConfig,
    rng: &mut Rng,
) -> Result<Vec<usize>> {
    let n = data.len();
    let dim = data.dim();
    let dist = |i: usize, c: usize| -> f32 {
        sq_euclidean(data.row(i), &centroids[c * dim..(c + 1) * dim])
    };

    let mut order: Vec<usize> = (0..n).collect();
    let mut regret = vec![0.0f32; n];
    for (i, r) in regret.iter_mut().enumerate() {
        let mut best = f32::INFINITY;
        let mut second = f32::INFINITY;
        for c in 0..k {
            let d = dist(i, c);
            if d < best {
                second = best;
                best = d;
            } else if d < second {
                second = d;
            }
        }
        *r = if second.is_finite() {
            second - best
        } else {
            0.0
        };
    }
    rng.shuffle(&mut order);
    order.sort_by(|&a, &b| {
        regret[b]
            .partial_cmp(&regret[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut assignment = vec![usize::MAX; n];
    let mut sizes = vec![0usize; k];
    for &i in &order {
        let mut best_c = usize::MAX;
        let mut best_d = f32::INFINITY;
        for c in 0..k {
            if sizes[c] >= config.max_size {
                continue;
            }
            let d = dist(i, c);
            if d < best_d {
                best_d = d;
                best_c = c;
            }
        }
        if best_c == usize::MAX {
            return Err(EmError::NoSolution(
                "greedy assignment ran out of capacity".into(),
            ));
        }
        assignment[i] = best_c;
        sizes[best_c] += 1;
    }

    while let Some(under) = (0..k).find(|&c| sizes[c] < config.min_size) {
        let mut best: Option<(usize, f32)> = None;
        for i in 0..n {
            let cur = assignment[i];
            if cur == under || sizes[cur] <= config.min_size {
                continue;
            }
            let added = dist(i, under) - dist(i, cur);
            if best.map(|(_, a)| added < a).unwrap_or(true) {
                best = Some((i, added));
            }
        }
        let Some((steal, _)) = best else {
            return Err(EmError::NoSolution(
                "min-size repair found no donor cluster".into(),
            ));
        };
        sizes[assignment[steal]] -= 1;
        assignment[steal] = under;
        sizes[under] += 1;
    }

    Ok(assignment)
}

/// Seed-style scalar silhouette score (serial).
pub fn silhouette_reference(
    data: &Embeddings,
    assignment: &[usize],
    k: usize,
    sample_cap: usize,
    seed: u64,
) -> Result<f64> {
    let n = data.len();
    if n == 0 || assignment.len() != n || k < 2 || sample_cap == 0 {
        return Err(EmError::InvalidConfig(
            "invalid silhouette reference input".into(),
        ));
    }
    let mut cluster_sizes = vec![0usize; k];
    for &c in assignment {
        if c >= k {
            return Err(EmError::IndexOutOfBounds {
                context: "silhouette cluster id".into(),
                index: c,
                len: k,
            });
        }
        cluster_sizes[c] += 1;
    }
    let sample: Vec<usize> = if n <= sample_cap {
        (0..n).collect()
    } else {
        Rng::seed_from_u64(seed).sample_indices(n, sample_cap)
    };
    let mut total = 0.0f64;
    let mut counted = 0usize;
    let mut sums = vec![0.0f64; k];
    for &i in &sample {
        let own = assignment[i];
        if cluster_sizes[own] <= 1 {
            counted += 1;
            continue;
        }
        sums.iter_mut().for_each(|s| *s = 0.0);
        for j in 0..n {
            if j == i {
                continue;
            }
            sums[assignment[j]] += (sq_euclidean(data.row(i), data.row(j)) as f64).sqrt();
        }
        let a = sums[own] / (cluster_sizes[own] - 1) as f64;
        let mut b = f64::INFINITY;
        for c in 0..k {
            if c == own || cluster_sizes[c] == 0 {
                continue;
            }
            b = b.min(sums[c] / cluster_sizes[c] as f64);
        }
        if !b.is_finite() {
            counted += 1;
            continue;
        }
        let denom = a.max(b);
        total += if denom > 0.0 { (b - a) / denom } else { 0.0 };
        counted += 1;
    }
    Ok(if counted == 0 {
        0.0
    } else {
        total / counted as f64
    })
}

/// Seed-style serial k sweep (scalar K-Means per candidate, serial
/// silhouette fallback).
pub fn select_k_reference(data: &Embeddings, config: KSelectConfig) -> Result<KSelection> {
    let n = data.len();
    if n < 4 {
        return Err(EmError::EmptyInput(
            "k selection needs at least 4 points".into(),
        ));
    }
    if config.k_min < 2 {
        return Err(EmError::InvalidConfig("k_min must be >= 2".into()));
    }
    let k_max = config.k_max.min(n);
    if config.k_min + 2 > k_max {
        return Err(EmError::InvalidConfig(format!(
            "k range [{}, {k_max}] too narrow for kneedle (need 3 candidates)",
            config.k_min
        )));
    }

    let mut curve = Vec::with_capacity(k_max - config.k_min + 1);
    let mut clusterings = Vec::with_capacity(k_max - config.k_min + 1);
    for k in config.k_min..=k_max {
        let res = kmeans_reference(
            data,
            KMeansConfig {
                k,
                max_iters: config.kmeans_iters,
                tol: 1e-4,
                seed: config.seed ^ (k as u64) << 32,
            },
        )?;
        curve.push((k as f64, res.mean_sse() as f64));
        clusterings.push(res);
    }

    if let Some(idx) = kneedle_decreasing(&curve, config.sensitivity)? {
        return Ok(KSelection {
            k: config.k_min + idx,
            method: KSelectionMethod::Kneedle,
            sse_curve: curve,
        });
    }

    let mut best_k = config.k_min;
    let mut best_score = f64::NEG_INFINITY;
    for (i, res) in clusterings.iter().enumerate() {
        let k = config.k_min + i;
        let score = silhouette_reference(
            data,
            &res.assignment,
            k,
            config.silhouette_sample,
            config.seed,
        )?;
        if score > best_score {
            best_score = score;
            best_k = k;
        }
    }
    Ok(KSelection {
        k: best_k,
        method: KSelectionMethod::Silhouette,
        sse_curve: curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, n_blobs: usize, seed: u64) -> Embeddings {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for b in 0..n_blobs {
            let cx = (b % 3) as f32 * 10.0;
            let cy = (b / 3) as f32 * 10.0;
            for _ in 0..n_per {
                rows.push(vec![
                    cx + rng.normal() as f32 * 0.5,
                    cy + rng.normal() as f32 * 0.5,
                ]);
            }
        }
        Embeddings::from_rows(&rows).unwrap()
    }

    #[test]
    fn reference_kmeans_recovers_blobs() {
        let data = blobs(25, 3, 1);
        let res = kmeans_reference(
            &data,
            KMeansConfig {
                k: 3,
                seed: 7,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(res.sizes.iter().sum::<usize>(), 75);
        assert!(res.sizes.iter().all(|&s| s == 25), "{:?}", res.sizes);
    }

    #[test]
    fn optimized_and_reference_quality_match() {
        // Not bit-compatible (different FP association) — but on blob
        // data both must land clusterings of essentially equal SSE.
        let data = blobs(30, 4, 2);
        let cfg = KMeansConfig {
            k: 4,
            seed: 3,
            ..Default::default()
        };
        let fast = crate::kmeans::kmeans(&data, cfg).unwrap();
        let slow = kmeans_reference(&data, cfg).unwrap();
        let ratio = fast.sse as f64 / slow.sse.max(1e-9) as f64;
        assert!((0.8..=1.25).contains(&ratio), "sse ratio {ratio}");
    }

    #[test]
    fn reference_constrained_respects_bounds() {
        let data = blobs(20, 3, 4);
        let res = constrained_kmeans_reference(
            &data,
            ConstrainedConfig {
                k: 3,
                min_size: 15,
                max_size: 25,
                max_iters: 10,
                seed: 5,
                mode: Default::default(),
                ann: Default::default(),
            },
        )
        .unwrap();
        assert!(res.sizes.iter().all(|&s| (15..=25).contains(&s)));
    }

    #[test]
    fn reference_select_k_finds_blob_count() {
        let data = blobs(30, 4, 6);
        let sel = select_k_reference(
            &data,
            KSelectConfig {
                k_min: 2,
                k_max: 9,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((3..=5).contains(&sel.k), "k = {}", sel.k);
    }
}
