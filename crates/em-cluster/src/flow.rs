//! Min-cost max-flow solver (successive shortest augmenting paths).
//!
//! Bradley, Bennett & Demiriz (2000) show that the constrained K-Means
//! assignment step is exactly a minimum-cost flow problem. This module
//! provides the solver used by [`crate::constrained`]'s exact assignment
//! mode; it is a classic SPFA-based successive-shortest-paths
//! implementation, adequate for the point×cluster bipartite graphs of
//! small-to-medium instances.

use em_core::{EmError, Result};

/// Edge of the residual network.
#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    /// Remaining capacity.
    cap: i64,
    cost: i64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A min-cost max-flow instance on a fixed node set.
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    graph: Vec<Vec<Edge>>,
}

/// Result of a flow computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowResult {
    /// Units of flow pushed from source to sink.
    pub flow: i64,
    /// Total cost of the pushed flow.
    pub cost: i64,
}

impl MinCostFlow {
    /// Create a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            graph: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` iff the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Add a directed edge `from → to`; returns an id usable with
    /// [`MinCostFlow::edge_flow`].
    pub fn add_edge(
        &mut self,
        from: usize,
        to: usize,
        cap: i64,
        cost: i64,
    ) -> Result<(usize, usize)> {
        let n = self.graph.len();
        if from >= n || to >= n {
            return Err(EmError::IndexOutOfBounds {
                context: "flow edge endpoint".into(),
                index: from.max(to),
                len: n,
            });
        }
        if cap < 0 {
            return Err(EmError::InvalidConfig("flow capacity must be >= 0".into()));
        }
        let fwd = self.graph[from].len();
        let bwd = self.graph[to].len();
        self.graph[from].push(Edge {
            to,
            cap,
            cost,
            rev: bwd,
        });
        self.graph[to].push(Edge {
            to: from,
            cap: 0,
            cost: -cost,
            rev: fwd,
        });
        Ok((from, fwd))
    }

    /// Flow currently pushed through edge `(node, edge_index)` as returned
    /// by [`MinCostFlow::add_edge`] — the residual of the reverse edge.
    pub fn edge_flow(&self, id: (usize, usize)) -> i64 {
        let e = &self.graph[id.0][id.1];
        self.graph[e.to][e.rev].cap
    }

    /// Push up to `max_flow` units from `source` to `sink` at minimum
    /// cost. Handles negative edge costs (no negative cycles reachable
    /// from the source are permitted).
    pub fn run(&mut self, source: usize, sink: usize, max_flow: i64) -> Result<FlowResult> {
        let n = self.graph.len();
        if source >= n || sink >= n {
            return Err(EmError::IndexOutOfBounds {
                context: "flow terminal".into(),
                index: source.max(sink),
                len: n,
            });
        }
        if source == sink {
            return Err(EmError::InvalidConfig("source == sink".into()));
        }
        let mut total_flow = 0i64;
        let mut total_cost = 0i64;

        while total_flow < max_flow {
            // SPFA shortest path by cost in the residual graph.
            let mut dist = vec![i64::MAX; n];
            let mut in_queue = vec![false; n];
            let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
            let mut queue = std::collections::VecDeque::new();
            dist[source] = 0;
            queue.push_back(source);
            in_queue[source] = true;
            let mut relaxations = 0usize;
            let relax_budget = n
                .saturating_mul(self.graph.iter().map(Vec::len).sum::<usize>())
                .saturating_add(1);
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                for (ei, e) in self.graph[u].iter().enumerate() {
                    if e.cap <= 0 || dist[u] == i64::MAX {
                        continue;
                    }
                    let nd = dist[u] + e.cost;
                    if nd < dist[e.to] {
                        relaxations += 1;
                        if relaxations > relax_budget {
                            return Err(EmError::NoSolution(
                                "negative cycle detected in flow network".into(),
                            ));
                        }
                        dist[e.to] = nd;
                        prev[e.to] = Some((u, ei));
                        if !in_queue[e.to] {
                            queue.push_back(e.to);
                            in_queue[e.to] = true;
                        }
                    }
                }
            }
            if dist[sink] == i64::MAX {
                break; // No more augmenting paths.
            }

            // Bottleneck along the path.
            let mut bottleneck = max_flow - total_flow;
            let mut v = sink;
            while let Some((u, ei)) = prev[v] {
                bottleneck = bottleneck.min(self.graph[u][ei].cap);
                v = u;
            }
            // Apply.
            let mut v = sink;
            while let Some((u, ei)) = prev[v] {
                let rev = self.graph[u][ei].rev;
                self.graph[u][ei].cap -= bottleneck;
                self.graph[v][rev].cap += bottleneck;
                v = u;
            }
            total_flow += bottleneck;
            total_cost += bottleneck * dist[sink];
        }

        Ok(FlowResult {
            flow: total_flow,
            cost: total_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        // 0 → 1 → 2, caps 5 and 3, costs 1 and 2.
        let mut f = MinCostFlow::new(3);
        f.add_edge(0, 1, 5, 1).unwrap();
        f.add_edge(1, 2, 3, 2).unwrap();
        let r = f.run(0, 2, i64::MAX).unwrap();
        assert_eq!(r.flow, 3);
        assert_eq!(r.cost, 3 * 3);
    }

    #[test]
    fn chooses_cheaper_path_first() {
        // Two parallel paths 0→1→3 (cost 1+1) and 0→2→3 (cost 5+5),
        // each capacity 1. Asking for 1 unit must take the cheap one.
        let mut f = MinCostFlow::new(4);
        let cheap = f.add_edge(0, 1, 1, 1).unwrap();
        f.add_edge(1, 3, 1, 1).unwrap();
        let dear = f.add_edge(0, 2, 1, 5).unwrap();
        f.add_edge(2, 3, 1, 5).unwrap();
        let r = f.run(0, 3, 1).unwrap();
        assert_eq!(r.flow, 1);
        assert_eq!(r.cost, 2);
        assert_eq!(f.edge_flow(cheap), 1);
        assert_eq!(f.edge_flow(dear), 0);
    }

    #[test]
    fn respects_max_flow_cap() {
        let mut f = MinCostFlow::new(2);
        f.add_edge(0, 1, 100, 1).unwrap();
        let r = f.run(0, 1, 7).unwrap();
        assert_eq!(r.flow, 7);
        assert_eq!(r.cost, 7);
    }

    #[test]
    fn disconnected_yields_zero_flow() {
        let mut f = MinCostFlow::new(3);
        f.add_edge(0, 1, 5, 1).unwrap();
        let r = f.run(0, 2, 10).unwrap();
        assert_eq!(r.flow, 0);
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn negative_costs_preferred() {
        // Negative-cost edge should be used even though a zero-cost route
        // exists (this is the mechanism the constrained assignment uses to
        // enforce minimum cluster sizes).
        let mut f = MinCostFlow::new(4);
        let neg = f.add_edge(0, 1, 1, -10).unwrap();
        f.add_edge(1, 3, 1, 0).unwrap();
        f.add_edge(0, 2, 1, 0).unwrap();
        f.add_edge(2, 3, 1, 0).unwrap();
        let r = f.run(0, 3, 1).unwrap();
        assert_eq!(r.cost, -10);
        assert_eq!(f.edge_flow(neg), 1);
    }

    #[test]
    fn assignment_problem_exact() {
        // 2 workers × 2 jobs; costs [[1, 10], [10, 1]] — optimum is the
        // diagonal with total cost 2.
        let mut f = MinCostFlow::new(6); // 0 src, 1-2 workers, 3-4 jobs, 5 sink
        f.add_edge(0, 1, 1, 0).unwrap();
        f.add_edge(0, 2, 1, 0).unwrap();
        let w1j1 = f.add_edge(1, 3, 1, 1).unwrap();
        f.add_edge(1, 4, 1, 10).unwrap();
        f.add_edge(2, 3, 1, 10).unwrap();
        let w2j2 = f.add_edge(2, 4, 1, 1).unwrap();
        f.add_edge(3, 5, 1, 0).unwrap();
        f.add_edge(4, 5, 1, 0).unwrap();
        let r = f.run(0, 5, 2).unwrap();
        assert_eq!(r.flow, 2);
        assert_eq!(r.cost, 2);
        assert_eq!(f.edge_flow(w1j1), 1);
        assert_eq!(f.edge_flow(w2j2), 1);
    }

    #[test]
    fn validates_inputs() {
        let mut f = MinCostFlow::new(2);
        assert!(f.add_edge(0, 5, 1, 1).is_err());
        assert!(f.add_edge(0, 1, -1, 1).is_err());
        assert!(f.run(0, 0, 1).is_err());
        assert!(f.run(0, 9, 1).is_err());
    }
}
