//! Kneedle knee-point detection (Satopaa, Albrecht, Irwin & Raghavan,
//! "Finding a 'Kneedle' in a Haystack", 2011).
//!
//! The paper selects the number of clusters `k` "according to the Kneedle
//! algorithm over the average sum of squared distance between the centroid
//! of each cluster to its members" (§3.3.1). The SSE-vs-`k` curve is
//! decreasing and convex-ish; the knee is the point of maximum curvature,
//! i.e. where adding clusters stops paying.
//!
//! This is the offline variant: normalize both axes to the unit square,
//! flip decreasing curves into increasing ones, form the difference curve
//! `d(x) = y_norm(x) − x`, and accept a local maximum of `d` as a knee if
//! the curve then drops below a sensitivity-scaled threshold before
//! rising again.

use em_core::{EmError, Result};

/// Find the knee of a *decreasing* curve given as `(x, y)` points sorted
/// by ascending `x`.
///
/// Returns the x-index (into the input slice) of the detected knee, or
/// `None` when no knee clears the sensitivity threshold. `sensitivity`
/// is the Kneedle `S` parameter; 1.0 is the paper-recommended default,
/// larger values demand more pronounced knees.
pub fn kneedle_decreasing(points: &[(f64, f64)], sensitivity: f64) -> Result<Option<usize>> {
    if points.len() < 3 {
        return Err(EmError::EmptyInput(
            "kneedle needs at least 3 points".into(),
        ));
    }
    if sensitivity <= 0.0 {
        return Err(EmError::InvalidConfig(
            "kneedle sensitivity must be > 0".into(),
        ));
    }
    for w in points.windows(2) {
        if w[1].0 <= w[0].0 {
            return Err(EmError::InvalidConfig(
                "kneedle x values must be strictly increasing".into(),
            ));
        }
    }

    let n = points.len();
    let (x_min, x_max) = (points[0].0, points[n - 1].0);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, y) in points {
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        return Ok(None); // Flat curve: no knee.
    }

    // Normalize to the unit square; flip the decreasing curve so the knee
    // becomes a local max of the difference curve.
    let xs: Vec<f64> = points
        .iter()
        .map(|&(x, _)| (x - x_min) / (x_max - x_min))
        .collect();
    let ys: Vec<f64> = points
        .iter()
        .map(|&(_, y)| 1.0 - (y - y_min) / (y_max - y_min))
        .collect();
    let diff: Vec<f64> = xs.iter().zip(&ys).map(|(x, y)| y - x).collect();

    // Mean spacing for the threshold decay.
    let mean_dx = xs.windows(2).map(|w| w[1] - w[0]).sum::<f64>() / (n - 1) as f64;

    // Scan local maxima of the difference curve.
    let mut best_knee: Option<usize> = None;
    let mut i = 1;
    while i + 1 < n {
        let is_local_max = diff[i] > diff[i - 1] && diff[i] >= diff[i + 1];
        if is_local_max {
            let threshold = diff[i] - sensitivity * mean_dx;
            // Knee confirmed if the difference curve drops below the
            // threshold before the next local maximum.
            let mut j = i + 1;
            let mut confirmed = false;
            while j < n {
                if diff[j] > diff[i] {
                    break; // A higher max supersedes this candidate.
                }
                if diff[j] < threshold {
                    confirmed = true;
                    break;
                }
                j += 1;
            }
            // The final candidate of a curve that never rises again also
            // counts (standard Kneedle end-of-data handling).
            if !confirmed && j == n && diff[i] - sensitivity * mean_dx > 0.0 {
                confirmed = true;
            }
            if confirmed {
                // Keep the most pronounced knee.
                if best_knee.map(|b| diff[i] > diff[b]).unwrap_or(true) {
                    best_knee = Some(i);
                }
            }
        }
        i += 1;
    }
    Ok(best_knee)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An L-shaped curve with an obvious knee at x = 3.
    fn elbow_curve() -> Vec<(f64, f64)> {
        vec![
            (1.0, 100.0),
            (2.0, 55.0),
            (3.0, 20.0),
            (4.0, 15.0),
            (5.0, 12.0),
            (6.0, 10.0),
            (7.0, 9.0),
            (8.0, 8.5),
        ]
    }

    #[test]
    fn finds_obvious_elbow() {
        let knee = kneedle_decreasing(&elbow_curve(), 1.0).unwrap();
        assert_eq!(knee, Some(2), "expected knee at x=3 (index 2)");
    }

    #[test]
    fn straight_line_has_no_knee() {
        let line: Vec<(f64, f64)> = (0..10)
            .map(|i| (i as f64, 100.0 - 10.0 * i as f64))
            .collect();
        let knee = kneedle_decreasing(&line, 1.0).unwrap();
        assert_eq!(knee, None);
    }

    #[test]
    fn flat_curve_has_no_knee() {
        let flat: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 3.0)).collect();
        assert_eq!(kneedle_decreasing(&flat, 1.0).unwrap(), None);
    }

    #[test]
    fn smooth_hyperbola_knee_near_origin_bend() {
        // y = 1/x over x in [1, 10]: knee in the low-x bend region.
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 1.0 / i as f64)).collect();
        let knee = kneedle_decreasing(&pts, 1.0)
            .unwrap()
            .expect("knee expected");
        assert!((1..=3).contains(&knee), "knee index {knee}");
    }

    #[test]
    fn higher_sensitivity_rejects_weak_knees() {
        // A very gentle bend.
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                (x, 100.0 - 5.0 * x + 0.05 * x * x)
            })
            .collect();
        let relaxed = kneedle_decreasing(&pts, 0.1).unwrap();
        let strict = kneedle_decreasing(&pts, 25.0).unwrap();
        assert!(strict.is_none() || relaxed.is_some());
        assert_eq!(strict, None, "sensitivity 25 should reject a gentle bend");
    }

    #[test]
    fn validates_input() {
        assert!(kneedle_decreasing(&[(0.0, 1.0), (1.0, 0.5)], 1.0).is_err());
        assert!(kneedle_decreasing(&elbow_curve(), 0.0).is_err());
        let unsorted = vec![(1.0, 3.0), (1.0, 2.0), (2.0, 1.0)];
        assert!(kneedle_decreasing(&unsorted, 1.0).is_err());
    }
}
