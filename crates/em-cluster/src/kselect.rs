//! The paper's `k`-selection policy.
//!
//! "\[We\] select the k value according to the Kneedle algorithm over the
//! average sum of squared distance between the centroid of each cluster to
//! its members. If the Kneedle algorithm fails to find a target value we
//! select k as the one that maximizes the silhouette score" (§3.3.1).

use rayon::prelude::*;

use em_core::{EmError, Result};
use em_vector::{AnnPolicy, Embeddings};

use crate::kmeans::{kmeans, KMeansConfig};
use crate::kneedle::kneedle_decreasing;
use crate::silhouette::{build_silhouette_cache, silhouette_score, silhouette_score_ann};

/// Configuration for the `k` sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KSelectConfig {
    /// Smallest `k` to try (inclusive), at least 2.
    pub k_min: usize,
    /// Largest `k` to try (inclusive).
    pub k_max: usize,
    /// Kneedle sensitivity (`S`), 1.0 per the Kneedle paper.
    pub sensitivity: f64,
    /// Lloyd iterations per candidate `k` (the sweep only needs curve
    /// shape, not converged clusterings).
    pub kmeans_iters: usize,
    /// Point-sample cap for the silhouette fallback.
    pub silhouette_sample: usize,
    /// Seed for all sweep randomness.
    pub seed: u64,
    /// Exact ↔ ANN routing for the silhouette fallback: pools larger
    /// than `ann.threshold` score candidates with the HNSW-backed
    /// estimator instead of the `O(sample · n)` exact structure.
    pub ann: AnnPolicy,
}

impl Default for KSelectConfig {
    fn default() -> Self {
        KSelectConfig {
            k_min: 2,
            k_max: 12,
            sensitivity: 1.0,
            kmeans_iters: 15,
            silhouette_sample: 512,
            seed: 0x5E1EC7,
            ann: AnnPolicy::default(),
        }
    }
}

/// How the returned `k` was chosen — reported in experiment logs so runs
/// can be audited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KSelectionMethod {
    /// Kneedle found a knee on the mean-SSE curve.
    Kneedle,
    /// Kneedle failed; maximum exact silhouette was used.
    Silhouette,
    /// Kneedle failed; maximum ANN-estimated silhouette was used
    /// (pool size above the [`AnnPolicy`] threshold).
    SilhouetteAnn,
}

/// Outcome of [`select_k`].
#[derive(Debug, Clone)]
pub struct KSelection {
    /// The selected number of clusters.
    pub k: usize,
    /// Which rule produced it.
    pub method: KSelectionMethod,
    /// The swept `(k, mean SSE)` curve, for logging/inspection.
    pub sse_curve: Vec<(f64, f64)>,
}

/// Sweep `k` over the configured range and pick per the paper's policy.
///
/// The range is clamped to `[2, n]`; errors if fewer than 3 candidate
/// values remain (Kneedle needs 3 points).
pub fn select_k(data: &Embeddings, config: KSelectConfig) -> Result<KSelection> {
    let n = data.len();
    if n < 4 {
        return Err(EmError::EmptyInput(
            "k selection needs at least 4 points".into(),
        ));
    }
    if config.k_min < 2 {
        return Err(EmError::InvalidConfig("k_min must be >= 2".into()));
    }
    let k_max = config.k_max.min(n);
    if config.k_min + 2 > k_max {
        return Err(EmError::InvalidConfig(format!(
            "k range [{}, {k_max}] too narrow for kneedle (need 3 candidates)",
            config.k_min
        )));
    }

    // Sweep the candidate k values in parallel — each run is an
    // independent K-Means with its own derived seed, and results are
    // collected in k order, so the curve is identical to the serial
    // sweep (asserted by the golden test below).
    let ks: Vec<usize> = (config.k_min..=k_max).collect();
    let runs: Vec<Result<crate::kmeans::KMeansResult>> = ks
        .par_iter()
        .map(|&k| {
            kmeans(
                data,
                KMeansConfig {
                    k,
                    max_iters: config.kmeans_iters,
                    tol: 1e-4,
                    seed: config.seed ^ (k as u64) << 32,
                },
            )
        })
        .collect();
    let mut curve = Vec::with_capacity(ks.len());
    let mut clusterings = Vec::with_capacity(ks.len());
    for (k, run) in ks.iter().zip(runs) {
        let res = run?;
        curve.push((*k as f64, res.mean_sse() as f64));
        clusterings.push(res);
    }

    if let Some(idx) = kneedle_decreasing(&curve, config.sensitivity)? {
        return Ok(KSelection {
            k: config.k_min + idx,
            method: KSelectionMethod::Kneedle,
            sse_curve: curve,
        });
    }

    // Fallback: maximize silhouette. Scores for the candidate
    // clusterings are computed in parallel; the argmax scan stays
    // serial in k order (strict `>`, ties to the smaller k). Above the
    // ANN-policy threshold the HNSW-backed estimator replaces the exact
    // O(sample · n) score: its cache (scoring sample + neighbour lists)
    // is clustering-independent, so one build serves the whole sweep.
    let use_ann = config.ann.use_ann(n);
    let cache = if use_ann {
        Some(build_silhouette_cache(
            data,
            config.silhouette_sample,
            config.seed,
            &config.ann,
        )?)
    } else {
        None
    };
    let scores: Vec<Result<f64>> = (0..clusterings.len())
        .into_par_iter()
        .map(|i| match &cache {
            Some(cache) => silhouette_score_ann(
                data,
                &clusterings[i].assignment,
                config.k_min + i,
                &clusterings[i].centroids,
                cache,
            ),
            None => silhouette_score(
                data,
                &clusterings[i].assignment,
                config.k_min + i,
                config.silhouette_sample,
                config.seed,
            ),
        })
        .collect();
    let mut best_k = config.k_min;
    let mut best_score = f64::NEG_INFINITY;
    for (i, score) in scores.into_iter().enumerate() {
        let score = score?;
        if score > best_score {
            best_score = score;
            best_k = config.k_min + i;
        }
    }
    Ok(KSelection {
        k: best_k,
        method: if use_ann {
            KSelectionMethod::SilhouetteAnn
        } else {
            KSelectionMethod::Silhouette
        },
        sse_curve: curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::Rng;

    fn blobs(n_per: usize, n_blobs: usize, spread: f32, seed: u64) -> Embeddings {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for b in 0..n_blobs {
            let cx = (b % 3) as f32 * 12.0;
            let cy = (b / 3) as f32 * 12.0;
            for _ in 0..n_per {
                rows.push(vec![
                    cx + rng.normal() as f32 * spread,
                    cy + rng.normal() as f32 * spread,
                ]);
            }
        }
        Embeddings::from_rows(&rows).unwrap()
    }

    #[test]
    fn finds_k_near_truth_on_clear_blobs() {
        let data = blobs(40, 4, 0.4, 1);
        let sel = select_k(
            &data,
            KSelectConfig {
                k_min: 2,
                k_max: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (3..=5).contains(&sel.k),
            "selected k={} (method {:?})",
            sel.k,
            sel.method
        );
    }

    #[test]
    fn sse_curve_is_monotone_decreasing_mostly() {
        let data = blobs(30, 3, 0.6, 2);
        let sel = select_k(&data, KSelectConfig::default()).unwrap();
        // Allow small non-monotonicity from local optima, but the start
        // must dominate the end.
        let first = sel.sse_curve.first().unwrap().1;
        let last = sel.sse_curve.last().unwrap().1;
        assert!(first > last);
    }

    #[test]
    fn silhouette_fallback_on_structureless_data() {
        // Uniform noise: Kneedle on a near-linear SSE curve usually fails,
        // silhouette then decides. Either way a valid k must come back.
        let mut rng = Rng::seed_from_u64(3);
        let rows: Vec<Vec<f32>> = (0..120)
            .map(|_| vec![rng.f32() * 10.0, rng.f32() * 10.0])
            .collect();
        let data = Embeddings::from_rows(&rows).unwrap();
        let sel = select_k(&data, KSelectConfig::default()).unwrap();
        assert!((2..=12).contains(&sel.k));
    }

    #[test]
    fn validates_range() {
        let data = blobs(10, 2, 0.3, 4);
        assert!(select_k(
            &data,
            KSelectConfig {
                k_min: 1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(select_k(
            &data,
            KSelectConfig {
                k_min: 5,
                k_max: 6,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(25, 3, 0.5, 5);
        let a = select_k(&data, KSelectConfig::default()).unwrap();
        let b = select_k(&data, KSelectConfig::default()).unwrap();
        assert_eq!(a.k, b.k);
        assert_eq!(a.method, b.method);
    }

    /// Forcing the ANN route (threshold 0, huge sensitivity so kneedle
    /// abstains) must pick a k within ±1 of the exact fallback and
    /// report the routed method.
    #[test]
    fn ann_fallback_tracks_exact_within_one() {
        let data = blobs(60, 4, 0.5, 6);
        let exact_cfg = KSelectConfig {
            sensitivity: 1e9,
            ann: AnnPolicy::never(),
            ..Default::default()
        };
        let exact = select_k(&data, exact_cfg).unwrap();
        assert_eq!(exact.method, KSelectionMethod::Silhouette);
        let ann_cfg = KSelectConfig {
            ann: AnnPolicy::always(),
            ..exact_cfg
        };
        let ann = select_k(&data, ann_cfg).unwrap();
        assert_eq!(ann.method, KSelectionMethod::SilhouetteAnn);
        assert!(
            ann.k.abs_diff(exact.k) <= 1,
            "ann k={} vs exact k={}",
            ann.k,
            exact.k
        );
        // The SSE sweep itself is routing-independent.
        assert_eq!(ann.sse_curve.len(), exact.sse_curve.len());
        for (a, e) in ann.sse_curve.iter().zip(&exact.sse_curve) {
            assert_eq!(a.1.to_bits(), e.1.to_bits());
        }
    }

    /// Below the threshold the ANN field is inert: the default policy
    /// (crossover 16384) must leave small-pool selection bit-identical
    /// to an explicit never() policy.
    #[test]
    fn below_threshold_ignores_ann_policy() {
        let data = blobs(30, 3, 0.6, 7);
        let a = select_k(
            &data,
            KSelectConfig {
                ann: AnnPolicy::default(),
                ..Default::default()
            },
        )
        .unwrap();
        let b = select_k(
            &data,
            KSelectConfig {
                ann: AnnPolicy::never(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a.k, b.k);
        assert_eq!(a.method, b.method);
    }

    /// Golden test: the parallel sweep is bit-identical to the serial
    /// sweep — same selected k, same method, same SSE curve bits.
    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        for seed in [11u64, 12, 13] {
            let data = blobs(30, 4, 0.5, seed);
            let cfg = KSelectConfig {
                seed,
                ..Default::default()
            };
            let par = select_k(&data, cfg).unwrap();
            let ser = rayon::serial_scope(|| select_k(&data, cfg).unwrap());
            assert_eq!(par.k, ser.k);
            assert_eq!(par.method, ser.method);
            let pb: Vec<(u64, u64)> = par
                .sse_curve
                .iter()
                .map(|(x, y)| (x.to_bits(), y.to_bits()))
                .collect();
            let sb: Vec<(u64, u64)> = ser
                .sse_curve
                .iter()
                .map(|(x, y)| (x.to_bits(), y.to_bits()))
                .collect();
            assert_eq!(pb, sb);
        }
    }
}
