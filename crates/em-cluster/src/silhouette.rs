//! Silhouette score (Rousseeuw 1987).
//!
//! The paper's fallback `k`-selection criterion: "If the Kneedle algorithm
//! fails to find a target value we select k as the one that maximizes the
//! silhouette score, a common clustering evaluation metric measuring
//! intra-cluster cohesiveness comparing to inter-cluster separation"
//! (§3.3.1).

use rayon::prelude::*;

use em_core::{EmError, Result, Rng};
use em_vector::kernel::sq_dist;
use em_vector::{AnnPolicy, Embeddings, Hnsw};

/// Mean silhouette coefficient of a clustering, in `[-1, 1]`.
///
/// For each sampled point `i` with cluster `c`:
/// `a(i)` = mean distance to other members of `c`,
/// `b(i)` = min over other clusters of the mean distance to members,
/// `s(i) = (b − a) / max(a, b)`; singleton clusters contribute `s = 0`.
///
/// The exact score is O(n²); `sample_cap` bounds the cost by evaluating
/// `s(i)` on a seeded sample of points (distances still go to *all*
/// points, so the estimate is unbiased over the sampled set).
pub fn silhouette_score(
    data: &Embeddings,
    assignment: &[usize],
    k: usize,
    sample_cap: usize,
    seed: u64,
) -> Result<f64> {
    let n = data.len();
    if n == 0 {
        return Err(EmError::EmptyInput("silhouette data".into()));
    }
    if assignment.len() != n {
        return Err(EmError::DimensionMismatch {
            context: "silhouette assignment".into(),
            expected: n,
            actual: assignment.len(),
        });
    }
    if k < 2 {
        return Err(EmError::InvalidConfig(
            "silhouette needs at least 2 clusters".into(),
        ));
    }
    if let Some(&bad) = assignment.iter().find(|&&c| c >= k) {
        return Err(EmError::IndexOutOfBounds {
            context: "silhouette cluster id".into(),
            index: bad,
            len: k,
        });
    }
    if sample_cap == 0 {
        return Err(EmError::InvalidConfig("sample_cap must be > 0".into()));
    }

    let mut cluster_sizes = vec![0usize; k];
    for &c in assignment {
        cluster_sizes[c] += 1;
    }

    let sample: Vec<usize> = if n <= sample_cap {
        (0..n).collect()
    } else {
        Rng::seed_from_u64(seed).sample_indices(n, sample_cap)
    };

    // Each sampled point's coefficient is independent — compute them in
    // parallel and reduce serially in sample order (deterministic for
    // any thread count).
    let coefficients: Vec<f64> = sample
        .par_iter()
        .map(|&i| {
            let own = assignment[i];
            if cluster_sizes[own] <= 1 {
                // Singleton: defined as 0.
                return 0.0;
            }
            let mut sums = vec![0.0f64; k];
            let row_i = data.row(i);
            for j in 0..n {
                if j == i {
                    continue;
                }
                sums[assignment[j]] += (sq_dist(row_i, data.row(j)) as f64).sqrt();
            }
            let a = sums[own] / (cluster_sizes[own] - 1) as f64;
            let mut b = f64::INFINITY;
            for c in 0..k {
                if c == own || cluster_sizes[c] == 0 {
                    continue;
                }
                b = b.min(sums[c] / cluster_sizes[c] as f64);
            }
            if !b.is_finite() {
                // All other clusters empty: degenerate, treat as 0.
                return 0.0;
            }
            let denom = a.max(b);
            if denom > 0.0 {
                (b - a) / denom
            } else {
                0.0
            }
        })
        .collect();
    let total: f64 = coefficients.iter().sum();
    let counted = coefficients.len();
    Ok(if counted == 0 {
        0.0
    } else {
        total / counted as f64
    })
}

/// Reusable inputs for the ANN silhouette estimator: the scoring sample
/// plus each sampled point's approximate nearest neighbours.
///
/// Neither depends on any particular clustering, so one cache serves
/// every candidate `k` of a selection sweep. The neighbours come from an
/// HNSW index built over a seeded reference subsample of at most
/// [`AnnPolicy::sample_cap`] points — per the BENCH_blocking.json sweep
/// that build stays well under a second, while the exact silhouette
/// rebuilds an `O(sample · n)` distance structure per candidate `k`.
pub struct SilhouetteCache {
    /// Scoring points (global indices); same derivation as the exact
    /// path's sample so the two estimators rank comparably.
    sample: Vec<usize>,
    /// `neighbors[s]` = global indices of `sample[s]`'s ANN neighbours
    /// (members of the reference subsample, self excluded).
    neighbors: Vec<Vec<usize>>,
}

impl SilhouetteCache {
    /// Number of scoring points.
    pub fn sample_len(&self) -> usize {
        self.sample.len()
    }
}

/// Build the shared scoring-sample + ANN-neighbour cache for
/// [`silhouette_score_ann`].
pub fn build_silhouette_cache(
    data: &Embeddings,
    sample_cap: usize,
    seed: u64,
    ann: &AnnPolicy,
) -> Result<SilhouetteCache> {
    let n = data.len();
    if n == 0 {
        return Err(EmError::EmptyInput("silhouette cache data".into()));
    }
    if sample_cap == 0 {
        return Err(EmError::InvalidConfig("sample_cap must be > 0".into()));
    }
    ann.validate()?;

    let sample: Vec<usize> = if n <= sample_cap {
        (0..n).collect()
    } else {
        Rng::seed_from_u64(seed).sample_indices(n, sample_cap)
    };
    let reference: Vec<usize> = if n <= ann.sample_cap {
        (0..n).collect()
    } else {
        Rng::seed_from_u64(seed ^ 0xA55_5117).sample_indices(n, ann.sample_cap)
    };
    let index = Hnsw::build(
        &data.gather(&reference)?,
        ann.hnsw_seeded(seed ^ 0x5117_4E4E),
    )?;

    // Queries are independent; collect preserves sample order.
    let neighbors: Vec<Vec<usize>> = sample
        .par_iter()
        .map(|&i| -> Result<Vec<usize>> {
            let found = index.search(data.row(i), ann.top_m, None)?;
            Ok(found
                .into_iter()
                .map(|nb| reference[nb.index])
                .filter(|&g| g != i)
                .collect())
        })
        .collect::<Vec<_>>()
        .into_iter()
        .collect::<Result<_>>()?;

    Ok(SilhouetteCache { sample, neighbors })
}

/// ANN-backed silhouette estimate for one clustering, in `[-1, 1]`.
///
/// Replaces the exact score's per-point scan over all `n` points with
/// centroid-moment distance estimates: the mean distance from point `x`
/// to the members of cluster `c` is approximated by
/// `sqrt(‖x − μ_c‖² + msd_c)` where `msd_c` is the cluster's mean
/// squared distance to its centroid (exact in expectation for the
/// squared distance; the square root upper-bounds the mean uniformly
/// across clusters, so the argmax over `k` is preserved in practice).
/// The cached HNSW neighbours shortlist which competing clusters are
/// evaluated for `b(i)` — clusters owning none of `i`'s neighbours can't
/// plausibly be its nearest neighbour cluster. Total cost per candidate
/// `k` is `O(n·d)` (one msd pass) plus `O(sample · top_m · d)`.
pub fn silhouette_score_ann(
    data: &Embeddings,
    assignment: &[usize],
    k: usize,
    centroids: &Embeddings,
    cache: &SilhouetteCache,
) -> Result<f64> {
    let n = data.len();
    if n == 0 {
        return Err(EmError::EmptyInput("silhouette data".into()));
    }
    if assignment.len() != n {
        return Err(EmError::DimensionMismatch {
            context: "silhouette assignment".into(),
            expected: n,
            actual: assignment.len(),
        });
    }
    if k < 2 {
        return Err(EmError::InvalidConfig(
            "silhouette needs at least 2 clusters".into(),
        ));
    }
    if centroids.len() < k || centroids.dim() != data.dim() {
        return Err(EmError::InvalidConfig(format!(
            "silhouette centroids {}×{} don't cover k={k} × dim {}",
            centroids.len(),
            centroids.dim(),
            data.dim()
        )));
    }
    if let Some(&bad) = assignment.iter().find(|&&c| c >= k) {
        return Err(EmError::IndexOutOfBounds {
            context: "silhouette cluster id".into(),
            index: bad,
            len: k,
        });
    }

    let mut cluster_sizes = vec![0usize; k];
    for &c in assignment {
        cluster_sizes[c] += 1;
    }

    // Cluster second moments, one parallel pass over all points.
    let point_sq: Vec<f64> = (0..n)
        .into_par_iter()
        .map(|i| sq_dist(data.row(i), centroids.row(assignment[i])) as f64)
        .collect();
    let mut msd = vec![0.0f64; k];
    for i in 0..n {
        msd[assignment[i]] += point_sq[i];
    }
    for c in 0..k {
        if cluster_sizes[c] > 0 {
            msd[c] /= cluster_sizes[c] as f64;
        }
    }

    let est = |i: usize, c: usize| -> f64 {
        let d2 = sq_dist(data.row(i), centroids.row(c)) as f64;
        (d2 + msd[c]).max(0.0).sqrt()
    };

    let coefficients: Vec<f64> = (0..cache.sample.len())
        .into_par_iter()
        .map(|s| {
            let i = cache.sample[s];
            let own = assignment[i];
            if cluster_sizes[own] <= 1 {
                return 0.0;
            }
            let a = est(i, own);
            // Shortlist competing clusters via the cached neighbours;
            // fall back to the full scan when they all share i's cluster.
            let mut b = f64::INFINITY;
            let mut shortlisted = false;
            for &g in &cache.neighbors[s] {
                let c = assignment[g];
                if c != own {
                    shortlisted = true;
                    b = b.min(est(i, c));
                }
            }
            if !shortlisted {
                for (c, &size) in cluster_sizes.iter().enumerate().take(k) {
                    if c == own || size == 0 {
                        continue;
                    }
                    b = b.min(est(i, c));
                }
            }
            if !b.is_finite() {
                return 0.0;
            }
            let denom = a.max(b);
            if denom > 0.0 {
                (b - a) / denom
            } else {
                0.0
            }
        })
        .collect();
    let total: f64 = coefficients.iter().sum();
    Ok(if coefficients.is_empty() {
        0.0
    } else {
        total / coefficients.len() as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(
        n_per: usize,
        centers: &[[f32; 2]],
        spread: f32,
        seed: u64,
    ) -> (Embeddings, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(vec![
                    c[0] + rng.normal() as f32 * spread,
                    c[1] + rng.normal() as f32 * spread,
                ]);
                labels.push(ci);
            }
        }
        (Embeddings::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn well_separated_clusters_score_high() {
        let (data, labels) = blobs(30, &[[0.0, 0.0], [20.0, 0.0]], 0.5, 1);
        let s = silhouette_score(&data, &labels, 2, 1000, 0).unwrap();
        assert!(s > 0.9, "score {s}");
    }

    #[test]
    fn random_assignment_scores_low() {
        let (data, _) = blobs(30, &[[0.0, 0.0], [20.0, 0.0]], 0.5, 2);
        let mut rng = Rng::seed_from_u64(3);
        let random: Vec<usize> = (0..60).map(|_| rng.below(2)).collect();
        let s = silhouette_score(&data, &random, 2, 1000, 0).unwrap();
        assert!(s < 0.2, "score {s}");
    }

    #[test]
    fn correct_beats_wrong_k() {
        let (data, labels) = blobs(25, &[[0.0, 0.0], [10.0, 0.0], [5.0, 9.0]], 0.5, 4);
        let s3 = silhouette_score(&data, &labels, 3, 1000, 0).unwrap();
        // Merge clusters 1 and 2 into one: a worse explanation.
        let merged: Vec<usize> = labels.iter().map(|&c| if c == 2 { 1 } else { c }).collect();
        let s2 = silhouette_score(&data, &merged, 2, 1000, 0).unwrap();
        assert!(s3 > s2, "s3 {s3} <= s2 {s2}");
    }

    #[test]
    fn sampled_estimate_close_to_exact() {
        let (data, labels) = blobs(100, &[[0.0, 0.0], [8.0, 0.0]], 1.0, 5);
        let exact = silhouette_score(&data, &labels, 2, usize::MAX, 0).unwrap();
        let sampled = silhouette_score(&data, &labels, 2, 60, 7).unwrap();
        assert!(
            (exact - sampled).abs() < 0.1,
            "exact {exact} sampled {sampled}"
        );
    }

    #[test]
    fn singletons_contribute_zero() {
        let data =
            Embeddings::from_rows(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![10.1, 0.0]]).unwrap();
        // Cluster 0 is a singleton.
        let s = silhouette_score(&data, &[0, 1, 1], 2, 10, 0).unwrap();
        // Points 1,2: a tiny, b huge → s ≈ 1 each; singleton 0 → 0.
        assert!((s - 2.0 / 3.0).abs() < 0.05, "score {s}");
    }

    #[test]
    fn validates_inputs() {
        let (data, labels) = blobs(5, &[[0.0, 0.0], [5.0, 5.0]], 0.3, 6);
        assert!(silhouette_score(&data, &labels[..4], 2, 10, 0).is_err());
        assert!(silhouette_score(&data, &labels, 1, 10, 0).is_err());
        assert!(silhouette_score(&data, &labels, 2, 0, 0).is_err());
        let bad = vec![7usize; 10];
        assert!(silhouette_score(&data, &bad, 2, 10, 0).is_err());
    }

    fn centroids_of(data: &Embeddings, labels: &[usize], k: usize) -> Embeddings {
        let dim = data.dim();
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, &c) in labels.iter().enumerate() {
            counts[c] += 1;
            for (acc, &x) in sums[c].iter_mut().zip(data.row(i)) {
                *acc += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for x in &mut sums[c] {
                    *x /= counts[c] as f32;
                }
            }
        }
        Embeddings::from_rows(&sums).unwrap()
    }

    #[test]
    fn ann_estimate_tracks_exact_on_blobs() {
        let (data, labels) = blobs(80, &[[0.0, 0.0], [12.0, 0.0], [6.0, 10.0]], 0.8, 8);
        let cents = centroids_of(&data, &labels, 3);
        let cache = build_silhouette_cache(&data, 1000, 0, &AnnPolicy::default()).unwrap();
        let ann = silhouette_score_ann(&data, &labels, 3, &cents, &cache).unwrap();
        let exact = silhouette_score(&data, &labels, 3, 1000, 0).unwrap();
        assert!(
            (ann - exact).abs() < 0.15,
            "ann {ann} vs exact {exact} diverged"
        );
    }

    #[test]
    fn ann_estimate_preserves_ranking_between_clusterings() {
        // The estimator only has to rank clusterings the way the exact
        // score does — that is what the k-selection argmax consumes.
        let (data, labels) = blobs(60, &[[0.0, 0.0], [10.0, 0.0], [5.0, 9.0]], 0.6, 9);
        let merged: Vec<usize> = labels.iter().map(|&c| if c == 2 { 1 } else { c }).collect();
        let cache = build_silhouette_cache(&data, 1000, 0, &AnnPolicy::default()).unwrap();
        let good =
            silhouette_score_ann(&data, &labels, 3, &centroids_of(&data, &labels, 3), &cache)
                .unwrap();
        let bad = silhouette_score_ann(&data, &merged, 2, &centroids_of(&data, &merged, 2), &cache)
            .unwrap();
        assert!(good > bad, "good {good} <= bad {bad}");
    }

    #[test]
    fn ann_singletons_contribute_zero() {
        let data =
            Embeddings::from_rows(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![10.1, 0.0]]).unwrap();
        let labels = [0usize, 1, 1];
        let cents = centroids_of(&data, &labels, 2);
        let cache = build_silhouette_cache(&data, 10, 0, &AnnPolicy::default()).unwrap();
        let s = silhouette_score_ann(&data, &labels, 2, &cents, &cache).unwrap();
        assert!((s - 2.0 / 3.0).abs() < 0.1, "score {s}");
    }

    #[test]
    fn ann_validates_inputs() {
        let (data, labels) = blobs(5, &[[0.0, 0.0], [5.0, 5.0]], 0.3, 10);
        let cents = centroids_of(&data, &labels, 2);
        let cache = build_silhouette_cache(&data, 10, 0, &AnnPolicy::default()).unwrap();
        assert!(silhouette_score_ann(&data, &labels[..4], 2, &cents, &cache).is_err());
        assert!(silhouette_score_ann(&data, &labels, 1, &cents, &cache).is_err());
        assert!(silhouette_score_ann(&data, &labels, 3, &cents, &cache).is_err());
        assert!(build_silhouette_cache(&data, 0, 0, &AnnPolicy::default()).is_err());
    }
}
