//! Silhouette score (Rousseeuw 1987).
//!
//! The paper's fallback `k`-selection criterion: "If the Kneedle algorithm
//! fails to find a target value we select k as the one that maximizes the
//! silhouette score, a common clustering evaluation metric measuring
//! intra-cluster cohesiveness comparing to inter-cluster separation"
//! (§3.3.1).

use rayon::prelude::*;

use em_core::{EmError, Result, Rng};
use em_vector::kernel::sq_dist;
use em_vector::Embeddings;

/// Mean silhouette coefficient of a clustering, in `[-1, 1]`.
///
/// For each sampled point `i` with cluster `c`:
/// `a(i)` = mean distance to other members of `c`,
/// `b(i)` = min over other clusters of the mean distance to members,
/// `s(i) = (b − a) / max(a, b)`; singleton clusters contribute `s = 0`.
///
/// The exact score is O(n²); `sample_cap` bounds the cost by evaluating
/// `s(i)` on a seeded sample of points (distances still go to *all*
/// points, so the estimate is unbiased over the sampled set).
pub fn silhouette_score(
    data: &Embeddings,
    assignment: &[usize],
    k: usize,
    sample_cap: usize,
    seed: u64,
) -> Result<f64> {
    let n = data.len();
    if n == 0 {
        return Err(EmError::EmptyInput("silhouette data".into()));
    }
    if assignment.len() != n {
        return Err(EmError::DimensionMismatch {
            context: "silhouette assignment".into(),
            expected: n,
            actual: assignment.len(),
        });
    }
    if k < 2 {
        return Err(EmError::InvalidConfig(
            "silhouette needs at least 2 clusters".into(),
        ));
    }
    if let Some(&bad) = assignment.iter().find(|&&c| c >= k) {
        return Err(EmError::IndexOutOfBounds {
            context: "silhouette cluster id".into(),
            index: bad,
            len: k,
        });
    }
    if sample_cap == 0 {
        return Err(EmError::InvalidConfig("sample_cap must be > 0".into()));
    }

    let mut cluster_sizes = vec![0usize; k];
    for &c in assignment {
        cluster_sizes[c] += 1;
    }

    let sample: Vec<usize> = if n <= sample_cap {
        (0..n).collect()
    } else {
        Rng::seed_from_u64(seed).sample_indices(n, sample_cap)
    };

    // Each sampled point's coefficient is independent — compute them in
    // parallel and reduce serially in sample order (deterministic for
    // any thread count).
    let coefficients: Vec<f64> = sample
        .par_iter()
        .map(|&i| {
            let own = assignment[i];
            if cluster_sizes[own] <= 1 {
                // Singleton: defined as 0.
                return 0.0;
            }
            let mut sums = vec![0.0f64; k];
            let row_i = data.row(i);
            for j in 0..n {
                if j == i {
                    continue;
                }
                sums[assignment[j]] += (sq_dist(row_i, data.row(j)) as f64).sqrt();
            }
            let a = sums[own] / (cluster_sizes[own] - 1) as f64;
            let mut b = f64::INFINITY;
            for c in 0..k {
                if c == own || cluster_sizes[c] == 0 {
                    continue;
                }
                b = b.min(sums[c] / cluster_sizes[c] as f64);
            }
            if !b.is_finite() {
                // All other clusters empty: degenerate, treat as 0.
                return 0.0;
            }
            let denom = a.max(b);
            if denom > 0.0 {
                (b - a) / denom
            } else {
                0.0
            }
        })
        .collect();
    let total: f64 = coefficients.iter().sum();
    let counted = coefficients.len();
    Ok(if counted == 0 {
        0.0
    } else {
        total / counted as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(
        n_per: usize,
        centers: &[[f32; 2]],
        spread: f32,
        seed: u64,
    ) -> (Embeddings, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(vec![
                    c[0] + rng.normal() as f32 * spread,
                    c[1] + rng.normal() as f32 * spread,
                ]);
                labels.push(ci);
            }
        }
        (Embeddings::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn well_separated_clusters_score_high() {
        let (data, labels) = blobs(30, &[[0.0, 0.0], [20.0, 0.0]], 0.5, 1);
        let s = silhouette_score(&data, &labels, 2, 1000, 0).unwrap();
        assert!(s > 0.9, "score {s}");
    }

    #[test]
    fn random_assignment_scores_low() {
        let (data, _) = blobs(30, &[[0.0, 0.0], [20.0, 0.0]], 0.5, 2);
        let mut rng = Rng::seed_from_u64(3);
        let random: Vec<usize> = (0..60).map(|_| rng.below(2)).collect();
        let s = silhouette_score(&data, &random, 2, 1000, 0).unwrap();
        assert!(s < 0.2, "score {s}");
    }

    #[test]
    fn correct_beats_wrong_k() {
        let (data, labels) = blobs(25, &[[0.0, 0.0], [10.0, 0.0], [5.0, 9.0]], 0.5, 4);
        let s3 = silhouette_score(&data, &labels, 3, 1000, 0).unwrap();
        // Merge clusters 1 and 2 into one: a worse explanation.
        let merged: Vec<usize> = labels.iter().map(|&c| if c == 2 { 1 } else { c }).collect();
        let s2 = silhouette_score(&data, &merged, 2, 1000, 0).unwrap();
        assert!(s3 > s2, "s3 {s3} <= s2 {s2}");
    }

    #[test]
    fn sampled_estimate_close_to_exact() {
        let (data, labels) = blobs(100, &[[0.0, 0.0], [8.0, 0.0]], 1.0, 5);
        let exact = silhouette_score(&data, &labels, 2, usize::MAX, 0).unwrap();
        let sampled = silhouette_score(&data, &labels, 2, 60, 7).unwrap();
        assert!(
            (exact - sampled).abs() < 0.1,
            "exact {exact} sampled {sampled}"
        );
    }

    #[test]
    fn singletons_contribute_zero() {
        let data =
            Embeddings::from_rows(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![10.1, 0.0]]).unwrap();
        // Cluster 0 is a singleton.
        let s = silhouette_score(&data, &[0, 1, 1], 2, 10, 0).unwrap();
        // Points 1,2: a tiny, b huge → s ≈ 1 each; singleton 0 → 0.
        assert!((s - 2.0 / 3.0).abs() < 0.05, "score {s}");
    }

    #[test]
    fn validates_inputs() {
        let (data, labels) = blobs(5, &[[0.0, 0.0], [5.0, 5.0]], 0.3, 6);
        assert!(silhouette_score(&data, &labels[..4], 2, 10, 0).is_err());
        assert!(silhouette_score(&data, &labels, 1, 10, 0).is_err());
        assert!(silhouette_score(&data, &labels, 2, 0, 0).is_err());
        let bad = vec![7usize; 10];
        assert!(silhouette_score(&data, &bad, 2, 10, 0).is_err());
    }
}
