//! Lloyd's K-Means with k-means++ seeding.
//!
//! The unconstrained base algorithm. The battleship pipeline always runs
//! the constrained variant on top (see [`crate::constrained`]), but the
//! plain version is kept public both as the ablation baseline
//! (`ablation_clustering` bench) and for `k` selection sweeps, which the
//! paper performs on the unconstrained SSE curve.

// Numeric kernels here walk several parallel arrays by index; the
// indexed form keeps the lockstep structure visible.
#![allow(clippy::needless_range_loop)]
use rayon::prelude::*;

use em_core::{EmError, Result, Rng};
use em_vector::kernel::sq_dist;
use em_vector::Embeddings;

/// K-Means parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement.
    pub tol: f32,
    /// Seed for k-means++ initialisation.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iters: 50,
            tol: 1e-4,
            seed: 0xC1_05,
        }
    }
}

/// A clustering: centroids, per-point assignment and quality numbers.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// `k` centroid vectors.
    pub centroids: Embeddings,
    /// Cluster id per input row.
    pub assignment: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub sse: f32,
    /// Number of points per cluster.
    pub sizes: Vec<usize>,
}

impl KMeansResult {
    /// Row indices of each cluster's members.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.centroids.len()];
        for (i, &c) in self.assignment.iter().enumerate() {
            out[c].push(i);
        }
        out
    }

    /// Mean SSE per point — the "average sum of squared distance between
    /// the centroid of each cluster to its members" curve the paper feeds
    /// to Kneedle (§3.3.1).
    pub fn mean_sse(&self) -> f32 {
        if self.assignment.is_empty() {
            0.0
        } else {
            self.sse / self.assignment.len() as f32
        }
    }
}

/// k-means++ seeding: spread initial centroids proportionally to squared
/// distance from the nearest already-chosen centroid. Residual-distance
/// updates run in parallel; the RNG draws are unchanged, so seeding is
/// deterministic for a given seed and thread count alike.
fn kmeanspp_init(data: &Embeddings, k: usize, rng: &mut Rng) -> Vec<usize> {
    let n = data.len();
    let mut chosen = Vec::with_capacity(k);
    chosen.push(rng.below(n));
    let first = data.row(chosen[0]);
    let mut d2: Vec<f64> = (0..n)
        .into_par_iter()
        .map(|i| sq_dist(data.row(i), first) as f64)
        .collect();
    while chosen.len() < k {
        let next = match rng.weighted_index(&d2) {
            Some(i) => i,
            // All residual distances zero (duplicate points): pick any.
            None => rng.below(n),
        };
        chosen.push(next);
        let next_row = data.row(next);
        d2 = (0..n)
            .into_par_iter()
            .map(|i| {
                let d = sq_dist(data.row(i), next_row) as f64;
                d.min(d2[i])
            })
            .collect();
    }
    chosen
}

/// Nearest centroid of row `i`: `(cluster, squared distance)`. Ties go
/// to the lowest cluster id (strict `<` scan), matching the scalar
/// semantics.
#[inline]
fn nearest_centroid(data: &Embeddings, centroids: &[f32], k: usize, i: usize) -> (usize, f32) {
    let dim = data.dim();
    let row = data.row(i);
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for c in 0..k {
        let d = sq_dist(row, &centroids[c * dim..(c + 1) * dim]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Run Lloyd's algorithm.
///
/// Requires `1 <= k <= n`. Empty clusters are re-seeded with the point
/// farthest from its centroid, so the returned clustering always has `k`
/// non-empty clusters when the data has at least `k` distinct points.
pub fn kmeans(data: &Embeddings, config: KMeansConfig) -> Result<KMeansResult> {
    let n = data.len();
    let k = config.k;
    if n == 0 {
        return Err(EmError::EmptyInput("kmeans data".into()));
    }
    if k == 0 || k > n {
        return Err(EmError::InvalidConfig(format!(
            "kmeans k={k} must be in 1..={n}"
        )));
    }
    let dim = data.dim();
    let mut rng = Rng::seed_from_u64(config.seed);

    let seeds = kmeanspp_init(data, k, &mut rng);
    let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
    for &s in &seeds {
        centroids.extend_from_slice(data.row(s));
    }

    let mut assignment = vec![0usize; n];

    for _iter in 0..config.max_iters {
        // Assignment step — embarrassingly parallel over points; results
        // land in index order so the outcome is thread-count independent.
        let assigned: Vec<(usize, f32)> = (0..n)
            .into_par_iter()
            .map(|i| nearest_centroid(data, &centroids, k, i))
            .collect();
        for i in 0..n {
            assignment[i] = assigned[i].0;
        }

        // Update step.
        let mut new_centroids = vec![0.0f32; k * dim];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignment[i];
            counts[c] += 1;
            for (acc, &x) in new_centroids[c * dim..(c + 1) * dim]
                .iter_mut()
                .zip(data.row(i))
            {
                *acc += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the point farthest from
                // its current centroid (distances already computed by
                // the assignment pass).
                let far = (0..n)
                    .max_by(|&a, &b| {
                        assigned[a]
                            .1
                            .partial_cmp(&assigned[b].1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("n > 0");
                new_centroids[c * dim..(c + 1) * dim].copy_from_slice(data.row(far));
            } else {
                let inv = 1.0 / counts[c] as f32;
                for x in &mut new_centroids[c * dim..(c + 1) * dim] {
                    *x *= inv;
                }
            }
        }

        // Convergence check.
        let movement: f32 = (0..k)
            .map(|c| {
                sq_dist(
                    &centroids[c * dim..(c + 1) * dim],
                    &new_centroids[c * dim..(c + 1) * dim],
                )
            })
            .sum();
        centroids = new_centroids;
        if movement < config.tol {
            break;
        }
    }

    // Final assignment against the converged centroids (parallel), with
    // SSE reduced serially in index order for determinism.
    let assigned: Vec<(usize, f32)> = (0..n)
        .into_par_iter()
        .map(|i| nearest_centroid(data, &centroids, k, i))
        .collect();
    let mut sse = 0.0f32;
    let mut sizes = vec![0usize; k];
    for (i, &(best, best_d)) in assigned.iter().enumerate() {
        assignment[i] = best;
        sizes[best] += 1;
        sse += best_d;
    }

    Ok(KMeansResult {
        centroids: Embeddings::from_flat(dim, centroids)?,
        assignment,
        sse,
        sizes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn blobs(n_per: usize, centers: &[[f32; 2]], spread: f32, seed: u64) -> Embeddings {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for c in centers {
            for _ in 0..n_per {
                rows.push(vec![
                    c[0] + rng.normal() as f32 * spread,
                    c[1] + rng.normal() as f32 * spread,
                ]);
            }
        }
        Embeddings::from_rows(&rows).unwrap()
    }

    #[test]
    fn rejects_bad_k() {
        let data = blobs(5, &[[0.0, 0.0]], 0.1, 1);
        assert!(kmeans(
            &data,
            KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(kmeans(
            &data,
            KMeansConfig {
                k: 6,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs(30, &[[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]], 0.3, 2);
        let res = kmeans(
            &data,
            KMeansConfig {
                k: 3,
                seed: 7,
                ..Default::default()
            },
        )
        .unwrap();
        // Every blob maps to a single cluster.
        for blob in 0..3 {
            let ids: Vec<usize> = (blob * 30..(blob + 1) * 30)
                .map(|i| res.assignment[i])
                .collect();
            assert!(
                ids.iter().all(|&c| c == ids[0]),
                "blob {blob} split across clusters"
            );
        }
        assert_eq!(res.sizes.iter().sum::<usize>(), 90);
        assert!(res.sizes.iter().all(|&s| s == 30), "{:?}", res.sizes);
    }

    #[test]
    fn sse_decreases_with_k() {
        let data = blobs(
            25,
            &[[0.0, 0.0], [8.0, 0.0], [0.0, 8.0], [8.0, 8.0]],
            0.5,
            3,
        );
        let sse_of = |k: usize| {
            kmeans(
                &data,
                KMeansConfig {
                    k,
                    seed: 11,
                    ..Default::default()
                },
            )
            .unwrap()
            .sse
        };
        let s1 = sse_of(1);
        let s2 = sse_of(2);
        let s4 = sse_of(4);
        assert!(s1 > s2, "{s1} !> {s2}");
        assert!(s2 > s4, "{s2} !> {s4}");
    }

    #[test]
    fn k_equals_n_gives_zero_sse() {
        let data = blobs(1, &[[0.0, 0.0], [5.0, 5.0], [9.0, 1.0]], 0.0, 4);
        let res = kmeans(
            &data,
            KMeansConfig {
                k: 3,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(res.sse < 1e-9);
        assert!(res.sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn assignment_is_nearest_centroid() {
        let data = blobs(20, &[[0.0, 0.0], [6.0, 6.0]], 0.4, 5);
        let res = kmeans(
            &data,
            KMeansConfig {
                k: 2,
                seed: 9,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..data.len() {
            let assigned = res.assignment[i];
            for c in 0..2 {
                let d_assigned = sq_dist(data.row(i), res.centroids.row(assigned));
                let d_other = sq_dist(data.row(i), res.centroids.row(c));
                assert!(d_assigned <= d_other + 1e-5);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(15, &[[0.0, 0.0], [4.0, 4.0]], 0.6, 6);
        let cfg = KMeansConfig {
            k: 2,
            seed: 42,
            ..Default::default()
        };
        let a = kmeans(&data, cfg).unwrap();
        let b = kmeans(&data, cfg).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.sse, b.sse);
    }

    #[test]
    fn members_partitions_rows() {
        let data = blobs(10, &[[0.0, 0.0], [7.0, 7.0]], 0.3, 8);
        let res = kmeans(
            &data,
            KMeansConfig {
                k: 2,
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let members = res.members();
        let mut all: Vec<usize> = members.concat();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_points_handled() {
        // All points identical: k-means++ falls back to arbitrary picks,
        // and Lloyd must still terminate with a valid partition.
        let rows = vec![vec![1.0f32, 2.0]; 12];
        let data = Embeddings::from_rows(&rows).unwrap();
        let res = kmeans(
            &data,
            KMeansConfig {
                k: 3,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(res.assignment.len(), 12);
        assert!(res.sse < 1e-9);
    }
}
