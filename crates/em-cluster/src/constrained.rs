//! Constrained K-Means: Lloyd iterations with min/max cluster sizes.
//!
//! "We apply a constrained version of K-Means \[6\] to avoid small clusters
//! that cannot be represented under budget limitations, or alternatively,
//! large clusters that demand multiple similarity comparisons. We set a
//! minimal and maximal size for a cluster" (§3.3.1). The paper cites
//! Bradley, Bennett & Demiriz (2000), who solve the constrained
//! assignment step exactly as a min-cost flow. We provide both:
//!
//! * [`AssignmentMode::Greedy`] — a regret-ordered greedy assignment with
//!   a repair pass; `O(n·k log n)` per iteration, the default at
//!   benchmark scale;
//! * [`AssignmentMode::Flow`] — the exact BBD formulation via
//!   [`crate::flow::MinCostFlow`]; used in tests and available for small
//!   instances (see the `ablation_assignment` bench for the trade-off).

// Numeric kernels here walk several parallel arrays by index; the
// indexed form keeps the lockstep structure visible.
#![allow(clippy::needless_range_loop)]
use rayon::prelude::*;

use em_core::{EmError, Result, Rng};
use em_vector::kernel::{sq_dist, sq_dist_batch};
use em_vector::{AnnPolicy, Embeddings, Hnsw, HnswConfig};

use crate::flow::MinCostFlow;
use crate::kmeans::{kmeans, KMeansConfig, KMeansResult};

/// How the size-constrained assignment step is solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignmentMode {
    /// Regret-ordered greedy with min-size repair (scalable).
    #[default]
    Greedy,
    /// Exact min-cost-flow assignment (Bradley–Bennett–Demiriz).
    Flow,
}

/// Configuration for constrained K-Means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstrainedConfig {
    /// Number of clusters.
    pub k: usize,
    /// Minimum points per cluster.
    pub min_size: usize,
    /// Maximum points per cluster.
    pub max_size: usize,
    /// Lloyd iterations.
    pub max_iters: usize,
    /// Seed (initialisation reuses unconstrained k-means++).
    pub seed: u64,
    /// Assignment solver.
    pub mode: AssignmentMode,
    /// Exact ↔ ANN routing for the greedy assignment step: pools larger
    /// than `ann.threshold` shortlist candidate clusters through HNSW
    /// over the centroids instead of materialising the `n × k` distance
    /// matrix. Capacity bounds are enforced identically on both paths.
    pub ann: AnnPolicy,
}

impl ConstrainedConfig {
    /// Derive cluster-size bounds from fractions of `n`, the way the paper
    /// configures it: "the size of a cluster ranges from 0.05 to 0.15 of
    /// the number of samples against which the graph is created" (§4.2).
    pub fn from_fractions(
        n: usize,
        k: usize,
        min_frac: f64,
        max_frac: f64,
        seed: u64,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&min_frac) || !(0.0..=1.0).contains(&max_frac) {
            return Err(EmError::InvalidConfig(
                "cluster size fractions must be in [0,1]".into(),
            ));
        }
        if min_frac > max_frac {
            return Err(EmError::InvalidConfig(
                "min_frac must be <= max_frac".into(),
            ));
        }
        let min_size = (n as f64 * min_frac).floor() as usize;
        let max_size = ((n as f64 * max_frac).ceil() as usize).max(1);
        Ok(ConstrainedConfig {
            k,
            min_size,
            max_size,
            max_iters: 30,
            seed,
            mode: AssignmentMode::Greedy,
            ann: AnnPolicy::default(),
        })
    }

    fn validate(&self, n: usize) -> Result<()> {
        if self.k == 0 || self.k > n {
            return Err(EmError::InvalidConfig(format!(
                "constrained kmeans k={} must be in 1..={n}",
                self.k
            )));
        }
        if self.min_size > self.max_size {
            return Err(EmError::InvalidConfig(format!(
                "min_size {} > max_size {}",
                self.min_size, self.max_size
            )));
        }
        if self.k * self.min_size > n {
            return Err(EmError::InvalidConfig(format!(
                "infeasible: k({}) * min_size({}) > n({n})",
                self.k, self.min_size
            )));
        }
        if self.k * self.max_size < n {
            return Err(EmError::InvalidConfig(format!(
                "infeasible: k({}) * max_size({}) < n({n})",
                self.k, self.max_size
            )));
        }
        self.ann.validate()
    }
}

/// Run size-constrained K-Means.
///
/// The returned clustering satisfies
/// `min_size <= |cluster| <= max_size` for every cluster.
pub fn constrained_kmeans(data: &Embeddings, config: ConstrainedConfig) -> Result<KMeansResult> {
    let n = data.len();
    if n == 0 {
        return Err(EmError::EmptyInput("constrained kmeans data".into()));
    }
    config.validate(n)?;
    let dim = data.dim();
    let k = config.k;

    // Initialise centroids from a short unconstrained run.
    let init = kmeans(
        data,
        KMeansConfig {
            k,
            max_iters: 5,
            tol: 1e-4,
            seed: config.seed,
        },
    )?;
    let mut centroids: Vec<f32> = init.centroids.flat().to_vec();
    let mut assignment = vec![usize::MAX; n];
    let mut rng = Rng::seed_from_u64(config.seed ^ 0xBADC_0FFE);

    for _iter in 0..config.max_iters {
        let new_assignment = match config.mode {
            AssignmentMode::Greedy if config.ann.use_ann(n) => {
                greedy_assign_ann(data, &centroids, k, config, &mut rng)?
            }
            AssignmentMode::Greedy => greedy_assign(data, &centroids, k, config, &mut rng)?,
            AssignmentMode::Flow => flow_assign(data, &centroids, k, config)?,
        };

        let converged = new_assignment == assignment;
        assignment = new_assignment;

        // Centroid update.
        let mut sums = vec![0.0f32; k * dim];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignment[i];
            counts[c] += 1;
            for (acc, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(data.row(i)) {
                *acc += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f32;
                for x in &mut sums[c * dim..(c + 1) * dim] {
                    *x *= inv;
                }
            } else {
                sums[c * dim..(c + 1) * dim].copy_from_slice(&centroids[c * dim..(c + 1) * dim]);
            }
        }
        centroids = sums;
        if converged {
            break;
        }
    }

    let mut sse = 0.0f32;
    let mut sizes = vec![0usize; k];
    let final_d: Vec<f32> = (0..n)
        .into_par_iter()
        .map(|i| {
            let c = assignment[i];
            sq_dist(data.row(i), &centroids[c * dim..(c + 1) * dim])
        })
        .collect();
    for i in 0..n {
        sizes[assignment[i]] += 1;
        sse += final_d[i];
    }

    Ok(KMeansResult {
        centroids: Embeddings::from_flat(dim, centroids)?,
        assignment,
        sse,
        sizes,
    })
}

/// One capacity-bounded greedy assignment pass over fixed centroids,
/// routed per `config.ann` exactly as the Lloyd loop routes it.
///
/// This is the stage the ANN layer accelerates, exposed on its own so
/// benches can time it in isolation: the full [`constrained_kmeans`]
/// wraps it in an unconstrained warm-start that costs the same on both
/// routes and would dilute the measured stage speedup. The RNG is
/// seeded the same way the Lloyd loop seeds its first iteration, so a
/// single pass here reproduces iteration 0 of the full run bit for bit.
pub fn greedy_assign_pass(
    data: &Embeddings,
    centroids: &Embeddings,
    config: &ConstrainedConfig,
) -> Result<Vec<usize>> {
    let n = data.len();
    if n == 0 {
        return Err(EmError::EmptyInput("constrained assignment data".into()));
    }
    config.validate(n)?;
    if centroids.dim() != data.dim() || centroids.len() != config.k {
        return Err(EmError::InvalidConfig(format!(
            "centroids shape {}x{} does not match k={} points of dim {}",
            centroids.len(),
            centroids.dim(),
            config.k,
            data.dim()
        )));
    }
    let mut rng = Rng::seed_from_u64(config.seed ^ 0xBADC_0FFE);
    if config.ann.use_ann(n) {
        greedy_assign_ann(data, centroids.flat(), config.k, *config, &mut rng)
    } else {
        greedy_assign(data, centroids.flat(), config.k, *config, &mut rng)
    }
}

/// Greedy capacity-respecting assignment with min-size repair.
///
/// The full point × centroid distance matrix is computed once by the
/// blocked kernel (parallel over points); the regret, assignment and
/// repair passes below are all lookups into it. The seed implementation
/// recomputed every distance in each pass — 2–3× the kernel work per
/// Lloyd iteration.
fn greedy_assign(
    data: &Embeddings,
    centroids: &[f32],
    k: usize,
    config: ConstrainedConfig,
    rng: &mut Rng,
) -> Result<Vec<usize>> {
    let n = data.len();
    let dmat = sq_dist_batch(data.flat(), n, centroids, k, data.dim());
    let dist = |i: usize, c: usize| -> f32 { dmat[i * k + c] };

    // Regret ordering: points whose best choice matters most go first.
    let mut order: Vec<usize> = (0..n).collect();
    let regret: Vec<f32> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut best = f32::INFINITY;
            let mut second = f32::INFINITY;
            for c in 0..k {
                let d = dist(i, c);
                if d < best {
                    second = best;
                    best = d;
                } else if d < second {
                    second = d;
                }
            }
            if second.is_finite() {
                second - best
            } else {
                0.0
            }
        })
        .collect();
    // Shuffle first so equal-regret ties don't follow input order.
    rng.shuffle(&mut order);
    order.sort_by(|&a, &b| {
        regret[b]
            .partial_cmp(&regret[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut assignment = vec![usize::MAX; n];
    let mut sizes = vec![0usize; k];
    for &i in &order {
        let mut best_c = usize::MAX;
        let mut best_d = f32::INFINITY;
        for c in 0..k {
            if sizes[c] >= config.max_size {
                continue;
            }
            let d = dist(i, c);
            if d < best_d {
                best_d = d;
                best_c = c;
            }
        }
        if best_c == usize::MAX {
            // config.validate guarantees k*max_size >= n, so a slot exists.
            return Err(EmError::NoSolution(
                "greedy assignment ran out of capacity".into(),
            ));
        }
        assignment[i] = best_c;
        sizes[best_c] += 1;
    }

    // Repair pass: lift clusters below min_size by stealing the
    // cheapest-to-move points from clusters that can spare them.
    while let Some(under) = (0..k).find(|&c| sizes[c] < config.min_size) {
        let mut best: Option<(usize, f32)> = None; // (point, added cost)
        for i in 0..n {
            let cur = assignment[i];
            if cur == under || sizes[cur] <= config.min_size {
                continue;
            }
            let added = dist(i, under) - dist(i, cur);
            if best.map(|(_, a)| added < a).unwrap_or(true) {
                best = Some((i, added));
            }
        }
        let Some((steal, _)) = best else {
            return Err(EmError::NoSolution(
                "min-size repair found no donor cluster".into(),
            ));
        };
        sizes[assignment[steal]] -= 1;
        assignment[steal] = under;
        sizes[under] += 1;
    }

    Ok(assignment)
}

/// ANN-assisted greedy assignment: same regret-ordered greedy +
/// min-size repair as [`greedy_assign`], but no `n × k` distance matrix
/// is ever materialised.
///
/// Each point queries an HNSW index built over the centroids for its
/// `top_m` candidate clusters (cosine shortlist, then exact
/// squared-distance re-rank — HNSW is cosine-specialised while K-Means
/// wants L2, so the index only nominates candidates). The assignment
/// pass walks the shortlist; if every shortlisted cluster is at
/// capacity it falls back to an on-demand scan of all `k` (validate
/// guarantees a slot exists). The repair pass computes the two
/// distances it needs per candidate move in `O(d)`, caching each
/// point's assigned distance.
///
/// When `k <= top_m` the shortlist covers every cluster in index order
/// with exact distances and the same single RNG draw, so the result is
/// bit-identical to [`greedy_assign`] (golden-tested below).
fn greedy_assign_ann(
    data: &Embeddings,
    centroids: &[f32],
    k: usize,
    config: ConstrainedConfig,
    rng: &mut Rng,
) -> Result<Vec<usize>> {
    let n = data.len();
    let dim = data.dim();
    let top_m = config.ann.top_m;
    let cdist =
        |i: usize, c: usize| -> f32 { sq_dist(data.row(i), &centroids[c * dim..(c + 1) * dim]) };

    // Per-point candidate shortlist, sorted by exact squared distance
    // ascending (stable sort from index order, so ties keep the exact
    // path's lowest-index-wins semantics).
    // The cosine index only nominates: fetch 2× the shortlist width,
    // re-rank by exact L2 and keep `top_m` — the oversample absorbs the
    // cosine ↔ L2 ranking gap for unnormalised centroids.
    let fetch = top_m.saturating_mul(2).min(k);
    let index = if k > top_m {
        let cent = Embeddings::from_flat(dim, centroids.to_vec())?;
        // The index holds only the k centroids — a small graph where
        // the policy's record-scale beam (m 16, ef 64) would visit
        // nearly every node and lose to a flat scan. Halve the degree
        // and clamp the beam to the fetch size: nomination recall is
        // protected by the 2× oversample, the exact re-rank and the
        // repair pass, so a narrow beam costs SSE nothing measurable
        // (gated ≤ 1.25× in the ann bench; measured ≈ 1.0005×).
        let base = config.ann.hnsw_seeded(config.seed ^ 0xCE_A551);
        let m = base.m.div_ceil(2).max(2);
        let hnsw_cfg = HnswConfig {
            m,
            ef_construction: base.ef_construction.max(m),
            ef_search: fetch.max(8),
            ..base
        };
        Some(Hnsw::build(&cent, hnsw_cfg)?)
    } else {
        None
    };
    // Chunked so each worker reuses one HNSW scratch and one set of
    // candidate buffers across its whole chunk (same precedent as the
    // blocking tier's probe loop) — per-point allocations would
    // otherwise rival the distance work the shortlist saves.
    const SHORTLIST_CHUNK: usize = 1024;
    // Candidate clusters and their exact distances, sorted ascending.
    type Shortlist = (Vec<u32>, Vec<f32>);
    let n_chunks = n.div_ceil(SHORTLIST_CHUNK);
    let per_chunk: Vec<Result<Vec<Shortlist>>> = (0..n_chunks)
        .into_par_iter()
        .map(|chunk| -> Result<Vec<Shortlist>> {
            let lo = chunk * SHORTLIST_CHUNK;
            let hi = (lo + SHORTLIST_CHUNK).min(n);
            let mut out = Vec::with_capacity(hi - lo);
            let mut scratch = em_vector::HnswScratch::default();
            let mut cands: Vec<u32> = Vec::new();
            let mut dists: Vec<f32> = Vec::new();
            let mut order: Vec<usize> = Vec::new();
            for i in lo..hi {
                cands.clear();
                match &index {
                    Some(index) => cands.extend(
                        index
                            .search_with(data.row(i), fetch, None, &mut scratch)?
                            .iter()
                            .map(|nb| nb.index as u32),
                    ),
                    None => cands.extend(0..k as u32),
                }
                if cands.is_empty() {
                    cands.extend(0..k as u32);
                }
                dists.clear();
                dists.extend(cands.iter().map(|&c| cdist(i, c as usize)));
                // Stable insertion order is index order for the dense
                // case; sort both arrays together by distance.
                order.clear();
                order.extend(0..cands.len());
                order.sort_by(|&a, &b| {
                    dists[a]
                        .partial_cmp(&dists[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(cands[a].cmp(&cands[b]))
                });
                order.truncate(top_m.max(1));
                let cands_sorted: Vec<u32> = order.iter().map(|&j| cands[j]).collect();
                let dists_sorted: Vec<f32> = order.iter().map(|&j| dists[j]).collect();
                out.push((cands_sorted, dists_sorted));
            }
            Ok(out)
        })
        .collect();
    let mut shortlists: Vec<Shortlist> = Vec::with_capacity(n);
    for chunk in per_chunk {
        shortlists.extend(chunk?);
    }

    // Regret over the shortlist (exact regret when the shortlist is the
    // full cluster set).
    let mut order: Vec<usize> = (0..n).collect();
    let regret: Vec<f32> = shortlists
        .par_iter()
        .map(|(_, d)| if d.len() >= 2 { d[1] - d[0] } else { 0.0 })
        .collect();
    rng.shuffle(&mut order);
    order.sort_by(|&a, &b| {
        regret[b]
            .partial_cmp(&regret[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut assignment = vec![usize::MAX; n];
    let mut assigned_d = vec![f32::INFINITY; n];
    let mut sizes = vec![0usize; k];
    for &i in &order {
        let (cands, dists) = &shortlists[i];
        let mut best_c = usize::MAX;
        let mut best_d = f32::INFINITY;
        for (j, &c) in cands.iter().enumerate() {
            if sizes[c as usize] < config.max_size {
                best_c = c as usize;
                best_d = dists[j];
                break;
            }
        }
        if best_c == usize::MAX {
            // Shortlist exhausted: on-demand scan of every cluster.
            for c in 0..k {
                if sizes[c] >= config.max_size {
                    continue;
                }
                let d = cdist(i, c);
                if d < best_d {
                    best_d = d;
                    best_c = c;
                }
            }
        }
        if best_c == usize::MAX {
            // config.validate guarantees k*max_size >= n, so a slot exists.
            return Err(EmError::NoSolution(
                "greedy assignment ran out of capacity".into(),
            ));
        }
        assignment[i] = best_c;
        assigned_d[i] = best_d;
        sizes[best_c] += 1;
    }

    // Min-size repair, identical move rule to the exact path; distances
    // to the under-filled cluster are computed on demand.
    while let Some(under) = (0..k).find(|&c| sizes[c] < config.min_size) {
        let mut best: Option<(usize, f32, f32)> = None; // (point, added, d_under)
        for i in 0..n {
            let cur = assignment[i];
            if cur == under || sizes[cur] <= config.min_size {
                continue;
            }
            let d_under = cdist(i, under);
            let added = d_under - assigned_d[i];
            if best.map(|(_, a, _)| added < a).unwrap_or(true) {
                best = Some((i, added, d_under));
            }
        }
        let Some((steal, _, d_under)) = best else {
            return Err(EmError::NoSolution(
                "min-size repair found no donor cluster".into(),
            ));
        };
        sizes[assignment[steal]] -= 1;
        assignment[steal] = under;
        assigned_d[steal] = d_under;
        sizes[under] += 1;
    }

    Ok(assignment)
}

/// Exact assignment by min-cost flow (Bradley–Bennett–Demiriz).
///
/// Network: `source → point_i` (cap 1), `point_i → cluster_c`
/// (cap 1, cost = scaled distance), `cluster_c → sink` twice — the first
/// `min_size` units at a large negative cost (forcing the optimum to fill
/// every cluster's minimum), the remainder at cost 0.
fn flow_assign(
    data: &Embeddings,
    centroids: &[f32],
    k: usize,
    config: ConstrainedConfig,
) -> Result<Vec<usize>> {
    let n = data.len();
    let dim = data.dim();
    const SCALE: f64 = 1_000_000.0;

    let source = 0usize;
    let sink = 1usize;
    let point_node = |i: usize| 2 + i;
    let cluster_node = |c: usize| 2 + n + c;
    let mut net = MinCostFlow::new(2 + n + k);

    // The forcing bonus must dominate any sum of distance costs.
    let mut max_cost = 0i64;
    let mut edge_ids = vec![(0usize, 0usize); n * k];
    for i in 0..n {
        net.add_edge(source, point_node(i), 1, 0)?;
        for c in 0..k {
            let d = sq_dist(data.row(i), &centroids[c * dim..(c + 1) * dim]) as f64;
            let cost = (d * SCALE) as i64;
            max_cost = max_cost.max(cost);
            edge_ids[i * k + c] = net.add_edge(point_node(i), cluster_node(c), 1, cost)?;
        }
    }
    let bonus = max_cost.saturating_mul(n as i64).saturating_add(1).max(1);
    for c in 0..k {
        if config.min_size > 0 {
            net.add_edge(cluster_node(c), sink, config.min_size as i64, -bonus)?;
        }
        let slack = config.max_size.saturating_sub(config.min_size);
        if slack > 0 {
            net.add_edge(cluster_node(c), sink, slack as i64, 0)?;
        }
    }

    let result = net.run(source, sink, n as i64)?;
    if result.flow != n as i64 {
        return Err(EmError::NoSolution(format!(
            "flow assignment routed {} of {n} points",
            result.flow
        )));
    }

    let mut assignment = vec![usize::MAX; n];
    for i in 0..n {
        for c in 0..k {
            if net.edge_flow(edge_ids[i * k + c]) > 0 {
                assignment[i] = c;
                break;
            }
        }
        if assignment[i] == usize::MAX {
            return Err(EmError::NoSolution(format!(
                "flow assignment left point {i} unrouted"
            )));
        }
    }
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, centers: &[[f32; 2]], spread: f32, seed: u64) -> Embeddings {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for c in centers {
            for _ in 0..n_per {
                rows.push(vec![
                    c[0] + rng.normal() as f32 * spread,
                    c[1] + rng.normal() as f32 * spread,
                ]);
            }
        }
        Embeddings::from_rows(&rows).unwrap()
    }

    fn check_bounds(res: &KMeansResult, min: usize, max: usize) {
        for (c, &s) in res.sizes.iter().enumerate() {
            assert!(
                (min..=max).contains(&s),
                "cluster {c} size {s} outside [{min},{max}]; all sizes {:?}",
                res.sizes
            );
        }
    }

    #[test]
    fn validates_feasibility() {
        let data = blobs(10, &[[0.0, 0.0]], 0.1, 1);
        // k*min > n
        let bad = ConstrainedConfig {
            k: 3,
            min_size: 5,
            max_size: 10,
            max_iters: 5,
            seed: 0,
            mode: AssignmentMode::Greedy,
            ann: AnnPolicy::default(),
        };
        assert!(constrained_kmeans(&data, bad).is_err());
        // k*max < n
        let bad = ConstrainedConfig {
            k: 2,
            min_size: 0,
            max_size: 4,
            max_iters: 5,
            seed: 0,
            mode: AssignmentMode::Greedy,
            ann: AnnPolicy::default(),
        };
        assert!(constrained_kmeans(&data, bad).is_err());
        // min > max
        let bad = ConstrainedConfig {
            k: 2,
            min_size: 6,
            max_size: 5,
            max_iters: 5,
            seed: 0,
            mode: AssignmentMode::Greedy,
            ann: AnnPolicy::default(),
        };
        assert!(constrained_kmeans(&data, bad).is_err());
    }

    #[test]
    fn greedy_respects_bounds_on_skewed_data() {
        // One huge blob and one tiny blob; unconstrained k-means with k=3
        // would produce very uneven sizes.
        let mut rows = blobs(80, &[[0.0, 0.0]], 0.5, 2).flat().to_vec();
        rows.extend_from_slice(blobs(10, &[[9.0, 9.0]], 0.2, 3).flat());
        let data = Embeddings::from_flat(2, rows).unwrap();
        let cfg = ConstrainedConfig {
            k: 3,
            min_size: 20,
            max_size: 40,
            max_iters: 20,
            seed: 5,
            mode: AssignmentMode::Greedy,
            ann: AnnPolicy::default(),
        };
        let res = constrained_kmeans(&data, cfg).unwrap();
        check_bounds(&res, 20, 40);
        assert_eq!(res.sizes.iter().sum::<usize>(), 90);
    }

    #[test]
    fn flow_respects_bounds_and_beats_or_ties_greedy() {
        let data = blobs(15, &[[0.0, 0.0], [4.0, 0.0], [2.0, 3.0]], 0.8, 7);
        let base = ConstrainedConfig {
            k: 3,
            min_size: 10,
            max_size: 20,
            max_iters: 15,
            seed: 9,
            mode: AssignmentMode::Greedy,
            ann: AnnPolicy::default(),
        };
        let greedy = constrained_kmeans(&data, base).unwrap();
        let flow = constrained_kmeans(
            &data,
            ConstrainedConfig {
                mode: AssignmentMode::Flow,
                ann: AnnPolicy::default(),
                ..base
            },
        )
        .unwrap();
        check_bounds(&greedy, 10, 20);
        check_bounds(&flow, 10, 20);
        // The exact assignment can only improve the final objective given
        // identical centroid trajectories — allow small slack because the
        // trajectories may diverge.
        assert!(
            flow.sse <= greedy.sse * 1.10,
            "flow {} vs greedy {}",
            flow.sse,
            greedy.sse
        );
    }

    #[test]
    fn exact_sizes_when_bounds_are_tight() {
        let data = blobs(12, &[[0.0, 0.0], [5.0, 5.0]], 1.0, 11);
        for mode in [AssignmentMode::Greedy, AssignmentMode::Flow] {
            let cfg = ConstrainedConfig {
                k: 4,
                min_size: 6,
                max_size: 6,
                max_iters: 10,
                seed: 1,
                mode,
                ann: AnnPolicy::default(),
            };
            let res = constrained_kmeans(&data, cfg).unwrap();
            assert!(
                res.sizes.iter().all(|&s| s == 6),
                "{mode:?}: {:?}",
                res.sizes
            );
        }
    }

    #[test]
    fn separated_blobs_stay_intact_when_feasible() {
        let data = blobs(20, &[[0.0, 0.0], [10.0, 10.0]], 0.3, 13);
        let cfg = ConstrainedConfig {
            k: 2,
            min_size: 10,
            max_size: 30,
            max_iters: 20,
            seed: 3,
            mode: AssignmentMode::Greedy,
            ann: AnnPolicy::default(),
        };
        let res = constrained_kmeans(&data, cfg).unwrap();
        // Each blob should map to exactly one cluster.
        let first = res.assignment[0];
        assert!(res.assignment[..20].iter().all(|&c| c == first));
        let second = res.assignment[20];
        assert_ne!(first, second);
        assert!(res.assignment[20..].iter().all(|&c| c == second));
    }

    #[test]
    fn from_fractions_maps_paper_config() {
        let cfg = ConstrainedConfig::from_fractions(1000, 10, 0.05, 0.15, 0).unwrap();
        assert_eq!(cfg.min_size, 50);
        assert_eq!(cfg.max_size, 150);
        assert!(ConstrainedConfig::from_fractions(10, 2, 0.5, 0.2, 0).is_err());
        assert!(ConstrainedConfig::from_fractions(10, 2, -0.1, 0.5, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(20, &[[0.0, 0.0], [6.0, 0.0]], 1.0, 17);
        let cfg = ConstrainedConfig {
            k: 2,
            min_size: 15,
            max_size: 25,
            max_iters: 10,
            seed: 21,
            mode: AssignmentMode::Greedy,
            ann: AnnPolicy::default(),
        };
        let a = constrained_kmeans(&data, cfg).unwrap();
        let b = constrained_kmeans(&data, cfg).unwrap();
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn min_size_zero_reduces_to_capped_kmeans() {
        let data = blobs(10, &[[0.0, 0.0], [8.0, 8.0]], 0.4, 19);
        let cfg = ConstrainedConfig {
            k: 2,
            min_size: 0,
            max_size: 20,
            max_iters: 10,
            seed: 23,
            mode: AssignmentMode::Greedy,
            ann: AnnPolicy::default(),
        };
        let res = constrained_kmeans(&data, cfg).unwrap();
        assert_eq!(res.sizes.iter().sum::<usize>(), 20);
    }

    /// Golden: when the shortlist covers every cluster (`k <= top_m`),
    /// the ANN-routed path is bit-identical to the exact dense path —
    /// same assignment, same SSE bits, same RNG stream consumption
    /// across Lloyd iterations.
    #[test]
    fn ann_path_bit_identical_when_shortlist_covers_all_clusters() {
        let data = blobs(30, &[[0.0, 0.0], [6.0, 0.0], [3.0, 5.0]], 0.8, 31);
        let base = ConstrainedConfig {
            k: 3,
            min_size: 20,
            max_size: 40,
            max_iters: 12,
            seed: 33,
            mode: AssignmentMode::Greedy,
            ann: AnnPolicy::never(),
        };
        let exact = constrained_kmeans(&data, base).unwrap();
        let ann = constrained_kmeans(
            &data,
            ConstrainedConfig {
                ann: AnnPolicy::always(), // top_m 16 >= k 3: full shortlist
                ..base
            },
        )
        .unwrap();
        assert_eq!(exact.assignment, ann.assignment);
        assert_eq!(exact.sse.to_bits(), ann.sse.to_bits());
        assert_eq!(exact.sizes, ann.sizes);
    }

    /// Golden: below the policy threshold the `ann` field is inert —
    /// the default policy routes exactly like an explicit never().
    #[test]
    fn below_threshold_routes_through_exact_path() {
        let data = blobs(40, &[[0.0, 0.0], [7.0, 7.0]], 0.6, 37);
        let base = ConstrainedConfig {
            k: 2,
            min_size: 30,
            max_size: 50,
            max_iters: 10,
            seed: 39,
            mode: AssignmentMode::Greedy,
            ann: AnnPolicy::default(),
        };
        let a = constrained_kmeans(&data, base).unwrap();
        let b = constrained_kmeans(
            &data,
            ConstrainedConfig {
                ann: AnnPolicy::never(),
                ..base
            },
        )
        .unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.sse.to_bits(), b.sse.to_bits());
    }

    /// A true shortlist (`top_m < k`) must still satisfy the size
    /// bounds exactly, including when repair has to move points.
    #[test]
    fn ann_shortlist_respects_bounds_with_many_clusters() {
        let centers: Vec<[f32; 2]> = (0..20)
            .map(|c| [(c % 5) as f32 * 4.0, (c / 5) as f32 * 4.0])
            .collect();
        let data = blobs(12, &centers, 0.9, 41);
        let mut ann = AnnPolicy::always();
        ann.top_m = 4;
        let cfg = ConstrainedConfig {
            k: 20,
            min_size: 6,
            max_size: 18,
            max_iters: 8,
            seed: 43,
            mode: AssignmentMode::Greedy,
            ann,
        };
        let res = constrained_kmeans(&data, cfg).unwrap();
        check_bounds(&res, 6, 18);
        assert_eq!(res.sizes.iter().sum::<usize>(), 240);
    }

    /// Shortlisted assignment quality stays close to exact: SSE within
    /// a modest factor on blob data. Centers point in random directions
    /// (like real embeddings) — axis-aligned 2-D grids are a known
    /// worst case for the cosine nomination stage.
    #[test]
    fn ann_shortlist_sse_close_to_exact() {
        let mut rng = Rng::seed_from_u64(45);
        let dim = 8;
        let centers: Vec<Vec<f32>> = (0..20)
            .map(|_| (0..dim).map(|_| rng.normal() as f32 * 5.0).collect())
            .collect();
        let mut rows = Vec::new();
        for c in &centers {
            for _ in 0..12 {
                rows.push(
                    c.iter()
                        .map(|&x| x + rng.normal() as f32 * 0.5)
                        .collect::<Vec<f32>>(),
                );
            }
        }
        let data = Embeddings::from_rows(&rows).unwrap();
        let base = ConstrainedConfig {
            k: 20,
            min_size: 4,
            max_size: 30,
            max_iters: 8,
            seed: 49,
            mode: AssignmentMode::Greedy,
            ann: AnnPolicy::never(),
        };
        let exact = constrained_kmeans(&data, base).unwrap();
        let mut ann = AnnPolicy::always();
        ann.top_m = 4;
        let approx = constrained_kmeans(&data, ConstrainedConfig { ann, ..base }).unwrap();
        assert!(
            approx.sse <= exact.sse * 1.25,
            "ann sse {} vs exact {}",
            approx.sse,
            exact.sse
        );
    }
}
