//! Word pools for synthetic entity generation.
//!
//! Fixed vocabularies keep generated text realistic-looking and ensure
//! token collisions between sibling entities (hard negatives share brand
//! and category words). Pseudo-word generators extend the pools
//! deterministically where breadth matters (model numbers, surnames).

use em_core::Rng;

/// Product brand names.
pub const BRANDS: &[&str] = &[
    "acera", "belkor", "cantrix", "delvon", "epsilon", "fintech", "gorvus", "halcyon", "ironpeak",
    "jaxxon", "kelvon", "lumetra", "maxtor", "nexora", "optivue", "pinetree", "quarzon", "ravix",
    "solaria", "tektron", "ultron", "vantura", "wexley", "xandria", "yorvik", "zenalux", "arbiton",
    "brontec", "corvida", "duramax", "elvetia", "fornax", "graviton", "helixor", "imbrex",
    "junovia", "kryptos", "lorvane", "mistral", "novatek", "orbitus", "pyrexia", "quantic",
    "rostek", "sylvane", "tornix", "umbrola", "vexilar", "wintron", "zephyra",
];

/// Product line / family names.
pub const LINES: &[&str] = &[
    "alpha", "bravo", "cosmos", "delta", "echo", "fusion", "galaxy", "horizon", "impulse", "jet",
    "kinetic", "legacy", "matrix", "nimbus", "omega", "pulse", "quantum", "rapid", "stellar",
    "titan", "ultra", "vertex", "wave", "xtreme", "yield", "zoom", "apex", "blaze", "core",
    "drift", "edge", "flux", "glide", "halo", "ion", "jolt", "karma", "lumen", "meteor", "nova",
];

/// Category / product-type nouns.
pub const CATEGORIES: &[&str] = &[
    "camera",
    "lens",
    "tripod",
    "flash",
    "printer",
    "scanner",
    "monitor",
    "keyboard",
    "mouse",
    "headset",
    "speaker",
    "router",
    "modem",
    "laptop",
    "tablet",
    "charger",
    "adapter",
    "cable",
    "battery",
    "case",
    "sneaker",
    "boot",
    "sandal",
    "loafer",
    "trainer",
    "cleat",
    "slipper",
    "moccasin",
    "software",
    "game",
    "console",
    "drive",
    "memory",
    "processor",
    "toolkit",
    "blender",
    "toaster",
    "kettle",
    "vacuum",
    "heater",
];

/// Descriptive adjectives for product titles.
pub const ADJECTIVES: &[&str] = &[
    "professional",
    "compact",
    "wireless",
    "digital",
    "portable",
    "premium",
    "classic",
    "deluxe",
    "advanced",
    "essential",
    "ergonomic",
    "lightweight",
    "rugged",
    "slim",
    "smart",
    "turbo",
    "silent",
    "vivid",
    "crystal",
    "solar",
    "hybrid",
    "carbon",
    "chrome",
    "midnight",
    "arctic",
    "crimson",
    "emerald",
    "golden",
    "ivory",
    "jade",
    "onyx",
    "pearl",
    "ruby",
    "sapphire",
    "scarlet",
    "silver",
    "teal",
    "violet",
    "amber",
    "cobalt",
];

/// Units and spec tokens appearing in product titles.
pub const SPEC_UNITS: &[&str] = &[
    "gb", "tb", "mp", "mm", "inch", "ghz", "mhz", "watt", "mah", "dpi", "rpm", "hz", "kg", "oz",
    "ml", "cm", "pack", "set", "kit", "bundle",
];

/// First names for bibliographic authors.
pub const FIRST_NAMES: &[&str] = &[
    "alice", "boris", "carla", "dmitri", "elena", "felix", "greta", "hamid", "ingrid", "jorge",
    "keiko", "liam", "marta", "nadia", "omar", "priya", "quentin", "rosa", "stefan", "tamar",
    "ursula", "viktor", "wanda", "xiang", "yusuf", "zoe", "amara", "bruno", "celine", "diego",
];

/// Surnames for bibliographic authors.
pub const SURNAMES: &[&str] = &[
    "anderson", "baranov", "chen", "dubois", "eriksen", "fischer", "garcia", "haddad", "ivanova",
    "jansen", "kowalski", "larsen", "moretti", "nakamura", "okafor", "petrov", "quintero", "rossi",
    "schmidt", "tanaka", "ulrich", "vasquez", "weber", "xu", "yamada", "zhang", "almeida",
    "bergman", "castillo", "dimitrov",
];

/// Research-paper topic words.
pub const TOPIC_WORDS: &[&str] = &[
    "scalable",
    "distributed",
    "adaptive",
    "efficient",
    "robust",
    "incremental",
    "probabilistic",
    "declarative",
    "streaming",
    "parallel",
    "query",
    "index",
    "join",
    "transaction",
    "schema",
    "entity",
    "matching",
    "integration",
    "cleaning",
    "provenance",
    "optimization",
    "learning",
    "clustering",
    "sampling",
    "ranking",
    "caching",
    "partitioning",
    "replication",
    "consensus",
    "recovery",
    "workload",
    "benchmark",
    "graph",
    "vector",
    "semantic",
    "relational",
    "temporal",
    "spatial",
    "approximate",
    "federated",
];

/// Publication venue names.
pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "icde", "edbt", "cidr", "kdd", "icdm", "wsdm", "www", "cikm", "pods",
    "sigir", "acl", "emnlp", "neurips", "icml", "aaai", "ijcai", "tods", "tkde",
];

/// Free-text fragments for long product descriptions (ABT-Buy style).
pub const DESCRIPTION_PHRASES: &[&str] = &[
    "designed for everyday use",
    "backed by a two year warranty",
    "engineered with precision components",
    "ideal for home and office",
    "features an intuitive interface",
    "built from recycled materials",
    "delivers outstanding performance",
    "includes all mounting hardware",
    "compatible with most standard systems",
    "tested for durability and reliability",
    "energy efficient operation",
    "easy to install and maintain",
    "award winning industrial design",
    "trusted by professionals worldwide",
    "offers seamless connectivity",
    "supports rapid charging",
    "crafted with attention to detail",
    "provides crystal clear output",
    "low noise high efficiency",
    "with advanced safety features",
];

/// A deterministic pseudo model number like `dx431` or `kv72s`.
pub fn model_number(rng: &mut Rng) -> String {
    const LETTERS: &[u8] = b"abcdefghjkmnprstvwxz";
    let mut s = String::with_capacity(6);
    for _ in 0..2 {
        s.push(LETTERS[rng.below(LETTERS.len())] as char);
    }
    let digits = 2 + rng.below(3);
    for _ in 0..digits {
        s.push(char::from(b'0' + rng.below(10) as u8));
    }
    if rng.bool(0.3) {
        s.push(LETTERS[rng.below(LETTERS.len())] as char);
    }
    s
}

/// A pseudo spec token like `24mp` or `512gb`.
pub fn spec_token(rng: &mut Rng) -> String {
    let value = [
        2u32, 4, 8, 12, 16, 24, 32, 50, 64, 75, 100, 128, 200, 256, 512, 1000,
    ][rng.below(16)];
    format!("{value}{}", SPEC_UNITS[rng.below(SPEC_UNITS.len())])
}

/// A publication year in 1985..=2022.
pub fn pub_year(rng: &mut Rng) -> u32 {
    1985 + rng.below(38) as u32
}

/// A price with two decimals in `[5, 2500)`.
pub fn price(rng: &mut Rng) -> f64 {
    let raw = 5.0 + rng.f64() * 2495.0;
    (raw * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_lowercase() {
        for pool in [
            BRANDS,
            LINES,
            CATEGORIES,
            ADJECTIVES,
            SPEC_UNITS,
            FIRST_NAMES,
            SURNAMES,
            TOPIC_WORDS,
            VENUES,
            DESCRIPTION_PHRASES,
        ] {
            assert!(pool.len() >= 20);
            for w in pool {
                assert_eq!(*w, w.to_lowercase(), "pool word `{w}` not lowercase");
                assert!(!w.is_empty());
            }
        }
    }

    #[test]
    fn pools_have_no_duplicates() {
        for pool in [
            BRANDS,
            LINES,
            CATEGORIES,
            ADJECTIVES,
            FIRST_NAMES,
            SURNAMES,
            TOPIC_WORDS,
        ] {
            let mut sorted: Vec<&str> = pool.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), pool.len());
        }
    }

    #[test]
    fn model_number_format() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            let m = model_number(&mut rng);
            assert!((4..=7).contains(&m.len()), "bad model number `{m}`");
            assert!(m
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            assert!(m.chars().any(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..20 {
            assert_eq!(model_number(&mut a), model_number(&mut b));
            assert_eq!(spec_token(&mut a), spec_token(&mut b));
            assert_eq!(pub_year(&mut a), pub_year(&mut b));
        }
    }

    #[test]
    fn price_range_and_precision() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..200 {
            let p = price(&mut rng);
            assert!((5.0..2500.0).contains(&p));
            let cents = (p * 100.0).round() / 100.0;
            assert!((p - cents).abs() < 1e-9);
        }
    }

    #[test]
    fn year_range() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..200 {
            let y = pub_year(&mut rng);
            assert!((1985..=2022).contains(&y));
        }
    }
}
