#![forbid(unsafe_code)]
//! # em-synth
//!
//! Synthetic entity-matching benchmark generator.
//!
//! The paper evaluates on six public benchmarks (Magellan's
//! Walmart-Amazon, Amazon-Google, ABT-Buy and DBLP-Scholar; WDC Cameras
//! and Shoes — Table 3). Those corpora are not shipped here, so this
//! crate builds *synthetic equivalents*: seeded generators that reproduce
//! each benchmark's published statistics (candidate-set size, positive
//! rate, attribute count, text length) and, more importantly, the
//! phenomena the battleship algorithm's evaluation depends on:
//!
//! * **label imbalance** — 9–21 % positives,
//! * **hard negatives** — sibling products sharing brand/category tokens
//!   that sit near the decision boundary,
//! * **heterogeneous noise** — typos, token drops/swaps, abbreviations,
//!   missing values, price jitter; the "dirty" DBLP-Scholar side gets
//!   heavier noise, ABT-Buy gets long free-text descriptions,
//! * **cluster structure** — matches derive from shared underlying
//!   entities, so their pair representations concentrate (Figure 1's
//!   premise).
//!
//! Every dataset is a deterministic function of a [`DatasetProfile`] and a
//! seed, so experiments are exactly reproducible.

pub mod blocking;
pub mod entity;
pub mod generate;
pub mod perturb;
pub mod pool;
pub mod profile;
pub mod vocab;

pub use blocking::{block_candidates, blocking_recall, BlockingConfig};
pub use entity::{Domain, Entity, EntityFactory};
pub use generate::generate;
pub use perturb::{perturb_text, PerturbConfig};
pub use pool::{
    assemble_dataset, generate_pool, pool_profile, pool_profiles, PoolProfile, RecordPool,
};
pub use profile::{all_profiles, DatasetProfile, NoiseLevel, SplitSpec};
