//! A token-overlap blocker.
//!
//! The paper assumes "that the candidate pair set was already extracted
//! using existing methods" (§2.1) — [`generate()`](crate::generate::generate) produces such a
//! set directly. This module provides the blocking stage itself anyway:
//! it exercises the code path a downstream user runs when starting from
//! raw tables, and the DIAL baseline's design (blocker + matcher
//! co-learning) references it.
//!
//! The scheme is standard token blocking with an inverted index: records
//! sharing at least `min_shared_tokens` non-stopword tokens become
//! candidates, optionally capped per record by keeping the
//! highest-overlap partners.

use std::collections::HashMap;

use em_core::{CandidatePair, EmError, RecordId, Result, Table, TokenSet};

/// Blocking parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingConfig {
    /// Minimum shared distinct tokens for a candidate.
    pub min_shared_tokens: usize,
    /// Maximum candidates kept per left record (by overlap count);
    /// `usize::MAX` keeps all.
    pub max_per_record: usize,
    /// Tokens appearing in more than this fraction of right-table records
    /// are treated as stopwords and not indexed.
    pub stopword_df: f64,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        BlockingConfig {
            min_shared_tokens: 2,
            max_per_record: 50,
            stopword_df: 0.2,
        }
    }
}

/// Produce candidate pairs by token blocking between two tables.
pub fn block_candidates(
    left: &Table,
    right: &Table,
    config: BlockingConfig,
) -> Result<Vec<CandidatePair>> {
    if config.min_shared_tokens == 0 {
        return Err(EmError::InvalidConfig(
            "min_shared_tokens must be > 0".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.stopword_df) {
        return Err(EmError::InvalidConfig(format!(
            "stopword_df {} outside [0,1]",
            config.stopword_df
        )));
    }
    if left.is_empty() || right.is_empty() {
        return Ok(Vec::new());
    }

    // Inverted index over right-table tokens with document frequencies.
    let mut postings: HashMap<String, Vec<u32>> = HashMap::new();
    for rec in right.records() {
        let tokens = TokenSet::from_text(&rec.full_text());
        for (t, _) in tokens.iter() {
            postings.entry(t.to_string()).or_default().push(rec.id.0);
        }
    }
    let df_cap = (config.stopword_df * right.len() as f64).ceil() as usize;
    postings.retain(|_, ids| {
        ids.dedup();
        ids.len() <= df_cap.max(1)
    });

    let mut out = Vec::new();
    let mut overlap: HashMap<u32, usize> = HashMap::new();
    for lrec in left.records() {
        overlap.clear();
        let tokens = TokenSet::from_text(&lrec.full_text());
        for (t, _) in tokens.iter() {
            if let Some(ids) = postings.get(t) {
                for &rid in ids {
                    *overlap.entry(rid).or_insert(0) += 1;
                }
            }
        }
        let mut cands: Vec<(u32, usize)> = overlap
            .iter()
            .filter(|&(_, &c)| c >= config.min_shared_tokens)
            .map(|(&rid, &c)| (rid, c))
            .collect();
        cands.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(rid, _) in cands.iter().take(config.max_per_record) {
            out.push(CandidatePair::new(lrec.id, RecordId(rid)));
        }
    }
    Ok(out)
}

/// Fraction of true match pairs retained by a blocking output.
pub fn blocking_recall(candidates: &[CandidatePair], true_matches: &[CandidatePair]) -> f64 {
    if true_matches.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<(u32, u32)> =
        candidates.iter().map(|p| (p.left.0, p.right.0)).collect();
    let hit = true_matches
        .iter()
        .filter(|p| set.contains(&(p.left.0, p.right.0)))
        .count();
    hit as f64 / true_matches.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::profile::DatasetProfile;
    use em_core::{Label, Rng};

    #[test]
    fn blocker_keeps_true_matches_on_synthetic_data() {
        let p = DatasetProfile::amazon_google().scaled(0.04);
        let mut rng = Rng::seed_from_u64(1);
        let d = generate(&p, &mut rng).unwrap();
        let candidates = block_candidates(&d.left, &d.right, BlockingConfig::default()).unwrap();
        let true_matches: Vec<CandidatePair> = (0..d.len())
            .filter(|&i| d.ground_truth(i) == Label::Match)
            .map(|i| d.pairs()[i])
            .collect();
        let recall = blocking_recall(&candidates, &true_matches);
        assert!(recall > 0.9, "blocking recall {recall}");
    }

    #[test]
    fn blocker_prunes_the_cross_product() {
        let p = DatasetProfile::amazon_google().scaled(0.04);
        let mut rng = Rng::seed_from_u64(2);
        let d = generate(&p, &mut rng).unwrap();
        let candidates = block_candidates(&d.left, &d.right, BlockingConfig::default()).unwrap();
        let cross = d.left.len() * d.right.len();
        assert!(
            candidates.len() * 4 < cross,
            "blocking kept {} of {} pairs",
            candidates.len(),
            cross
        );
    }

    #[test]
    fn empty_tables_yield_no_candidates() {
        let schema = em_core::Schema::new(["t"]).unwrap();
        let empty = Table::new("e", schema.clone());
        let mut one = Table::new("o", schema);
        one.push(["alpha beta"]).unwrap();
        assert!(block_candidates(&empty, &one, BlockingConfig::default())
            .unwrap()
            .is_empty());
        assert!(block_candidates(&one, &empty, BlockingConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn max_per_record_caps_candidates() {
        let schema = em_core::Schema::new(["t"]).unwrap();
        let mut l = Table::new("l", schema.clone());
        l.push(["common tokens here"]).unwrap();
        let mut r = Table::new("r", schema);
        for i in 0..20 {
            r.push([format!("common tokens here variant {i}")]).unwrap();
        }
        let cfg = BlockingConfig {
            min_shared_tokens: 2,
            max_per_record: 5,
            stopword_df: 1.0,
        };
        let cands = block_candidates(&l, &r, cfg).unwrap();
        assert_eq!(cands.len(), 5);
    }

    #[test]
    fn stopwords_are_ignored() {
        let schema = em_core::Schema::new(["t"]).unwrap();
        let mut l = Table::new("l", schema.clone());
        l.push(["the quick fox"]).unwrap();
        let mut r = Table::new("r", schema);
        // "the" appears everywhere → stopword; only genuine overlap counts.
        for i in 0..10 {
            r.push([format!("the slow turtle {i}")]).unwrap();
        }
        r.push(["the quick fox runs"]).unwrap();
        let cfg = BlockingConfig {
            min_shared_tokens: 2,
            max_per_record: 50,
            stopword_df: 0.2,
        };
        let cands = block_candidates(&l, &r, cfg).unwrap();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].right, RecordId(10));
    }

    #[test]
    fn recall_conventions() {
        assert_eq!(blocking_recall(&[], &[]), 1.0);
        let m = CandidatePair::new(RecordId(0), RecordId(0));
        assert_eq!(blocking_recall(&[], &[m]), 0.0);
        assert_eq!(blocking_recall(&[m], &[m]), 1.0);
    }

    #[test]
    fn validates_config() {
        let schema = em_core::Schema::new(["t"]).unwrap();
        let t = Table::new("t", schema);
        assert!(block_candidates(
            &t,
            &t,
            BlockingConfig {
                min_shared_tokens: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(block_candidates(
            &t,
            &t,
            BlockingConfig {
                stopword_df: 2.0,
                ..Default::default()
            }
        )
        .is_err());
    }
}
