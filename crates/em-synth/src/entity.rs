//! Ground-truth entities and their rendering into records.
//!
//! An [`Entity`] is the hidden real-world object both sides of a match
//! pair describe. The [`EntityFactory`] draws entities per domain and
//! renders them into attribute values; `render` is then perturbed
//! independently per table side to create matching records, while
//! [`EntityFactory::sibling`] derives a *near-duplicate different* entity
//! (same brand and category, different model/title) used for hard
//! negatives.

use em_core::Rng;

use crate::vocab;

/// The data domain a dataset profile draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Structured product offers (Walmart-Amazon: 5 attrs,
    /// Amazon-Google: 3 attrs).
    Product,
    /// Title-only product offers (WDC Cameras / Shoes).
    ProductTitleOnly,
    /// Products with a long free-text description attribute (ABT-Buy).
    ProductLongText,
    /// Bibliographic records (DBLP-Scholar).
    Bibliographic,
}

impl Domain {
    /// Attribute names of this domain, matching the Table 3 attribute
    /// counts (5 / 3 / 1 / 3 / 4).
    pub fn attrs(self, n_attrs: usize) -> Vec<&'static str> {
        match self {
            Domain::Product => {
                let all = ["title", "category", "brand", "modelno", "price"];
                all[..n_attrs.min(5)].to_vec()
            }
            Domain::ProductTitleOnly => vec!["title"],
            Domain::ProductLongText => vec!["name", "description", "price"],
            Domain::Bibliographic => vec!["title", "authors", "venue", "year"],
        }
    }
}

/// A hidden ground-truth entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// Unique id within the generated universe.
    pub id: u64,
    /// Brand (products) or lead-author surname (bibliographic).
    pub brand: String,
    /// Product line / research topic group.
    pub line: String,
    /// Category noun (products) / venue (bibliographic).
    pub category: String,
    /// Distinguishing model number / title tail.
    pub model: String,
    /// Title body tokens.
    pub title_words: Vec<String>,
    /// Extra tokens (specs, author list, description phrases).
    pub extras: Vec<String>,
    /// Numeric attribute (price / year).
    pub numeric: f64,
}

/// Draws entities for a domain.
#[derive(Debug, Clone)]
pub struct EntityFactory {
    domain: Domain,
    /// Target length of the title body (tokens), before brand/model.
    title_len: usize,
    next_id: u64,
}

impl EntityFactory {
    /// Create a factory for a domain. `title_len` controls title verbosity
    /// (WDC-style titles are long, Magellan titles shorter).
    pub fn new(domain: Domain, title_len: usize) -> Self {
        EntityFactory {
            domain,
            title_len: title_len.max(1),
            next_id: 0,
        }
    }

    /// Draw a fresh entity.
    pub fn draw(&mut self, rng: &mut Rng) -> Entity {
        let id = self.next_id;
        self.next_id += 1;
        match self.domain {
            Domain::Bibliographic => self.draw_paper(id, rng),
            _ => self.draw_product(id, rng),
        }
    }

    fn draw_product(&mut self, id: u64, rng: &mut Rng) -> Entity {
        let brand = rng.choose(vocab::BRANDS).to_string();
        let line = rng.choose(vocab::LINES).to_string();
        let category = rng.choose(vocab::CATEGORIES).to_string();
        let model = vocab::model_number(rng);
        let mut title_words = Vec::with_capacity(self.title_len);
        for _ in 0..self.title_len {
            title_words.push(rng.choose(vocab::ADJECTIVES).to_string());
        }
        let mut extras = vec![vocab::spec_token(rng)];
        if matches!(self.domain, Domain::ProductLongText) {
            for _ in 0..3 + rng.below(3) {
                extras.push(rng.choose(vocab::DESCRIPTION_PHRASES).to_string());
            }
        }
        Entity {
            id,
            brand,
            line,
            category,
            model,
            title_words,
            extras,
            numeric: vocab::price(rng),
        }
    }

    fn draw_paper(&mut self, id: u64, rng: &mut Rng) -> Entity {
        let n_authors = 1 + rng.below(4);
        let mut extras = Vec::with_capacity(n_authors);
        for _ in 0..n_authors {
            extras.push(format!(
                "{} {}",
                rng.choose(vocab::FIRST_NAMES),
                rng.choose(vocab::SURNAMES)
            ));
        }
        let brand = extras[0].split(' ').nth(1).unwrap_or("anon").to_string();
        let mut title_words = Vec::with_capacity(self.title_len.max(4));
        for _ in 0..self.title_len.max(4) {
            title_words.push(rng.choose(vocab::TOPIC_WORDS).to_string());
        }
        Entity {
            id,
            brand,
            line: rng.choose(vocab::TOPIC_WORDS).to_string(),
            category: rng.choose(vocab::VENUES).to_string(),
            model: format!("p{}", vocab::model_number(rng)),
            title_words,
            extras,
            numeric: vocab::pub_year(rng) as f64,
        }
    }

    /// Derive a *sibling* of `base`: same brand, line and category, but a
    /// different model and partially different title — a hard negative
    /// that shares most blocking tokens with the original.
    pub fn sibling(&mut self, base: &Entity, rng: &mut Rng) -> Entity {
        let id = self.next_id;
        self.next_id += 1;
        let mut sib = base.clone();
        sib.id = id;
        // New model number; guaranteed different from the base's.
        loop {
            sib.model = match self.domain {
                Domain::Bibliographic => format!("p{}", vocab::model_number(rng)),
                _ => vocab::model_number(rng),
            };
            if sib.model != base.model {
                break;
            }
        }
        // Variable hardness: each sibling replaces a random fraction of
        // its title words, from nearly-identical (only the model number
        // differs — the hardest possible negative) to moderately
        // different. A hardness *continuum* keeps the match/non-match
        // similarity distributions overlapping instead of separable by a
        // single threshold.
        let pool: &[&str] = match self.domain {
            Domain::Bibliographic => vocab::TOPIC_WORDS,
            _ => vocab::ADJECTIVES,
        };
        let replace_frac = 0.05 + rng.f64() * 0.45;
        for w in sib.title_words.iter_mut() {
            if rng.bool(replace_frac) {
                *w = rng.choose(pool).to_string();
            }
        }
        // The numeric attribute stays *near* the base's: sibling products
        // are priced like their product line, sibling papers appear within
        // a couple of years. A clearly-different numeric value would make
        // hard negatives separable by one feature.
        sib.numeric = match self.domain {
            Domain::Bibliographic => {
                let shift = 1.0 + rng.below(3) as f64;
                let sign = if rng.bool(0.5) { 1.0 } else { -1.0 };
                (base.numeric + sign * shift).clamp(1985.0, 2022.0)
            }
            _ => {
                let rel = 0.05 + rng.f64() * 0.25;
                let sign = if rng.bool(0.5) { 1.0 } else { -1.0 };
                ((base.numeric * (1.0 + sign * rel)).max(0.01) * 100.0).round() / 100.0
            }
        };
        sib
    }

    /// Render the entity into attribute values for `attrs` (as produced by
    /// [`Domain::attrs`]).
    pub fn render(&self, entity: &Entity, attrs: &[&str]) -> Vec<String> {
        attrs
            .iter()
            .map(|&attr| self.render_attr(entity, attr))
            .collect()
    }

    fn render_attr(&self, e: &Entity, attr: &str) -> String {
        match (self.domain, attr) {
            (Domain::Bibliographic, "title") => {
                format!(
                    "{} {} for {} data",
                    e.title_words.join(" "),
                    e.model,
                    e.line
                )
            }
            (Domain::Bibliographic, "authors") => e.extras.join(" and "),
            (Domain::Bibliographic, "venue") => e.category.clone(),
            (Domain::Bibliographic, "year") => format!("{}", e.numeric as u32),
            (Domain::ProductLongText, "name") => self.product_title(e),
            (Domain::ProductLongText, "description") => {
                format!(
                    "{} {} {} {}",
                    self.product_title(e),
                    e.extras.join(" "),
                    e.category,
                    e.line
                )
            }
            (_, "title") => self.product_title(e),
            (_, "category") => e.category.clone(),
            (_, "brand") | (_, "manufacturer") => e.brand.clone(),
            (_, "modelno") => e.model.clone(),
            (_, "price") => format!("{:.2}", e.numeric),
            // Unknown attribute: conservative fallback to the title.
            _ => self.product_title(e),
        }
    }

    fn product_title(&self, e: &Entity) -> String {
        let mut parts = Vec::with_capacity(4 + e.title_words.len());
        parts.push(e.brand.clone());
        parts.push(e.line.clone());
        parts.extend(e.title_words.iter().cloned());
        parts.push(e.category.clone());
        parts.push(e.model.clone());
        if let Some(spec) = e.extras.first() {
            parts.push(spec.clone());
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_attrs_match_table3_counts() {
        assert_eq!(Domain::Product.attrs(5).len(), 5); // Walmart-Amazon
        assert_eq!(Domain::Product.attrs(3).len(), 3); // Amazon-Google
        assert_eq!(Domain::ProductTitleOnly.attrs(1).len(), 1); // WDC
        assert_eq!(Domain::ProductLongText.attrs(3).len(), 3); // ABT-Buy
        assert_eq!(Domain::Bibliographic.attrs(4).len(), 4); // DBLP-Scholar
    }

    #[test]
    fn draw_assigns_unique_ids() {
        let mut f = EntityFactory::new(Domain::Product, 3);
        let mut rng = Rng::seed_from_u64(1);
        let a = f.draw(&mut rng);
        let b = f.draw(&mut rng);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn product_render_has_all_attrs() {
        let mut f = EntityFactory::new(Domain::Product, 3);
        let mut rng = Rng::seed_from_u64(2);
        let e = f.draw(&mut rng);
        let attrs = Domain::Product.attrs(5);
        let vals = f.render(&e, &attrs);
        assert_eq!(vals.len(), 5);
        assert!(vals.iter().all(|v| !v.is_empty()));
        // Title contains brand, category and model.
        assert!(vals[0].contains(&e.brand));
        assert!(vals[0].contains(&e.category));
        assert!(vals[0].contains(&e.model));
        // Price renders with two decimals.
        assert!(vals[4].contains('.'));
    }

    #[test]
    fn paper_render_shapes() {
        let mut f = EntityFactory::new(Domain::Bibliographic, 6);
        let mut rng = Rng::seed_from_u64(3);
        let e = f.draw(&mut rng);
        let attrs = Domain::Bibliographic.attrs(4);
        let vals = f.render(&e, &attrs);
        assert_eq!(vals.len(), 4);
        let year: u32 = vals[3].parse().expect("year numeric");
        assert!((1985..=2022).contains(&year));
        assert!(!vals[1].is_empty(), "authors empty");
    }

    #[test]
    fn sibling_shares_brand_but_differs() {
        let mut f = EntityFactory::new(Domain::Product, 4);
        let mut rng = Rng::seed_from_u64(4);
        let base = f.draw(&mut rng);
        let sib = f.sibling(&base, &mut rng);
        assert_eq!(sib.brand, base.brand);
        assert_eq!(sib.category, base.category);
        assert_ne!(sib.model, base.model);
        assert_ne!(sib.id, base.id);
        // Sibling titles share tokens (hard negative) but differ.
        let attrs = Domain::Product.attrs(5);
        let tv = f.render(&base, &attrs)[0].clone();
        let sv = f.render(&sib, &attrs)[0].clone();
        assert_ne!(tv, sv);
        let base_tokens: std::collections::HashSet<&str> = tv.split(' ').collect();
        let shared = sv.split(' ').filter(|t| base_tokens.contains(t)).count();
        assert!(shared >= 3, "sibling shares only {shared} tokens");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut f1 = EntityFactory::new(Domain::Bibliographic, 5);
        let mut f2 = EntityFactory::new(Domain::Bibliographic, 5);
        let mut r1 = Rng::seed_from_u64(11);
        let mut r2 = Rng::seed_from_u64(11);
        for _ in 0..10 {
            assert_eq!(f1.draw(&mut r1), f2.draw(&mut r2));
        }
    }

    #[test]
    fn long_text_description_is_long() {
        let mut f = EntityFactory::new(Domain::ProductLongText, 3);
        let mut rng = Rng::seed_from_u64(5);
        let e = f.draw(&mut rng);
        let attrs = Domain::ProductLongText.attrs(3);
        let vals = f.render(&e, &attrs);
        let desc_tokens = vals[1].split(' ').count();
        assert!(desc_tokens >= 15, "description only {desc_tokens} tokens");
    }
}
