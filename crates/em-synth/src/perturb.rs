//! Text perturbations modeling real-world data entry noise.
//!
//! A match pair consists of two independently perturbed views of the same
//! underlying entity; the perturbation intensity is the per-dataset knob
//! that controls task difficulty (DBLP-Scholar's crawled side is noisier
//! than its curated side; WDC titles suffer token drops and reorderings).

use em_core::Rng;

/// Perturbation probabilities, all per-token unless noted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbConfig {
    /// Probability of a character-level typo in a token.
    pub typo: f64,
    /// Probability of dropping a token entirely.
    pub token_drop: f64,
    /// Probability (per text) of swapping two adjacent tokens.
    pub token_swap: f64,
    /// Probability of abbreviating a token to its first letters.
    pub abbreviate: f64,
    /// Probability (per attribute) of blanking the whole value.
    pub missing_value: f64,
    /// Relative jitter applied to numeric values (e.g. 0.05 = ±5 %).
    pub numeric_jitter: f64,
}

impl PerturbConfig {
    /// Mild noise: occasional typos, rare drops (curated catalog data).
    pub fn mild() -> Self {
        PerturbConfig {
            typo: 0.02,
            token_drop: 0.03,
            token_swap: 0.05,
            abbreviate: 0.02,
            missing_value: 0.02,
            numeric_jitter: 0.02,
        }
    }

    /// Medium noise: the default for product feeds from different shops.
    pub fn medium() -> Self {
        PerturbConfig {
            typo: 0.05,
            token_drop: 0.10,
            token_swap: 0.15,
            abbreviate: 0.05,
            missing_value: 0.08,
            numeric_jitter: 0.05,
        }
    }

    /// Heavy noise: web-crawled, uncleaned data (the Google-Scholar side
    /// of DBLP-Scholar).
    pub fn heavy() -> Self {
        PerturbConfig {
            typo: 0.09,
            token_drop: 0.18,
            token_swap: 0.25,
            abbreviate: 0.12,
            missing_value: 0.15,
            numeric_jitter: 0.10,
        }
    }

    /// No noise at all (for tests).
    pub fn none() -> Self {
        PerturbConfig {
            typo: 0.0,
            token_drop: 0.0,
            token_swap: 0.0,
            abbreviate: 0.0,
            missing_value: 0.0,
            numeric_jitter: 0.0,
        }
    }
}

/// Apply a character-level typo: swap, delete, duplicate or substitute.
fn typo(token: &str, rng: &mut Rng) -> String {
    let chars: Vec<char> = token.chars().collect();
    if chars.len() < 2 {
        return token.to_string();
    }
    let mut out = chars.clone();
    match rng.below(4) {
        0 => {
            // Swap two adjacent characters.
            let i = rng.below(out.len() - 1);
            out.swap(i, i + 1);
        }
        1 => {
            // Delete a character.
            let i = rng.below(out.len());
            out.remove(i);
        }
        2 => {
            // Duplicate a character.
            let i = rng.below(out.len());
            let c = out[i];
            out.insert(i, c);
        }
        _ => {
            // Substitute with a neighbouring letter.
            let i = rng.below(out.len());
            let c = out[i];
            out[i] = match c {
                'a'..='y' => ((c as u8) + 1) as char,
                'z' => 'a',
                '0'..='8' => ((c as u8) + 1) as char,
                '9' => '0',
                other => other,
            };
        }
    }
    out.into_iter().collect()
}

/// Abbreviate a token: keep a prefix (at least one char).
fn abbreviate(token: &str, rng: &mut Rng) -> String {
    let chars: Vec<char> = token.chars().collect();
    if chars.len() <= 3 {
        return token.to_string();
    }
    let keep = 1 + rng.below(3);
    chars.into_iter().take(keep).collect()
}

/// Perturb a whitespace-tokenized text per the config.
///
/// At least one token always survives, so a non-empty input cannot decay
/// to an empty value through token drops (missing values are modeled
/// separately at the attribute level).
pub fn perturb_text(text: &str, config: &PerturbConfig, rng: &mut Rng) -> String {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    if tokens.is_empty() {
        return String::new();
    }
    let mut out: Vec<String> = Vec::with_capacity(tokens.len());
    for t in &tokens {
        if out.len() + 1 < tokens.len() && rng.bool(config.token_drop) {
            continue;
        }
        let mut tok = (*t).to_string();
        if rng.bool(config.abbreviate) {
            tok = abbreviate(&tok, rng);
        }
        if rng.bool(config.typo) {
            tok = typo(&tok, rng);
        }
        out.push(tok);
    }
    if out.is_empty() {
        out.push(tokens[0].to_string());
    }
    if out.len() >= 2 && rng.bool(config.token_swap) {
        let i = rng.below(out.len() - 1);
        out.swap(i, i + 1);
    }
    out.join(" ")
}

/// Jitter a price-like numeric value by the configured relative amount,
/// keeping two decimals and positivity.
pub fn perturb_price(value: f64, config: &PerturbConfig, rng: &mut Rng) -> f64 {
    if config.numeric_jitter <= 0.0 {
        return value;
    }
    let factor = 1.0 + (rng.f64() * 2.0 - 1.0) * config.numeric_jitter;
    ((value * factor).max(0.01) * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_noise_is_identity() {
        let mut rng = Rng::seed_from_u64(1);
        let text = "nikon d750 full frame dslr";
        assert_eq!(perturb_text(text, &PerturbConfig::none(), &mut rng), text);
        assert_eq!(
            perturb_price(24.99, &PerturbConfig::none(), &mut rng),
            24.99
        );
    }

    #[test]
    fn heavy_noise_changes_text_but_keeps_overlap() {
        let mut rng = Rng::seed_from_u64(2);
        let text = "acera quantum camera dx431 24mp wireless compact professional kit";
        let mut changed = 0;
        for _ in 0..50 {
            let p = perturb_text(text, &PerturbConfig::heavy(), &mut rng);
            assert!(!p.is_empty());
            if p != text {
                changed += 1;
            }
            // Perturbed view still shares tokens with the original.
            let orig: std::collections::HashSet<&str> = text.split(' ').collect();
            let shared = p.split(' ').filter(|t| orig.contains(t)).count();
            assert!(shared >= 2, "only {shared} shared tokens in `{p}`");
        }
        assert!(changed >= 45, "heavy noise changed only {changed}/50");
    }

    #[test]
    fn never_returns_empty_for_nonempty_input() {
        let mut rng = Rng::seed_from_u64(3);
        let cfg = PerturbConfig {
            token_drop: 1.0,
            ..PerturbConfig::none()
        };
        for text in ["single", "two tokens", "a b c d e"] {
            let p = perturb_text(text, &cfg, &mut rng);
            assert!(!p.is_empty(), "`{text}` decayed to empty");
        }
        assert_eq!(perturb_text("", &cfg, &mut rng), "");
    }

    #[test]
    fn typo_preserves_most_characters() {
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..100 {
            let t = typo("keyboard", &mut rng);
            assert!((7..=9).contains(&t.len()), "typo `{t}`");
        }
        // Single chars are left alone.
        assert_eq!(typo("a", &mut rng), "a");
    }

    #[test]
    fn abbreviate_keeps_prefix() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..50 {
            let a = abbreviate("professional", &mut rng);
            assert!(a.len() <= 3 && !a.is_empty());
            assert!("professional".starts_with(&a));
        }
        assert_eq!(abbreviate("abc", &mut rng), "abc");
    }

    #[test]
    fn price_jitter_bounded() {
        let mut rng = Rng::seed_from_u64(6);
        let cfg = PerturbConfig {
            numeric_jitter: 0.05,
            ..PerturbConfig::none()
        };
        for _ in 0..200 {
            let p = perturb_price(100.0, &cfg, &mut rng);
            assert!((94.9..=105.1).contains(&p), "price {p}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from_u64(9);
        let mut b = Rng::seed_from_u64(9);
        let cfg = PerturbConfig::heavy();
        for _ in 0..20 {
            assert_eq!(
                perturb_text("alpha beta gamma delta epsilon", &cfg, &mut a),
                perturb_text("alpha beta gamma delta epsilon", &cfg, &mut b)
            );
        }
    }
}
