//! The dataset generator.
//!
//! Produces a complete [`Dataset`] from a [`DatasetProfile`]: two clean
//! tables (every record describes exactly one entity), a candidate pair
//! set of the profile's size and positive rate, and a stratified
//! train/valid/test split matching the paper's protocol (§4.1).
//!
//! Pair construction mirrors what a blocking stage feeding a matcher
//! would emit:
//!
//! * **matches** — two independently perturbed renderings of one entity,
//!   one per table;
//! * **hard negatives** — an entity paired against a *sibling* (same
//!   brand/category, different model), the near-boundary cases blocking
//!   cannot filter;
//! * **random negatives** — records of unrelated entities that survived
//!   blocking by chance.

use std::collections::HashSet;

use em_core::{
    CandidatePair, Dataset, EmError, Label, PairIdx, RecordId, Result, Rng, Schema, Split, Table,
};

use crate::entity::{Entity, EntityFactory};
use crate::perturb::{perturb_price, perturb_text, PerturbConfig};
use crate::profile::{DatasetProfile, SplitSpec};

/// Generate a synthetic dataset from a profile.
///
/// Deterministic in `(profile, rng seed)`.
pub fn generate(profile: &DatasetProfile, rng: &mut Rng) -> Result<Dataset> {
    profile.validate()?;

    let attrs = profile.domain.attrs(profile.n_attrs);
    let schema = Schema::new(attrs.clone())?;
    let mut left = Table::new(format!("{}-left", profile.name), schema.clone());
    let mut right = Table::new(format!("{}-right", profile.name), schema);

    let total = profile.total_pairs();
    let n_pos = ((total as f64) * profile.pos_rate).round() as usize;
    let n_neg = total - n_pos;
    let n_hard = ((n_neg as f64) * profile.hard_negative_frac).round() as usize;
    let n_rand = n_neg - n_hard;
    if n_pos == 0 {
        return Err(EmError::InvalidConfig(format!(
            "{}: profile yields zero positives",
            profile.name
        )));
    }

    let mut factory = EntityFactory::new(profile.domain, profile.title_len);
    let left_noise = profile.left_noise.config();
    let right_noise = profile.right_noise.config();

    let mut pairs: Vec<CandidatePair> = Vec::with_capacity(total);
    let mut truth: Vec<Label> = Vec::with_capacity(total);

    // --- Matches: one entity, two perturbed views. -----------------------
    let mut matched_entities: Vec<Entity> = Vec::with_capacity(n_pos);
    let mut left_of: Vec<RecordId> = Vec::with_capacity(n_pos);
    let mut right_of: Vec<RecordId> = Vec::with_capacity(n_pos);
    for _ in 0..n_pos {
        let entity = factory.draw(rng);
        let l = push_record(&mut left, &factory, &entity, &attrs, &left_noise, rng)?;
        let r = push_record(&mut right, &factory, &entity, &attrs, &right_noise, rng)?;
        pairs.push(CandidatePair::new(l, r));
        truth.push(Label::Match);
        left_of.push(l);
        right_of.push(r);
        matched_entities.push(entity);
    }

    // --- Hard negatives: entity vs sibling. ------------------------------
    for h in 0..n_hard {
        let base_idx = rng.below(matched_entities.len());
        let sibling = factory.sibling(&matched_entities[base_idx], rng);
        if h % 2 == 0 {
            // Fresh sibling record on the right, paired with the base's
            // left record.
            let r = push_record(&mut right, &factory, &sibling, &attrs, &right_noise, rng)?;
            pairs.push(CandidatePair::new(left_of[base_idx], r));
        } else {
            let l = push_record(&mut left, &factory, &sibling, &attrs, &left_noise, rng)?;
            pairs.push(CandidatePair::new(l, right_of[base_idx]));
        }
        truth.push(Label::NonMatch);
    }

    // --- Random negatives: unrelated existing records. -------------------
    let mut used: HashSet<(u32, u32)> = pairs.iter().map(|p| (p.left.0, p.right.0)).collect();
    let mut produced = 0usize;
    let mut attempts = 0usize;
    let attempt_cap = n_rand.saturating_mul(50) + 1000;
    while produced < n_rand && attempts < attempt_cap {
        attempts += 1;
        let a = rng.below(matched_entities.len());
        let b = rng.below(matched_entities.len());
        if a == b {
            continue;
        }
        let key = (left_of[a].0, right_of[b].0);
        if used.contains(&key) {
            continue;
        }
        used.insert(key);
        pairs.push(CandidatePair::new(left_of[a], right_of[b]));
        truth.push(Label::NonMatch);
        produced += 1;
    }
    // Tiny datasets can exhaust unique cross pairs — fall back to fresh
    // distractor entities so the pair count always hits the profile.
    while produced < n_rand {
        let ea = factory.draw(rng);
        let eb = factory.draw(rng);
        let l = push_record(&mut left, &factory, &ea, &attrs, &left_noise, rng)?;
        let r = push_record(&mut right, &factory, &eb, &attrs, &right_noise, rng)?;
        pairs.push(CandidatePair::new(l, r));
        truth.push(Label::NonMatch);
        produced += 1;
    }

    // --- Stratified split. ------------------------------------------------
    let split = stratified_split(profile, total, &truth, rng)?;

    Dataset::new(profile.name, left, right, pairs, truth, split)
}

/// Render an entity and push a perturbed record into `table` (shared
/// with the streamed record-pool generator in [`crate::pool`]).
pub(crate) fn push_record(
    table: &mut Table,
    factory: &EntityFactory,
    entity: &Entity,
    attrs: &[&str],
    noise: &PerturbConfig,
    rng: &mut Rng,
) -> Result<RecordId> {
    let raw = factory.render(entity, attrs);
    let mut values = Vec::with_capacity(raw.len());
    for (i, (attr, value)) in attrs.iter().zip(raw).enumerate() {
        // The first attribute (title/name) is never blanked: records with
        // no identifying text exist in real data but make degenerate
        // candidates that blocking would drop anyway.
        if i > 0 && rng.bool(noise.missing_value) {
            values.push(String::new());
            continue;
        }
        let perturbed = if *attr == "price" {
            let parsed: f64 = value.parse().unwrap_or(0.0);
            format!("{:.2}", perturb_price(parsed, noise, rng))
        } else if *attr == "year" {
            // Years survive perturbation intact: even dirty bibliographic
            // sources rarely corrupt the year digits.
            value
        } else {
            perturb_text(&value, noise, rng)
        };
        values.push(perturbed);
    }
    table.push(values)
}

/// Split pair indices into train/valid/test, stratified by label so the
/// training positive rate matches the profile's Table 3 value.
fn stratified_split(
    profile: &DatasetProfile,
    total: usize,
    truth: &[Label],
    rng: &mut Rng,
) -> Result<Split> {
    let (n_train, n_test) = match profile.split {
        SplitSpec::Ratios { train, valid, test } => {
            let sum = train + valid + test;
            let n_test = ((total as f64) * test / sum).round() as usize;
            (profile.train_pairs.min(total), n_test)
        }
        SplitSpec::FixedTest { test_pairs, .. } => {
            (profile.train_pairs.min(total), test_pairs.min(total))
        }
    };
    if n_train + n_test > total {
        return Err(EmError::InvalidConfig(format!(
            "{}: train {n_train} + test {n_test} exceed total {total}",
            profile.name
        )));
    }
    let n_valid = total - n_train - n_test;

    let mut pos_idx: Vec<PairIdx> = Vec::new();
    let mut neg_idx: Vec<PairIdx> = Vec::new();
    for (i, l) in truth.iter().enumerate() {
        if l.is_match() {
            pos_idx.push(i);
        } else {
            neg_idx.push(i);
        }
    }
    rng.shuffle(&mut pos_idx);
    rng.shuffle(&mut neg_idx);

    let n_pos = pos_idx.len();
    let global_rate = n_pos as f64 / total as f64;
    let train_pos = ((n_train as f64) * global_rate).round() as usize;
    let test_pos =
        (((n_test as f64) * global_rate).round() as usize).min(n_pos.saturating_sub(train_pos));
    let valid_pos = n_pos - train_pos - test_pos;
    if valid_pos > n_valid {
        return Err(EmError::InvalidConfig(format!(
            "{}: stratification impossible (valid_pos {valid_pos} > n_valid {n_valid})",
            profile.name
        )));
    }

    let mut train: Vec<PairIdx> = Vec::with_capacity(n_train);
    let mut valid: Vec<PairIdx> = Vec::with_capacity(n_valid);
    let mut test: Vec<PairIdx> = Vec::with_capacity(n_test);

    train.extend(&pos_idx[..train_pos]);
    test.extend(&pos_idx[train_pos..train_pos + test_pos]);
    valid.extend(&pos_idx[train_pos + test_pos..]);

    let train_neg = n_train - train_pos;
    let test_neg = n_test - test_pos;
    train.extend(&neg_idx[..train_neg]);
    test.extend(&neg_idx[train_neg..train_neg + test_neg]);
    valid.extend(&neg_idx[train_neg + test_neg..]);

    // Shuffle within parts so index order carries no label signal.
    rng.shuffle(&mut train);
    rng.shuffle(&mut valid);
    rng.shuffle(&mut test);
    Ok(Split { train, valid, test })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::all_profiles;

    #[test]
    fn scaled_profiles_hit_table3_statistics() {
        // Scaled-down versions keep the positive-rate and attribute
        // structure; full-size generation is exercised by the bench
        // harness (table3_stats) to keep unit tests fast.
        for profile in all_profiles() {
            let p = profile.scaled(0.05);
            let mut rng = Rng::seed_from_u64(42);
            let d = generate(&p, &mut rng).unwrap();
            let stats = d.stats();
            assert_eq!(stats.train_size, p.train_pairs, "{}", p.name);
            assert_eq!(stats.n_attrs, p.n_attrs, "{}", p.name);
            assert!(
                (stats.train_pos_rate - p.pos_rate).abs() < 0.02,
                "{}: pos rate {} vs profile {}",
                p.name,
                stats.train_pos_rate,
                p.pos_rate
            );
        }
    }

    #[test]
    fn full_walmart_amazon_counts() {
        let p = DatasetProfile::walmart_amazon();
        let mut rng = Rng::seed_from_u64(1);
        let d = generate(&p, &mut rng).unwrap();
        assert_eq!(d.len(), 10240);
        let s = d.stats();
        assert_eq!(s.train_size, 6144);
        assert!(
            (s.train_pos_rate - 0.094).abs() < 0.005,
            "{}",
            s.train_pos_rate
        );
        // 3:1:1 → test ≈ 2048.
        assert_eq!(d.split().test.len(), 2048);
    }

    #[test]
    fn wdc_fixed_test_protocol() {
        let p = DatasetProfile::wdc_cameras().scaled(0.2);
        let mut rng = Rng::seed_from_u64(2);
        let d = generate(&p, &mut rng).unwrap();
        if let SplitSpec::FixedTest { test_pairs, .. } = p.split {
            assert_eq!(d.split().test.len(), test_pairs);
        } else {
            panic!("profile must be fixed-test");
        }
        assert_eq!(d.split().train.len(), p.train_pairs);
    }

    #[test]
    fn matches_share_tokens_nonmatches_less() {
        let p = DatasetProfile::amazon_google().scaled(0.05);
        let mut rng = Rng::seed_from_u64(3);
        let d = generate(&p, &mut rng).unwrap();
        let mut match_sim = 0.0f64;
        let mut match_n = 0usize;
        let mut neg_sim = 0.0f64;
        let mut neg_n = 0usize;
        for i in 0..d.len() {
            let (l, r) = d.pair_records(i).unwrap();
            let a = em_core::TokenSet::from_text(&l.full_text());
            let b = em_core::TokenSet::from_text(&r.full_text());
            let s = em_core::jaccard(&a, &b);
            if d.ground_truth(i).is_match() {
                match_sim += s;
                match_n += 1;
            } else {
                neg_sim += s;
                neg_n += 1;
            }
        }
        let match_avg = match_sim / match_n as f64;
        let neg_avg = neg_sim / neg_n as f64;
        assert!(
            match_avg > neg_avg + 0.15,
            "match avg {match_avg:.3} vs negative avg {neg_avg:.3}"
        );
    }

    #[test]
    fn hard_negatives_are_harder_than_random() {
        // Regenerate with full hard fraction vs zero and compare negative
        // similarity distributions.
        let mut hard_p = DatasetProfile::walmart_amazon().scaled(0.03);
        hard_p.hard_negative_frac = 1.0;
        let mut easy_p = DatasetProfile::walmart_amazon().scaled(0.03);
        easy_p.hard_negative_frac = 0.0;
        let avg_neg_sim = |p: &DatasetProfile, seed: u64| {
            let mut rng = Rng::seed_from_u64(seed);
            let d = generate(p, &mut rng).unwrap();
            let mut total = 0.0;
            let mut n = 0;
            for i in 0..d.len() {
                if d.ground_truth(i).is_match() {
                    continue;
                }
                let (l, r) = d.pair_records(i).unwrap();
                let a = em_core::TokenSet::from_text(&l.full_text());
                let b = em_core::TokenSet::from_text(&r.full_text());
                total += em_core::jaccard(&a, &b);
                n += 1;
            }
            total / n as f64
        };
        let hard = avg_neg_sim(&hard_p, 7);
        let easy = avg_neg_sim(&easy_p, 7);
        assert!(hard > easy + 0.1, "hard {hard:.3} vs easy {easy:.3}");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = DatasetProfile::abt_buy().scaled(0.02);
        let mut r1 = Rng::seed_from_u64(5);
        let mut r2 = Rng::seed_from_u64(5);
        let a = generate(&p, &mut r1).unwrap();
        let b = generate(&p, &mut r2).unwrap();
        assert_eq!(a.pairs(), b.pairs());
        assert_eq!(a.split(), b.split());
        for i in 0..a.len() {
            assert_eq!(a.ground_truth(i), b.ground_truth(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = DatasetProfile::abt_buy().scaled(0.02);
        let a = generate(&p, &mut Rng::seed_from_u64(5)).unwrap();
        let b = generate(&p, &mut Rng::seed_from_u64(6)).unwrap();
        let (al, _) = a.pair_records(0).unwrap();
        let (bl, _) = b.pair_records(0).unwrap();
        assert_ne!(al.full_text(), bl.full_text());
    }

    #[test]
    fn bibliographic_domain_renders_years() {
        let p = DatasetProfile::dblp_scholar().scaled(0.01);
        let mut rng = Rng::seed_from_u64(8);
        let d = generate(&p, &mut rng).unwrap();
        let (l, _) = d.pair_records(0).unwrap();
        let year_pos = d.left.schema.position("year").unwrap();
        let year_val = l.value(year_pos).unwrap();
        if !year_val.is_empty() {
            let y: u32 = year_val.parse().expect("year should be numeric");
            assert!((1985..=2022).contains(&y));
        }
    }
}
