//! Streamed record-pool generation for blocking-scale scenarios.
//!
//! [`crate::generate`] builds a *pair-level* dataset: it decides up front
//! which candidate pairs exist and renders exactly the records those
//! pairs need. That is the right shape when the candidate set is given
//! (paper §2.1), but it cannot exercise a blocking tier — the pair set
//! is the input, not the output. This module generates the *tables
//! themselves*: two record pools of up to 10⁵–10⁶ rows each, drawn
//! entity-by-entity in a single O(n) streaming pass with no quadratic
//! intermediate, plus the ground-truth match list (one entry per entity
//! rendered into both tables). A blocking stage then proposes candidate
//! pairs from the raw tables, and [`assemble_dataset`] labels those
//! candidates against the truth list to produce an ordinary
//! [`Dataset`] for the downstream matcher.
//!
//! Generation is deterministic in `(profile, rng seed)`, like
//! [`crate::generate::generate`].

use std::collections::HashSet;

use em_core::{CandidatePair, Dataset, EmError, Label, Result, Rng, Schema, SplitRatios, Table};

use crate::entity::{Domain, EntityFactory};
use crate::generate::push_record;
use crate::profile::NoiseLevel;

/// Profile for a streamed record pool.
///
/// Unlike [`crate::DatasetProfile`], sizes are expressed in *entities*,
/// not pairs: each drawn entity lands in one table, both tables
/// (a true match), or both plus a near-duplicate sibling distractor.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolProfile {
    /// Pool name (becomes the dataset/table name prefix).
    pub name: String,
    /// Data domain to draw entities from.
    pub domain: Domain,
    /// Number of ground-truth entities to stream.
    pub n_entities: usize,
    /// Probability an entity is rendered into *both* tables (a match).
    pub match_rate: f64,
    /// Probability a matched entity also spawns a sibling distractor
    /// record (same brand/category, different model) in one table —
    /// the hard cases a blocking stage must not use to justify
    /// over-pruning.
    pub sibling_rate: f64,
    /// Noise applied to left-table renderings.
    pub left_noise: NoiseLevel,
    /// Noise applied to right-table renderings.
    pub right_noise: NoiseLevel,
    /// Attribute count (capped per domain).
    pub n_attrs: usize,
    /// Title verbosity in tokens.
    pub title_len: usize,
}

impl PoolProfile {
    /// A product-domain pool sized to roughly `n_records` total records
    /// across both tables.
    ///
    /// Expected records per entity = `2·match_rate + (1 − match_rate)
    /// + match_rate·sibling_rate`; with the defaults below that is 1.36,
    /// so `n_entities = n_records / 1.36`.
    pub fn products(name: impl Into<String>, n_records: usize) -> PoolProfile {
        let match_rate = 0.3;
        let sibling_rate = 0.2;
        let per_entity = 1.0 + match_rate + match_rate * sibling_rate;
        PoolProfile {
            name: name.into(),
            domain: Domain::Product,
            n_entities: ((n_records as f64) / per_entity).round().max(1.0) as usize,
            match_rate,
            sibling_rate,
            left_noise: NoiseLevel::Mild,
            right_noise: NoiseLevel::Medium,
            n_attrs: 5,
            title_len: 7,
        }
    }

    /// Scale the entity count by `factor`, tagging the name.
    pub fn scaled(&self, factor: f64) -> PoolProfile {
        let mut p = self.clone();
        p.n_entities = (((self.n_entities as f64) * factor).round() as usize).max(1);
        p.name = format!("{}-x{factor}", self.name);
        p
    }

    /// Validate the profile.
    pub fn validate(&self) -> Result<()> {
        if self.n_entities == 0 {
            return Err(EmError::InvalidConfig(format!(
                "{}: pool needs at least one entity",
                self.name
            )));
        }
        for (what, v) in [
            ("match_rate", self.match_rate),
            ("sibling_rate", self.sibling_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(EmError::InvalidConfig(format!(
                    "{}: {what} {v} outside [0, 1]",
                    self.name
                )));
            }
        }
        if self.match_rate == 0.0 {
            return Err(EmError::InvalidConfig(format!(
                "{}: match_rate 0 yields a pool with no true matches",
                self.name
            )));
        }
        if self.n_attrs == 0 || self.title_len == 0 {
            return Err(EmError::InvalidConfig(format!(
                "{}: n_attrs and title_len must be positive",
                self.name
            )));
        }
        Ok(())
    }

    /// Expected total record count (left + right) for this profile.
    pub fn expected_records(&self) -> usize {
        let per_entity = 1.0 + self.match_rate + self.match_rate * self.sibling_rate;
        ((self.n_entities as f64) * per_entity).round() as usize
    }
}

/// The registry of blocking-scale pools: ~10⁴, 10⁵ and 10⁶ records.
///
/// `pool-10k` is small enough that the exhaustive cross product
/// (~2.5·10⁷ pairs) is still co-computable, so it anchors the recall
/// gate; `pool-100k` and `pool-1m` exist only behind a blocking tier.
pub fn pool_profiles() -> Vec<PoolProfile> {
    vec![
        PoolProfile::products("pool-10k", 10_000),
        PoolProfile::products("pool-100k", 100_000),
        PoolProfile::products("pool-1m", 1_000_000),
    ]
}

/// Look up a registry pool profile by name.
pub fn pool_profile(name: &str) -> Result<PoolProfile> {
    pool_profiles()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| EmError::InvalidConfig(format!("unknown pool profile '{name}'")))
}

/// Two raw record tables plus the ground-truth match list.
///
/// This is the *input* to a blocking stage: no candidate pairs exist
/// yet, only records and the hidden truth used to score whatever pairs
/// blocking proposes.
#[derive(Debug, Clone)]
pub struct RecordPool {
    /// Pool name (the profile's name).
    pub name: String,
    /// Left table (`D1`).
    pub left: Table,
    /// Right table (`D2`).
    pub right: Table,
    /// All true matches, as `(left, right)` record-id pairs, sorted
    /// left-major ascending.
    pub true_matches: Vec<CandidatePair>,
}

impl RecordPool {
    /// Total records across both tables.
    pub fn n_records(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Size of the exhaustive cross product `|D1|·|D2|` — the pair count
    /// a blocking tier must undercut. `u128` so 10⁶-record pools don't
    /// overflow.
    pub fn exhaustive_pairs(&self) -> u128 {
        (self.left.len() as u128) * (self.right.len() as u128)
    }
}

/// Stream a record pool from a profile.
///
/// One pass over `n_entities`; each entity is rendered into the left
/// table, the right table, or both (plus an optional sibling
/// distractor), so memory and time are O(records) — no pair matrix is
/// ever formed. Deterministic in `(profile, rng seed)`.
pub fn generate_pool(profile: &PoolProfile, rng: &mut Rng) -> Result<RecordPool> {
    profile.validate()?;

    let attrs = profile.domain.attrs(profile.n_attrs);
    let schema = Schema::new(attrs.clone())?;
    let mut left = Table::new(format!("{}-left", profile.name), schema.clone());
    let mut right = Table::new(format!("{}-right", profile.name), schema);

    let mut factory = EntityFactory::new(profile.domain, profile.title_len);
    let left_noise = profile.left_noise.config();
    let right_noise = profile.right_noise.config();

    let expected_matches = ((profile.n_entities as f64) * profile.match_rate).round() as usize;
    let mut true_matches: Vec<CandidatePair> = Vec::with_capacity(expected_matches);

    for _ in 0..profile.n_entities {
        let entity = factory.draw(rng);
        if rng.bool(profile.match_rate) {
            let l = push_record(&mut left, &factory, &entity, &attrs, &left_noise, rng)?;
            let r = push_record(&mut right, &factory, &entity, &attrs, &right_noise, rng)?;
            true_matches.push(CandidatePair::new(l, r));
            if rng.bool(profile.sibling_rate) {
                // Hard distractor: a sibling of a matched entity, dropped
                // into one side only so it can never be a true match.
                let sib = factory.sibling(&entity, rng);
                if rng.bool(0.5) {
                    push_record(&mut left, &factory, &sib, &attrs, &left_noise, rng)?;
                } else {
                    push_record(&mut right, &factory, &sib, &attrs, &right_noise, rng)?;
                }
            }
        } else if rng.bool(0.5) {
            push_record(&mut left, &factory, &entity, &attrs, &left_noise, rng)?;
        } else {
            push_record(&mut right, &factory, &entity, &attrs, &right_noise, rng)?;
        }
    }

    if true_matches.is_empty() {
        return Err(EmError::InvalidConfig(format!(
            "{}: pool produced no true matches (too few entities for match_rate {})",
            profile.name, profile.match_rate
        )));
    }
    // push_record appends monotonically, so the list is already sorted
    // left-major; assert rather than re-sort.
    debug_assert!(true_matches.windows(2).all(|w| w[0] < w[1]));

    Ok(RecordPool {
        name: profile.name.clone(),
        left,
        right,
        true_matches,
    })
}

/// Label a blocking stage's candidate pairs against the pool's truth and
/// assemble an ordinary [`Dataset`] (MAGELLAN-ratio random split).
///
/// Consumes the pool so the tables move into the dataset without a
/// copy — at 10⁵ records a clone is real money. Candidates must be
/// duplicate-free (blocking tiers guarantee this); matches the blocker
/// missed simply never enter the dataset, exactly like real blocking
/// front ends.
pub fn assemble_dataset(
    pool: RecordPool,
    candidates: Vec<CandidatePair>,
    rng: &mut Rng,
) -> Result<Dataset> {
    if candidates.is_empty() {
        return Err(EmError::InvalidConfig(format!(
            "{}: blocking produced no candidate pairs",
            pool.name
        )));
    }
    let truth_keys: HashSet<(u32, u32)> = pool.true_matches.iter().map(|p| p.key()).collect();
    let truth: Vec<Label> = candidates
        .iter()
        .map(|p| Label::from_bool(truth_keys.contains(&p.key())))
        .collect();
    if !truth.iter().any(|l| l.is_match()) {
        return Err(EmError::InvalidConfig(format!(
            "{}: no true match survived blocking — recall too low to train on",
            pool.name
        )));
    }
    let split = Dataset::random_split(candidates.len(), SplitRatios::MAGELLAN, rng)?;
    Dataset::new(pool.name, pool.left, pool.right, candidates, truth, split)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::{block_candidates, BlockingConfig};

    #[test]
    fn pool_generation_is_deterministic_and_streamed() {
        let profile = PoolProfile::products("unit-pool", 2000);
        let a = generate_pool(&profile, &mut Rng::seed_from_u64(9)).unwrap();
        let b = generate_pool(&profile, &mut Rng::seed_from_u64(9)).unwrap();
        assert_eq!(a.true_matches, b.true_matches);
        assert_eq!(a.left.len(), b.left.len());
        assert_eq!(a.right.len(), b.right.len());
        // Record count lands near the target.
        let n = a.n_records();
        assert!(
            (1500..=2500).contains(&n),
            "expected ~2000 records, got {n}"
        );
        // Truth list refers to real records, sorted and unique.
        for w in a.true_matches.windows(2) {
            assert!(w[0] < w[1]);
        }
        let last = a.true_matches.last().unwrap();
        assert!((last.left.0 as usize) < a.left.len());
        assert!((last.right.0 as usize) < a.right.len());
    }

    #[test]
    fn expected_records_tracks_profile_math() {
        let p = PoolProfile::products("sized", 100_000);
        let got = p.expected_records() as f64;
        assert!((got - 100_000.0).abs() / 100_000.0 < 0.01, "{got}");
        let half = p.scaled(0.5);
        assert_eq!(
            half.n_entities,
            (p.n_entities as f64 * 0.5).round() as usize
        );
    }

    #[test]
    fn registry_profiles_validate() {
        for p in pool_profiles() {
            p.validate().unwrap();
        }
        assert!(pool_profile("pool-100k").is_ok());
        assert!(pool_profile("nope").is_err());
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let mut p = PoolProfile::products("bad", 1000);
        p.match_rate = 0.0;
        assert!(p.validate().is_err());
        let mut p = PoolProfile::products("bad", 1000);
        p.match_rate = 1.5;
        assert!(p.validate().is_err());
        let mut p = PoolProfile::products("bad", 1000);
        p.n_entities = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn assemble_labels_candidates_against_truth() {
        let profile = PoolProfile::products("assemble-pool", 1200);
        let mut rng = Rng::seed_from_u64(11);
        let pool = generate_pool(&profile, &mut rng).unwrap();
        let truth = pool.true_matches.clone();
        let candidates =
            block_candidates(&pool.left, &pool.right, BlockingConfig::default()).unwrap();
        let n_cand = candidates.len();
        let dataset = assemble_dataset(pool, candidates.clone(), &mut rng).unwrap();
        assert_eq!(dataset.len(), n_cand);
        let truth_keys: HashSet<(u32, u32)> = truth.iter().map(|p| p.key()).collect();
        for (i, pair) in candidates.iter().enumerate() {
            assert_eq!(
                dataset.ground_truth(i).is_match(),
                truth_keys.contains(&pair.key())
            );
        }
        // Token blocking on a clean synthetic pool should keep most of
        // the truth.
        let kept = candidates
            .iter()
            .filter(|p| truth_keys.contains(&p.key()))
            .count();
        assert!(
            kept as f64 / truth.len() as f64 > 0.8,
            "token blocking kept {kept}/{}",
            truth.len()
        );
    }

    #[test]
    fn assemble_rejects_empty_or_matchless_candidates() {
        let profile = PoolProfile::products("reject-pool", 600);
        let mut rng = Rng::seed_from_u64(13);
        let pool = generate_pool(&profile, &mut rng).unwrap();
        assert!(assemble_dataset(pool.clone(), Vec::new(), &mut rng).is_err());
        // A candidate list with no true match is unusable for training.
        let miss = vec![CandidatePair::new(
            pool.true_matches[0].left,
            em_core::RecordId(pool.true_matches[0].right.0 + 1),
        )];
        let only_negatives: Vec<CandidatePair> = miss
            .into_iter()
            .filter(|p| (p.right.0 as usize) < pool.right.len())
            .collect();
        if !only_negatives.is_empty() {
            assert!(assemble_dataset(pool, only_negatives, &mut rng).is_err());
        }
    }
}
