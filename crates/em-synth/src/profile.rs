//! Dataset profiles reproducing the paper's Table 3.
//!
//! | Dataset        | Size (train) | %Pos  | #Atts |
//! |----------------|--------------|-------|-------|
//! | Walmart-Amazon | 6,144        |  9.4% | 5     |
//! | Amazon-Google  | 6,874        | 10.2% | 3     |
//! | Cameras        | 4,081        | 21.0% | 1     |
//! | Shoes          | 4,505        | 20.9% | 1     |
//! | ABT-Buy        | 5,743        | 10.7% | 3     |
//! | DBLP-Scholar   | 17,223       | 18.6% | 4     |
//!
//! Magellan datasets use the 3:1:1 split; WDC datasets use a fixed
//! ~1,100-pair test set with the remainder split 4:1 (§4.1).

use serde::{Deserialize, Serialize};

use em_core::{EmError, Result};

use crate::entity::Domain;
use crate::perturb::PerturbConfig;

/// How the candidate set is split into train/valid/test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplitSpec {
    /// Proportional split (e.g. 3:1:1 for the Magellan benchmarks).
    Ratios {
        /// Train weight.
        train: f64,
        /// Validation weight.
        valid: f64,
        /// Test weight.
        test: f64,
    },
    /// Fixed-size test set, remainder split `train_frac` : rest (the WDC
    /// protocol: ~1,100 test pairs, remainder 4:1).
    FixedTest {
        /// Absolute number of test pairs.
        test_pairs: usize,
        /// Fraction of the remainder that goes to train.
        train_frac: f64,
    },
}

/// Noise intensity shorthand stored in profiles (kept symbolic so
/// profiles serialize cleanly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NoiseLevel {
    /// Curated data, few errors.
    Mild,
    /// Cross-shop product feeds.
    Medium,
    /// Web-crawled, uncleaned.
    Heavy,
}

impl NoiseLevel {
    /// The concrete perturbation probabilities.
    pub fn config(self) -> PerturbConfig {
        match self {
            NoiseLevel::Mild => PerturbConfig::mild(),
            NoiseLevel::Medium => PerturbConfig::medium(),
            NoiseLevel::Heavy => PerturbConfig::heavy(),
        }
    }
}

/// Everything needed to generate one synthetic benchmark dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name (matches the paper's naming).
    pub name: &'static str,
    /// Data domain.
    pub domain: Domain,
    /// Number of candidate pairs in the *training* split (Table 3 "Size").
    pub train_pairs: usize,
    /// Fraction of positives (Table 3 "%Pos"), applied globally via a
    /// stratified split so the train rate matches.
    pub pos_rate: f64,
    /// Number of record attributes (Table 3 "#Atts").
    pub n_attrs: usize,
    /// Split protocol.
    pub split: SplitSpec,
    /// Noise on the left table side.
    pub left_noise: NoiseLevel,
    /// Noise on the right table side (heavier for crawled sources).
    pub right_noise: NoiseLevel,
    /// Fraction of negatives that are hard (sibling entities).
    pub hard_negative_frac: f64,
    /// Title body length in tokens.
    pub title_len: usize,
}

impl DatasetProfile {
    /// Walmart-Amazon: 6,144 train pairs, 9.4 % positive, 5 attributes.
    pub fn walmart_amazon() -> Self {
        DatasetProfile {
            name: "walmart-amazon",
            domain: Domain::Product,
            train_pairs: 6144,
            pos_rate: 0.094,
            n_attrs: 5,
            split: SplitSpec::Ratios {
                train: 3.0,
                valid: 1.0,
                test: 1.0,
            },
            left_noise: NoiseLevel::Mild,
            right_noise: NoiseLevel::Medium,
            hard_negative_frac: 0.85,
            title_len: 4,
        }
    }

    /// Amazon-Google: 6,874 train pairs, 10.2 % positive, 3 attributes.
    pub fn amazon_google() -> Self {
        DatasetProfile {
            name: "amazon-google",
            domain: Domain::Product,
            train_pairs: 6874,
            pos_rate: 0.102,
            n_attrs: 3,
            split: SplitSpec::Ratios {
                train: 3.0,
                valid: 1.0,
                test: 1.0,
            },
            left_noise: NoiseLevel::Mild,
            right_noise: NoiseLevel::Medium,
            hard_negative_frac: 0.85,
            title_len: 4,
        }
    }

    /// WDC Cameras medium: 4,081 train pairs, 21.0 % positive, title only.
    pub fn wdc_cameras() -> Self {
        DatasetProfile {
            name: "wdc-cameras",
            domain: Domain::ProductTitleOnly,
            train_pairs: 4081,
            pos_rate: 0.210,
            n_attrs: 1,
            split: SplitSpec::FixedTest {
                test_pairs: 1100,
                train_frac: 0.8,
            },
            left_noise: NoiseLevel::Mild,
            right_noise: NoiseLevel::Medium,
            hard_negative_frac: 0.9,
            title_len: 6,
        }
    }

    /// WDC Shoes medium: 4,505 train pairs, 20.9 % positive, title only.
    pub fn wdc_shoes() -> Self {
        DatasetProfile {
            name: "wdc-shoes",
            domain: Domain::ProductTitleOnly,
            train_pairs: 4505,
            pos_rate: 0.209,
            n_attrs: 1,
            split: SplitSpec::FixedTest {
                test_pairs: 1100,
                train_frac: 0.8,
            },
            left_noise: NoiseLevel::Medium,
            right_noise: NoiseLevel::Heavy,
            hard_negative_frac: 0.9,
            title_len: 6,
        }
    }

    /// ABT-Buy: 5,743 train pairs, 10.7 % positive, long text.
    pub fn abt_buy() -> Self {
        DatasetProfile {
            name: "abt-buy",
            domain: Domain::ProductLongText,
            train_pairs: 5743,
            pos_rate: 0.107,
            n_attrs: 3,
            split: SplitSpec::Ratios {
                train: 3.0,
                valid: 1.0,
                test: 1.0,
            },
            left_noise: NoiseLevel::Mild,
            right_noise: NoiseLevel::Medium,
            hard_negative_frac: 0.8,
            title_len: 4,
        }
    }

    /// DBLP-Scholar: 17,223 train pairs, 18.6 % positive, bibliographic;
    /// the scholar side is crawled and noisy.
    pub fn dblp_scholar() -> Self {
        DatasetProfile {
            name: "dblp-scholar",
            domain: Domain::Bibliographic,
            train_pairs: 17223,
            pos_rate: 0.186,
            n_attrs: 4,
            split: SplitSpec::Ratios {
                train: 3.0,
                valid: 1.0,
                test: 1.0,
            },
            left_noise: NoiseLevel::Mild,
            right_noise: NoiseLevel::Medium,
            hard_negative_frac: 0.75,
            title_len: 6,
        }
    }

    /// Shrink the dataset for smoke tests and examples, preserving rates
    /// and structure. `factor` in `(0, 1]`.
    pub fn scaled(mut self, factor: f64) -> Self {
        let factor = factor.clamp(1e-3, 1.0);
        self.train_pairs = ((self.train_pairs as f64 * factor).round() as usize).max(40);
        if let SplitSpec::FixedTest { test_pairs, .. } = &mut self.split {
            *test_pairs = ((*test_pairs as f64 * factor).round() as usize).max(10);
        }
        self
    }

    /// Total candidate pairs across all splits implied by the profile.
    pub fn total_pairs(&self) -> usize {
        match self.split {
            SplitSpec::Ratios { train, valid, test } => {
                ((self.train_pairs as f64) * (train + valid + test) / train).round() as usize
            }
            SplitSpec::FixedTest {
                test_pairs,
                train_frac,
            } => (self.train_pairs as f64 / train_frac).round() as usize + test_pairs,
        }
    }

    /// Validate profile invariants.
    pub fn validate(&self) -> Result<()> {
        if self.train_pairs < 10 {
            return Err(EmError::InvalidConfig(format!(
                "{}: train_pairs {} too small",
                self.name, self.train_pairs
            )));
        }
        if !(0.0..1.0).contains(&self.pos_rate) || self.pos_rate <= 0.0 {
            return Err(EmError::InvalidConfig(format!(
                "{}: pos_rate {} outside (0,1)",
                self.name, self.pos_rate
            )));
        }
        if !(0.0..=1.0).contains(&self.hard_negative_frac) {
            return Err(EmError::InvalidConfig(format!(
                "{}: hard_negative_frac {} outside [0,1]",
                self.name, self.hard_negative_frac
            )));
        }
        if self.n_attrs == 0 || self.n_attrs != self.domain.attrs(self.n_attrs).len() {
            return Err(EmError::InvalidConfig(format!(
                "{}: n_attrs {} incompatible with domain {:?}",
                self.name, self.n_attrs, self.domain
            )));
        }
        match self.split {
            SplitSpec::Ratios { train, valid, test } => {
                if train <= 0.0 || valid < 0.0 || test < 0.0 {
                    return Err(EmError::InvalidConfig(format!(
                        "{}: bad split ratios",
                        self.name
                    )));
                }
            }
            SplitSpec::FixedTest {
                test_pairs,
                train_frac,
            } => {
                if test_pairs == 0 || !(0.0..1.0).contains(&train_frac) || train_frac <= 0.0 {
                    return Err(EmError::InvalidConfig(format!(
                        "{}: bad fixed-test split",
                        self.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// All six benchmark profiles in the paper's Table 3 order.
pub fn all_profiles() -> Vec<DatasetProfile> {
    vec![
        DatasetProfile::walmart_amazon(),
        DatasetProfile::amazon_google(),
        DatasetProfile::wdc_cameras(),
        DatasetProfile::wdc_shoes(),
        DatasetProfile::abt_buy(),
        DatasetProfile::dblp_scholar(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_match_table3() {
        let expected: &[(&str, usize, f64, usize)] = &[
            ("walmart-amazon", 6144, 0.094, 5),
            ("amazon-google", 6874, 0.102, 3),
            ("wdc-cameras", 4081, 0.210, 1),
            ("wdc-shoes", 4505, 0.209, 1),
            ("abt-buy", 5743, 0.107, 3),
            ("dblp-scholar", 17223, 0.186, 4),
        ];
        let profiles = all_profiles();
        assert_eq!(profiles.len(), expected.len());
        for (p, &(name, size, pos, atts)) in profiles.iter().zip(expected) {
            assert_eq!(p.name, name);
            assert_eq!(p.train_pairs, size, "{name}");
            assert!((p.pos_rate - pos).abs() < 1e-9, "{name}");
            assert_eq!(p.n_attrs, atts, "{name}");
            p.validate().unwrap();
        }
    }

    #[test]
    fn total_pairs_consistent_with_split() {
        // Magellan 3:1:1 → total = train * 5/3.
        let wa = DatasetProfile::walmart_amazon();
        assert_eq!(wa.total_pairs(), 10240);
        // WDC: train/0.8 + fixed test.
        let cam = DatasetProfile::wdc_cameras();
        assert_eq!(cam.total_pairs(), 4081 * 5 / 4 + 1100);
    }

    #[test]
    fn scaled_preserves_rates() {
        let p = DatasetProfile::dblp_scholar().scaled(0.01);
        assert_eq!(p.pos_rate, DatasetProfile::dblp_scholar().pos_rate);
        assert!(p.train_pairs >= 40);
        assert!(p.train_pairs < 300);
        p.validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_profiles() {
        let mut p = DatasetProfile::walmart_amazon();
        p.pos_rate = 0.0;
        assert!(p.validate().is_err());
        let mut p = DatasetProfile::walmart_amazon();
        p.hard_negative_frac = 1.5;
        assert!(p.validate().is_err());
        let mut p = DatasetProfile::walmart_amazon();
        p.train_pairs = 3;
        assert!(p.validate().is_err());
        let mut p = DatasetProfile::wdc_cameras();
        p.split = SplitSpec::FixedTest {
            test_pairs: 0,
            train_frac: 0.8,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn noise_levels_map_to_configs() {
        assert_eq!(NoiseLevel::Mild.config(), PerturbConfig::mild());
        assert_eq!(NoiseLevel::Heavy.config(), PerturbConfig::heavy());
        assert!(NoiseLevel::Heavy.config().typo > NoiseLevel::Mild.config().typo);
    }
}
