//! The non-active-learning extremes of the label-budget spectrum (§4.3):
//! ZeroER (zero labels) and Full D (the entire training split).

use em_cluster::{Gmm, GmmConfig};
use em_core::{BinaryConfusion, Dataset, EmError, Label, Metrics, Result};
use em_matcher::{train_matcher, Featurizer, MatcherConfig};
use em_vector::Embeddings;

/// ZeroER (Wu et al. 2020), reimplemented on our substrate: fit a
/// two-component diagonal Gaussian mixture over the *similarity feature
/// vectors* of the training split — "feature vectors of matching pairs
/// are distributed in a different way than those of non-matching pairs" —
/// and label test pairs by posterior component membership.
///
/// The match component is identified as the one whose mean whole-record
/// token-Jaccard feature is higher (matches are more similar by
/// construction of the feature). Returns test metrics.
pub fn zeroer_f1(dataset: &Dataset, featurizer: &Featurizer, seed: u64) -> Result<Metrics> {
    let sims = featurizer.similarity_all(dataset)?;
    // Fit on the training split only, mirroring how the other methods see
    // data (the paper evaluates everything on the same held-out test set).
    let train_sims = sims_subset(&sims, &dataset.split().train)?;
    let gmm = Gmm::fit(
        &train_sims,
        GmmConfig {
            n_components: 2,
            seed,
            ..Default::default()
        },
    )?;

    // Whole-record token jaccard lives at sim_dim − 4 (see the featurizer
    // layout); the component with the higher mean there is "match".
    let jaccard_feature = featurizer.sim_dim() - 4;
    let match_component = if gmm.means[0][jaccard_feature] >= gmm.means[1][jaccard_feature] {
        0
    } else {
        1
    };

    let test = &dataset.split().test;
    let mut predicted = Vec::with_capacity(test.len());
    for &idx in test {
        let resp = gmm.responsibilities(sims.row(idx))?;
        predicted.push(Label::from_bool(resp[match_component] >= 0.5));
    }
    let truth = dataset.ground_truth_of(test);
    Ok(BinaryConfusion::from_labels(&predicted, &truth)?.metrics())
}

/// Full D: train the matcher on the *complete* training split, "assuming
/// no lack of resources", and evaluate on the test split.
pub fn full_d_f1(
    dataset: &Dataset,
    features: &Embeddings,
    matcher_config: &MatcherConfig,
) -> Result<Metrics> {
    let train = &dataset.split().train;
    let train_labels = dataset.ground_truth_of(train);
    let valid = &dataset.split().valid;
    let valid_labels = dataset.ground_truth_of(valid);
    let matcher = train_matcher(
        features,
        train,
        &train_labels,
        valid,
        &valid_labels,
        matcher_config,
    )?;
    let test = &dataset.split().test;
    let test_labels = dataset.ground_truth_of(test);
    matcher.evaluate(features, test, &test_labels)
}

/// Gather a subset of similarity rows.
fn sims_subset(sims: &Embeddings, idxs: &[usize]) -> Result<Embeddings> {
    if idxs.is_empty() {
        return Err(EmError::EmptyInput("similarity subset".into()));
    }
    sims.gather(idxs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::Rng;
    use em_matcher::FeatureConfig;
    use em_synth::{generate, DatasetProfile};

    fn task() -> (Dataset, Featurizer) {
        let p = DatasetProfile::walmart_amazon().scaled(0.05);
        let d = generate(&p, &mut Rng::seed_from_u64(9)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        (d, f)
    }

    #[test]
    fn zeroer_beats_trivial_baselines() {
        let (d, f) = task();
        let m = zeroer_f1(&d, &f, 1).unwrap();
        // ZeroER should find real structure: clearly better than labeling
        // everything as match (F1 ≈ 2·pos/(1+pos) ≈ 0.17 here).
        assert!(m.f1 > 0.3, "ZeroER F1 {}", m.f1);
        assert!(m.f1 <= 1.0);
    }

    #[test]
    fn full_d_is_competitive_with_zeroer_at_small_scale() {
        // At the paper's full scale Full D clearly beats ZeroER; on this
        // 5 %-scale task ZeroER's engineered similarity battery can tie or
        // edge ahead (its features practically encode the generator), so
        // the invariant checked here is "within a small margin", with the
        // full-scale ordering covered by the bench harness (table4_f1).
        let (d, f) = task();
        let feats = f.featurize_all(&d).unwrap();
        let zero = zeroer_f1(&d, &f, 1).unwrap();
        let full = full_d_f1(
            &d,
            &feats,
            &MatcherConfig {
                epochs: 15,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            full.f1 > zero.f1 - 0.08,
            "Full D {} far below ZeroER {}",
            full.f1,
            zero.f1
        );
        assert!(full.f1 > 0.5, "Full D too weak: {}", full.f1);
    }

    #[test]
    fn zeroer_is_deterministic() {
        let (d, f) = task();
        let a = zeroer_f1(&d, &f, 7).unwrap();
        let b = zeroer_f1(&d, &f, 7).unwrap();
        assert_eq!(a, b);
    }
}
