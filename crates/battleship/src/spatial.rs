//! The cluster → graph → connected-components pipeline (§3.3).
//!
//! [`SpatialIndex::build`] turns a set of pair representations into the
//! paper's spatial structure: constrained K-Means clusters (k chosen by
//! Kneedle with silhouette fallback), a pair graph with q-NN plus
//! top-ratio edges, and its connected components. The battleship
//! strategy builds three of these per iteration — over the
//! match-predicted pool (`G⁺`), the non-match-predicted pool (`G⁻`) and
//! the full heterogeneous set (`G`) — and the weak-supervision component
//! reuses them.

use em_cluster::{
    constrained_kmeans, constrained_kmeans_reference, select_k, select_k_reference,
    ConstrainedConfig, KSelectConfig,
};
use em_core::{EmError, Result, Rng};
use em_graph::{
    build_graph, build_graph_blocked, connected_components, BlockedConfig, DotSim, EdgeConfig,
    NodeKind, PairGraph,
};
use em_vector::{AnnPolicy, Embeddings};

/// Parameters of the spatial pipeline (a projection of
/// [`crate::BattleshipParams`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialParams {
    /// q-NN edges per node.
    pub q: usize,
    /// Extra-edge ratio.
    pub extra_ratio: f64,
    /// Min cluster size fraction.
    pub cluster_min_frac: f64,
    /// Max cluster size fraction.
    pub cluster_max_frac: f64,
    /// Sample cap for the k-selection sweep.
    pub kselect_sample: usize,
    /// Exact ↔ ANN routing for every stage with an HNSW variant: edge
    /// creation ([`em_graph::build_graph_blocked`]), the k-selection
    /// silhouette fallback and the constrained assignment step all
    /// consult this one policy.
    pub ann: AnnPolicy,
    /// Seed for clustering and sweep sampling.
    pub seed: u64,
}

impl From<(&crate::config::BattleshipParams, u64)> for SpatialParams {
    fn from((p, seed): (&crate::config::BattleshipParams, u64)) -> Self {
        SpatialParams {
            q: p.q,
            extra_ratio: p.extra_ratio,
            cluster_min_frac: p.cluster_min_frac,
            cluster_max_frac: p.cluster_max_frac,
            kselect_sample: p.kselect_sample,
            ann: p.ann_policy(),
            seed,
        }
    }
}

/// The spatial structure over one node set.
pub struct SpatialIndex {
    /// The pair graph (node `i` = row `i` of the input embeddings).
    pub graph: PairGraph,
    /// Connected components (sorted node lists).
    pub components: Vec<Vec<usize>>,
    /// Cluster assignment per node.
    pub clusters: Vec<usize>,
    /// The `k` used for clustering (1 when the node set was too small to
    /// cluster).
    pub k: usize,
}

impl SpatialIndex {
    /// Build the spatial structure over `reprs` (which this function
    /// L2-normalizes into a working copy for cosine-as-dot similarity).
    ///
    /// `kinds[i]`/`confidences[i]` describe node `i` per §3.3.3. Callers
    /// that already hold unit-norm rows — the battleship strategy
    /// normalizes the pool representations **once per iteration** and
    /// builds all three indexes (`G⁺`, `G⁻`, `G`) from views of that
    /// matrix — should use [`SpatialIndex::build_normalized`] and skip
    /// this copy.
    pub fn build(
        reprs: &Embeddings,
        kinds: &[NodeKind],
        confidences: &[f32],
        params: &SpatialParams,
    ) -> Result<Self> {
        let mut normalized = reprs.clone();
        normalized.normalize_rows();
        Self::build_normalized(&normalized, kinds, confidences, params)
    }

    /// Build the spatial structure over rows the caller has already
    /// L2-normalized. No copy of the embedding matrix is made.
    ///
    /// This is the blocked/parallel pipeline: the k sweep runs its
    /// candidate K-Means in parallel, the constrained assignment reads
    /// one blocked distance matrix per Lloyd iteration, and edge
    /// creation computes each cluster's Gram matrix once
    /// ([`em_graph::build_graph_blocked`]), processing clusters in
    /// parallel. All reductions are fixed-order, so the result is
    /// identical for any thread count (golden-tested against
    /// `rayon::serial_scope`).
    pub fn build_normalized(
        normalized: &Embeddings,
        kinds: &[NodeKind],
        confidences: &[f32],
        params: &SpatialParams,
    ) -> Result<Self> {
        let n = normalized.len();
        Self::validate(n, kinds, confidences)?;

        // --- Cluster. -----------------------------------------------------
        let (clusters, k) = match Self::cluster_plan(n, params)? {
            None => (vec![0usize; n], 1),
            Some((k_min, k_max)) => {
                // Sweep k on a subsample (curve shape is stable), then
                // run the constrained assignment on the full node set.
                // The sweep borrows either the gathered sample or the
                // input itself — the seed implementation cloned the full
                // matrix in the small-n branch.
                let gathered;
                let sweep_data: &Embeddings = if n > params.kselect_sample {
                    let mut rng = Rng::seed_from_u64(params.seed ^ 0x5A5A);
                    let sample = rng.sample_indices(n, params.kselect_sample);
                    gathered = normalized.gather(&sample)?;
                    &gathered
                } else {
                    normalized
                };
                let selection = select_k(sweep_data, Self::kselect_config(k_min, k_max, params))?;
                let config = Self::constrained_config(n, selection.k, params)?;
                let result = constrained_kmeans(normalized, config)?;
                (result.assignment, selection.k)
            }
        };

        // --- Graph + components. -------------------------------------------
        let members = Self::members_of(&clusters, k);
        let graph = build_graph_blocked(
            normalized,
            kinds,
            confidences,
            &members,
            &BlockedConfig::from_policy(
                EdgeConfig {
                    q: params.q,
                    extra_ratio: params.extra_ratio,
                },
                &params.ann,
                params.seed ^ 0xA22_0E55,
            ),
        )?;
        let components = connected_components(&graph);

        Ok(SpatialIndex {
            graph,
            components,
            clusters,
            k,
        })
    }

    /// The seed implementation, verbatim: full-matrix clone + per-call
    /// normalization, serial scalar k sweep, scalar constrained
    /// K-Means, and O(m²) per-pair edge scoring through
    /// [`em_graph::build_graph`] over [`DotSim`].
    ///
    /// Kept as the measured baseline for the `em-bench` spatial suite
    /// (the ≥4× gate compares [`SpatialIndex::build_normalized`] against
    /// this in the same run) and for quality cross-checks. Not called by
    /// the production pipeline.
    pub fn build_reference(
        reprs: &Embeddings,
        kinds: &[NodeKind],
        confidences: &[f32],
        params: &SpatialParams,
    ) -> Result<Self> {
        rayon::serial_scope(|| {
            let n = reprs.len();
            Self::validate(n, kinds, confidences)?;

            let mut normalized = reprs.clone();
            normalized.normalize_rows();

            let (clusters, k) = match Self::cluster_plan(n, params)? {
                None => (vec![0usize; n], 1),
                Some((k_min, k_max)) => {
                    let sweep_data = if n > params.kselect_sample {
                        let mut rng = Rng::seed_from_u64(params.seed ^ 0x5A5A);
                        let sample = rng.sample_indices(n, params.kselect_sample);
                        normalized.gather(&sample)?
                    } else {
                        normalized.clone()
                    };
                    let selection = select_k_reference(
                        &sweep_data,
                        Self::kselect_config(k_min, k_max, params),
                    )?;
                    let config = Self::constrained_config(n, selection.k, params)?;
                    let result = constrained_kmeans_reference(&normalized, config)?;
                    (result.assignment, selection.k)
                }
            };

            let members = Self::members_of(&clusters, k);
            let sim = DotSim::new(&normalized);
            let graph = build_graph(
                &sim,
                kinds,
                confidences,
                &members,
                EdgeConfig {
                    q: params.q,
                    extra_ratio: params.extra_ratio,
                },
            )?;
            let components = connected_components(&graph);

            Ok(SpatialIndex {
                graph,
                components,
                clusters,
                k,
            })
        })
    }

    fn validate(n: usize, kinds: &[NodeKind], confidences: &[f32]) -> Result<()> {
        if n == 0 {
            return Err(EmError::EmptyInput("spatial index nodes".into()));
        }
        if kinds.len() != n || confidences.len() != n {
            return Err(EmError::DimensionMismatch {
                context: "spatial index kinds/confidences".into(),
                expected: n,
                actual: kinds.len().min(confidences.len()),
            });
        }
        Ok(())
    }

    /// Feasible k range from the size-fraction constraints, or `None`
    /// when the node set is too small to cluster meaningfully:
    /// k·min ≤ n ≤ k·max ⇒ k ∈ [⌈1/max_frac⌉, ⌊1/min_frac⌋]. With the
    /// paper's 0.05–0.15 fractions that is k ∈ [7, 20].
    fn cluster_plan(n: usize, params: &SpatialParams) -> Result<Option<(usize, usize)>> {
        let k_lo = (1.0 / params.cluster_max_frac).ceil() as usize;
        let k_hi = (1.0 / params.cluster_min_frac).floor() as usize;
        if n < k_lo.max(4) * 2 || k_lo + 2 > k_hi.min(n) {
            Ok(None)
        } else {
            Ok(Some((k_lo.max(2), k_hi.min(n))))
        }
    }

    fn kselect_config(k_min: usize, k_max: usize, params: &SpatialParams) -> KSelectConfig {
        KSelectConfig {
            k_min,
            k_max,
            kmeans_iters: 6,
            silhouette_sample: 256,
            seed: params.seed,
            ann: params.ann,
            ..Default::default()
        }
    }

    fn constrained_config(n: usize, k: usize, params: &SpatialParams) -> Result<ConstrainedConfig> {
        let mut config = ConstrainedConfig::from_fractions(
            n,
            k,
            params.cluster_min_frac,
            params.cluster_max_frac,
            params.seed,
        )?;
        // Fraction-derived bounds can be infeasible after flooring on
        // small n; relax toward feasibility rather than failing.
        if config.min_size * k > n {
            config.min_size = n / k;
        }
        if config.max_size * k < n {
            config.max_size = n.div_ceil(k);
        }
        config.ann = params.ann;
        Ok(config)
    }

    fn members_of(clusters: &[usize], k: usize) -> Vec<Vec<usize>> {
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &c) in clusters.iter().enumerate() {
            members[c].push(i);
        }
        members
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` iff the index has no nodes (unreachable via `build`).
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(seed: u64) -> SpatialParams {
        SpatialParams {
            q: 3,
            extra_ratio: 0.03,
            cluster_min_frac: 0.05,
            cluster_max_frac: 0.15,
            kselect_sample: 400,
            ann: AnnPolicy::with_threshold(4096),
            seed,
        }
    }

    fn blobs(n_per: usize, n_blobs: usize, seed: u64) -> Embeddings {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for b in 0..n_blobs {
            let cx = (b % 4) as f32 * 8.0;
            let cy = (b / 4) as f32 * 8.0 + 1.0;
            for _ in 0..n_per {
                rows.push(vec![
                    cx + rng.normal() as f32 * 0.4,
                    cy + rng.normal() as f32 * 0.4,
                    1.0,
                ]);
            }
        }
        Embeddings::from_rows(&rows).unwrap()
    }

    #[test]
    fn builds_on_clustered_data() {
        let data = blobs(30, 8, 1);
        let n = data.len();
        let kinds = vec![NodeKind::PredictedMatch; n];
        let conf = vec![0.9f32; n];
        let idx = SpatialIndex::build(&data, &kinds, &conf, &params(7)).unwrap();
        assert_eq!(idx.len(), n);
        assert!(idx.k >= 7 && idx.k <= 20, "k = {}", idx.k);
        // Every node has at least q neighbours or its whole cluster.
        for v in 0..n {
            assert!(idx.graph.degree(v) >= 1, "isolated node {v}");
        }
        // Components partition nodes.
        let total: usize = idx.components.iter().map(Vec::len).sum();
        assert_eq!(total, n);
        // Components never bridge clusters.
        for comp in &idx.components {
            let c0 = idx.clusters[comp[0]];
            assert!(comp.iter().all(|&v| idx.clusters[v] == c0));
        }
    }

    #[test]
    fn cluster_sizes_respect_fractions() {
        let data = blobs(25, 8, 2);
        let n = data.len();
        let kinds = vec![NodeKind::PredictedNonMatch; n];
        let conf = vec![0.8f32; n];
        let idx = SpatialIndex::build(&data, &kinds, &conf, &params(3)).unwrap();
        if idx.k > 1 {
            let mut sizes = vec![0usize; idx.k];
            for &c in &idx.clusters {
                sizes[c] += 1;
            }
            let min = (n as f64 * 0.05).floor() as usize;
            let max = (n as f64 * 0.15).ceil() as usize + 1;
            for (c, &s) in sizes.iter().enumerate() {
                assert!(
                    s >= min.min(n / idx.k) && s <= max.max(n.div_ceil(idx.k)),
                    "cluster {c} size {s} outside [{min},{max}]"
                );
            }
        }
    }

    #[test]
    fn tiny_node_sets_fall_back_to_single_cluster() {
        let data = blobs(3, 2, 3);
        let kinds = vec![NodeKind::PredictedMatch; 6];
        let conf = vec![0.9f32; 6];
        let idx = SpatialIndex::build(&data, &kinds, &conf, &params(1)).unwrap();
        assert_eq!(idx.k, 1);
        assert!(idx.components.len() <= 6);
    }

    #[test]
    fn heterogeneous_nodes_respect_labeled_exclusion() {
        let data = blobs(10, 2, 4);
        let n = data.len();
        let mut kinds = vec![NodeKind::PredictedMatch; n];
        let mut conf = vec![0.9f32; n];
        // Make half the nodes labeled.
        for i in 0..n / 2 {
            kinds[i] = NodeKind::LabeledMatch;
            conf[i] = 1.0;
        }
        let idx = SpatialIndex::build(&data, &kinds, &conf, &params(5)).unwrap();
        for (u, v, _) in idx.graph.edges() {
            assert!(
                !(kinds[u].is_labeled() && kinds[v].is_labeled()),
                "labeled–labeled edge ({u},{v})"
            );
        }
    }

    #[test]
    fn validates_inputs() {
        let data = blobs(5, 1, 6);
        let kinds = vec![NodeKind::PredictedMatch; 2];
        let conf = vec![0.9f32; 5];
        assert!(SpatialIndex::build(&data, &kinds, &conf, &params(1)).is_err());
        let empty = Embeddings::new(3).unwrap();
        assert!(SpatialIndex::build(&empty, &[], &[], &params(1)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(20, 6, 8);
        let n = data.len();
        let kinds = vec![NodeKind::PredictedMatch; n];
        let conf = vec![0.7f32; n];
        let a = SpatialIndex::build(&data, &kinds, &conf, &params(11)).unwrap();
        let b = SpatialIndex::build(&data, &kinds, &conf, &params(11)).unwrap();
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.components, b.components);
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
    }

    fn assert_same_index(a: &SpatialIndex, b: &SpatialIndex) {
        assert_eq!(a.k, b.k);
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.components, b.components);
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
        for v in 0..a.len() {
            let na = a.graph.neighbors(v);
            let nb = b.graph.neighbors(v);
            assert_eq!(na.len(), nb.len(), "degree of {v}");
            for (x, y) in na.iter().zip(nb) {
                assert_eq!(x.0, y.0, "neighbour order of {v}");
                assert_eq!(x.1.to_bits(), y.1.to_bits(), "weight bits of {v}");
            }
        }
    }

    /// Golden test: the parallel pipeline is bit-identical to its own
    /// serial execution — clusters, components, edges and weights.
    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let data = blobs(25, 8, 21);
        let n = data.len();
        let kinds = vec![NodeKind::PredictedMatch; n];
        let conf = vec![0.85f32; n];
        let par = SpatialIndex::build(&data, &kinds, &conf, &params(13)).unwrap();
        let ser =
            rayon::serial_scope(|| SpatialIndex::build(&data, &kinds, &conf, &params(13)).unwrap());
        assert_same_index(&par, &ser);
    }

    /// `build` (normalizing copy) and `build_normalized` (caller-owned
    /// normalization) must agree exactly — upstream normalization is a
    /// pure refactor, not a behaviour change.
    #[test]
    fn build_equals_build_normalized_on_prenormalized_rows() {
        let data = blobs(20, 6, 31);
        let n = data.len();
        let kinds = vec![NodeKind::PredictedNonMatch; n];
        let conf = vec![0.8f32; n];
        let via_build = SpatialIndex::build(&data, &kinds, &conf, &params(5)).unwrap();
        let mut normalized = data.clone();
        normalized.normalize_rows();
        let via_norm =
            SpatialIndex::build_normalized(&normalized, &kinds, &conf, &params(5)).unwrap();
        assert_same_index(&via_build, &via_norm);
    }

    /// The scalar reference pipeline still stands (the bench baseline):
    /// structurally valid and deterministic, clustering the same data
    /// into a comparable structure.
    #[test]
    fn reference_pipeline_is_valid_and_deterministic() {
        let data = blobs(25, 8, 17);
        let n = data.len();
        let kinds = vec![NodeKind::PredictedMatch; n];
        let conf = vec![0.9f32; n];
        let a = SpatialIndex::build_reference(&data, &kinds, &conf, &params(3)).unwrap();
        let b = SpatialIndex::build_reference(&data, &kinds, &conf, &params(3)).unwrap();
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
        assert!(a.k >= 7 && a.k <= 20, "k = {}", a.k);
        let total: usize = a.components.iter().map(Vec::len).sum();
        assert_eq!(total, n);
        // The optimized pipeline lands a similar edge density.
        let fast = SpatialIndex::build(&data, &kinds, &conf, &params(3)).unwrap();
        let (lo, hi) = (a.graph.n_edges() / 2, a.graph.n_edges() * 2);
        assert!(
            (lo..=hi).contains(&fast.graph.n_edges()),
            "fast {} vs reference {}",
            fast.graph.n_edges(),
            a.graph.n_edges()
        );
    }
}
