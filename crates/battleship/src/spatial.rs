//! The cluster → graph → connected-components pipeline (§3.3).
//!
//! [`SpatialIndex::build`] turns a set of pair representations into the
//! paper's spatial structure: constrained K-Means clusters (k chosen by
//! Kneedle with silhouette fallback), a pair graph with q-NN plus
//! top-ratio edges, and its connected components. The battleship
//! strategy builds three of these per iteration — over the
//! match-predicted pool (`G⁺`), the non-match-predicted pool (`G⁻`) and
//! the full heterogeneous set (`G`) — and the weak-supervision component
//! reuses them.

use em_core::{EmError, Result, Rng};
use em_cluster::{constrained_kmeans, select_k, ConstrainedConfig, KSelectConfig};
use em_graph::{build_graph, connected_components, DotSim, EdgeConfig, NodeKind, PairGraph};
use em_vector::Embeddings;

/// Parameters of the spatial pipeline (a projection of
/// [`crate::BattleshipParams`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialParams {
    /// q-NN edges per node.
    pub q: usize,
    /// Extra-edge ratio.
    pub extra_ratio: f64,
    /// Min cluster size fraction.
    pub cluster_min_frac: f64,
    /// Max cluster size fraction.
    pub cluster_max_frac: f64,
    /// Sample cap for the k-selection sweep.
    pub kselect_sample: usize,
    /// Seed for clustering and sweep sampling.
    pub seed: u64,
}

impl From<(&crate::config::BattleshipParams, u64)> for SpatialParams {
    fn from((p, seed): (&crate::config::BattleshipParams, u64)) -> Self {
        SpatialParams {
            q: p.q,
            extra_ratio: p.extra_ratio,
            cluster_min_frac: p.cluster_min_frac,
            cluster_max_frac: p.cluster_max_frac,
            kselect_sample: p.kselect_sample,
            seed,
        }
    }
}

/// The spatial structure over one node set.
pub struct SpatialIndex {
    /// The pair graph (node `i` = row `i` of the input embeddings).
    pub graph: PairGraph,
    /// Connected components (sorted node lists).
    pub components: Vec<Vec<usize>>,
    /// Cluster assignment per node.
    pub clusters: Vec<usize>,
    /// The `k` used for clustering (1 when the node set was too small to
    /// cluster).
    pub k: usize,
}

impl SpatialIndex {
    /// Build the spatial structure over `reprs` (which this function
    /// L2-normalizes internally for cosine-as-dot similarity).
    ///
    /// `kinds[i]`/`confidences[i]` describe node `i` per §3.3.3.
    pub fn build(
        reprs: &Embeddings,
        kinds: &[NodeKind],
        confidences: &[f32],
        params: &SpatialParams,
    ) -> Result<Self> {
        let n = reprs.len();
        if n == 0 {
            return Err(EmError::EmptyInput("spatial index nodes".into()));
        }
        if kinds.len() != n || confidences.len() != n {
            return Err(EmError::DimensionMismatch {
                context: "spatial index kinds/confidences".into(),
                expected: n,
                actual: kinds.len().min(confidences.len()),
            });
        }

        let mut normalized = reprs.clone();
        normalized.normalize_rows();

        // --- Cluster. -----------------------------------------------------
        // Feasible k range follows from the size-fraction constraints:
        // k·min ≤ n ≤ k·max ⇒ k ∈ [⌈1/max_frac⌉, ⌊1/min_frac⌋]. With the
        // paper's 0.05–0.15 fractions that is k ∈ [7, 20].
        let k_lo = (1.0 / params.cluster_max_frac).ceil() as usize;
        let k_hi = (1.0 / params.cluster_min_frac).floor() as usize;
        let (clusters, k) = if n < k_lo.max(4) * 2 || k_lo + 2 > k_hi.min(n) {
            // Too few nodes to cluster meaningfully: single cluster.
            (vec![0usize; n], 1)
        } else {
            let k_hi = k_hi.min(n);
            // Sweep k on a subsample (curve shape is stable), then run
            // the constrained assignment on the full node set.
            let sweep_data = if n > params.kselect_sample {
                let mut rng = Rng::seed_from_u64(params.seed ^ 0x5A5A);
                let sample = rng.sample_indices(n, params.kselect_sample);
                normalized.gather(&sample)?
            } else {
                normalized.clone()
            };
            let selection = select_k(
                &sweep_data,
                KSelectConfig {
                    k_min: k_lo.max(2),
                    k_max: k_hi,
                    kmeans_iters: 6,
                    silhouette_sample: 256,
                    seed: params.seed,
                    ..Default::default()
                },
            )?;
            let k = selection.k;
            let mut config = ConstrainedConfig::from_fractions(
                n,
                k,
                params.cluster_min_frac,
                params.cluster_max_frac,
                params.seed,
            )?;
            // Fraction-derived bounds can be infeasible after flooring on
            // small n; relax toward feasibility rather than failing.
            if config.min_size * k > n {
                config.min_size = n / k;
            }
            if config.max_size * k < n {
                config.max_size = n.div_ceil(k);
            }
            let result = constrained_kmeans(&normalized, config)?;
            (result.assignment, k)
        };

        // --- Graph + components. -------------------------------------------
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &c) in clusters.iter().enumerate() {
            members[c].push(i);
        }
        let sim = DotSim::new(&normalized);
        let graph = build_graph(
            &sim,
            kinds,
            confidences,
            &members,
            EdgeConfig {
                q: params.q,
                extra_ratio: params.extra_ratio,
            },
        )?;
        let components = connected_components(&graph);

        Ok(SpatialIndex {
            graph,
            components,
            clusters,
            k,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` iff the index has no nodes (unreachable via `build`).
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(seed: u64) -> SpatialParams {
        SpatialParams {
            q: 3,
            extra_ratio: 0.03,
            cluster_min_frac: 0.05,
            cluster_max_frac: 0.15,
            kselect_sample: 400,
            seed,
        }
    }

    fn blobs(n_per: usize, n_blobs: usize, seed: u64) -> Embeddings {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for b in 0..n_blobs {
            let cx = (b % 4) as f32 * 8.0;
            let cy = (b / 4) as f32 * 8.0 + 1.0;
            for _ in 0..n_per {
                rows.push(vec![
                    cx + rng.normal() as f32 * 0.4,
                    cy + rng.normal() as f32 * 0.4,
                    1.0,
                ]);
            }
        }
        Embeddings::from_rows(&rows).unwrap()
    }

    #[test]
    fn builds_on_clustered_data() {
        let data = blobs(30, 8, 1);
        let n = data.len();
        let kinds = vec![NodeKind::PredictedMatch; n];
        let conf = vec![0.9f32; n];
        let idx = SpatialIndex::build(&data, &kinds, &conf, &params(7)).unwrap();
        assert_eq!(idx.len(), n);
        assert!(idx.k >= 7 && idx.k <= 20, "k = {}", idx.k);
        // Every node has at least q neighbours or its whole cluster.
        for v in 0..n {
            assert!(idx.graph.degree(v) >= 1, "isolated node {v}");
        }
        // Components partition nodes.
        let total: usize = idx.components.iter().map(Vec::len).sum();
        assert_eq!(total, n);
        // Components never bridge clusters.
        for comp in &idx.components {
            let c0 = idx.clusters[comp[0]];
            assert!(comp.iter().all(|&v| idx.clusters[v] == c0));
        }
    }

    #[test]
    fn cluster_sizes_respect_fractions() {
        let data = blobs(25, 8, 2);
        let n = data.len();
        let kinds = vec![NodeKind::PredictedNonMatch; n];
        let conf = vec![0.8f32; n];
        let idx = SpatialIndex::build(&data, &kinds, &conf, &params(3)).unwrap();
        if idx.k > 1 {
            let mut sizes = vec![0usize; idx.k];
            for &c in &idx.clusters {
                sizes[c] += 1;
            }
            let min = (n as f64 * 0.05).floor() as usize;
            let max = (n as f64 * 0.15).ceil() as usize + 1;
            for (c, &s) in sizes.iter().enumerate() {
                assert!(
                    s >= min.min(n / idx.k) && s <= max.max(n.div_ceil(idx.k)),
                    "cluster {c} size {s} outside [{min},{max}]"
                );
            }
        }
    }

    #[test]
    fn tiny_node_sets_fall_back_to_single_cluster() {
        let data = blobs(3, 2, 3);
        let kinds = vec![NodeKind::PredictedMatch; 6];
        let conf = vec![0.9f32; 6];
        let idx = SpatialIndex::build(&data, &kinds, &conf, &params(1)).unwrap();
        assert_eq!(idx.k, 1);
        assert!(idx.components.len() <= 6);
    }

    #[test]
    fn heterogeneous_nodes_respect_labeled_exclusion() {
        let data = blobs(10, 2, 4);
        let n = data.len();
        let mut kinds = vec![NodeKind::PredictedMatch; n];
        let mut conf = vec![0.9f32; n];
        // Make half the nodes labeled.
        for i in 0..n / 2 {
            kinds[i] = NodeKind::LabeledMatch;
            conf[i] = 1.0;
        }
        let idx = SpatialIndex::build(&data, &kinds, &conf, &params(5)).unwrap();
        for (u, v, _) in idx.graph.edges() {
            assert!(
                !(kinds[u].is_labeled() && kinds[v].is_labeled()),
                "labeled–labeled edge ({u},{v})"
            );
        }
    }

    #[test]
    fn validates_inputs() {
        let data = blobs(5, 1, 6);
        let kinds = vec![NodeKind::PredictedMatch; 2];
        let conf = vec![0.9f32; 5];
        assert!(SpatialIndex::build(&data, &kinds, &conf, &params(1)).is_err());
        let empty = Embeddings::new(3).unwrap();
        assert!(SpatialIndex::build(&empty, &[], &[], &params(1)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(20, 6, 8);
        let n = data.len();
        let kinds = vec![NodeKind::PredictedMatch; n];
        let conf = vec![0.7f32; n];
        let a = SpatialIndex::build(&data, &kinds, &conf, &params(11)).unwrap();
        let b = SpatialIndex::build(&data, &kinds, &conf, &params(11)).unwrap();
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.components, b.components);
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
    }
}
