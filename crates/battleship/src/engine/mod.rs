//! The parallel experiment engine: grid orchestration of
//! dataset × strategy × seed runs.
//!
//! The paper's results are grids, not runs — Table 4 / Figure 5 average
//! every strategy over several seeds on seven datasets. This module
//! turns the single-run protocol driver into that outer loop:
//!
//! * a [`Scenario`] names a reproducible dataset recipe (synthetic
//!   profile or CSV directory),
//! * an [`ArtifactCache`] materializes each scenario once — dataset,
//!   featurizer, pair features — and shares the immutable
//!   [`DatasetArtifacts`] across runs via `Arc`,
//! * [`ExperimentGrid`] expands scenarios × strategies × derived seeds
//!   into independent [`RunSpec`]s (plus optional ZeroER / Full D
//!   baseline cells) and fans them out over rayon under a measured
//!   cost model — [`schedule`] estimates each cell's cost from the
//!   committed probe table and packs cells onto workers with LPT
//!   (longest-processing-time-first) list scheduling — each worker
//!   building a fresh `Send` strategy from its [`StrategySpec`] and
//!   running the protocol loop in [`worker`],
//! * results are reassembled in the grid's fixed expansion order into a
//!   [`GridReport`] whose non-timing content is **bit-identical for any
//!   worker-thread count** (each run is a pure function of its spec, and
//!   the inner kernels are themselves thread-count-invariant — the
//!   golden tests below pin both properties).
//!
//! The legacy entry point
//! [`run_active_learning`](crate::runner::run_active_learning) is now a
//! thin wrapper over this module's [`worker`].

pub mod artifacts;
pub mod scenario;
pub mod schedule;
pub mod spec;
pub mod worker;

pub use artifacts::{ArtifactCache, DatasetArtifacts};
pub use scenario::{CandidatePool, Scenario, ScenarioSource};
pub use schedule::{cost_weight, lpt_assign, lpt_start_offsets, CostModel, ScheduleMode};
pub use spec::{CellKind, RunSpec};

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;

use em_core::{EmError, Result};

use crate::config::GridConfig;
use crate::report::{GridCell, GridReport, RunReport};
use crate::strategies::StrategySpec;

/// One scheduler bin's results: `(expansion slot, cell outcome)` pairs,
/// scattered back into expansion order after the fan-out.
type BinRuns = Vec<(usize, Result<(RunReport, f64)>)>;

/// A full experiment grid: which datasets, which strategies, and the
/// shared configuration every cell runs under.
#[derive(Debug, Clone)]
pub struct ExperimentGrid {
    /// Datasets, in reporting order.
    pub scenarios: Vec<Scenario>,
    /// Active-learning strategies, in reporting order.
    pub strategies: Vec<StrategySpec>,
    /// Grid-level configuration (per-run config, master seed, seeds per
    /// cell, baselines).
    pub config: GridConfig,
}

impl ExperimentGrid {
    /// Build a grid.
    pub fn new(
        scenarios: Vec<Scenario>,
        strategies: Vec<StrategySpec>,
        config: GridConfig,
    ) -> Self {
        ExperimentGrid {
            scenarios,
            strategies,
            config,
        }
    }

    /// Validate grid shape and configuration.
    pub fn validate(&self) -> Result<()> {
        if self.scenarios.is_empty() {
            return Err(EmError::InvalidConfig("grid needs ≥ 1 scenario".into()));
        }
        for (i, s) in self.scenarios.iter().enumerate() {
            if self.scenarios[..i].iter().any(|t| t.name() == s.name()) {
                return Err(EmError::InvalidConfig(format!(
                    "duplicate scenario name `{}`",
                    s.name()
                )));
            }
        }
        if self.strategies.is_empty() && !self.config.include_baselines {
            return Err(EmError::InvalidConfig(
                "grid needs ≥ 1 strategy (or baselines enabled)".into(),
            ));
        }
        for (i, s) in self.strategies.iter().enumerate() {
            if self.strategies[..i].contains(s) {
                return Err(EmError::InvalidConfig(format!(
                    "duplicate strategy `{}` (would merge into one cell)",
                    s.name()
                )));
            }
        }
        self.config.validate()
    }

    /// The grid's spec list in fixed expansion order.
    pub fn expand(&self) -> Vec<RunSpec> {
        let names: Vec<String> = self
            .scenarios
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        spec::expand(&names, &self.strategies, &self.config)
    }

    /// Run the whole grid with a private artifact cache.
    pub fn run(&self) -> Result<GridReport> {
        self.run_with_cache(&ArtifactCache::new())
    }

    /// Run the whole grid, reusing (and populating) `cache` for dataset
    /// artifacts — the entry point for sweeps that re-run the same
    /// scenarios under different configurations. Schedules under the
    /// default cost-model LPT ([`ScheduleMode::CostLpt`]).
    pub fn run_with_cache(&self, cache: &ArtifactCache) -> Result<GridReport> {
        self.run_with_cache_scheduled(cache, ScheduleMode::default())
    }

    /// Run the whole grid under an explicit [`ScheduleMode`].
    ///
    /// The mode decides only *which worker runs which cell when*; every
    /// run is a pure function of its spec and results are always
    /// reassembled in expansion order, so the canonical [`GridReport`]
    /// is bit-identical across modes and thread counts (pinned by the
    /// golden tests below). When several cells fail, the error of the
    /// earliest expansion slot is reported — also mode-invariant.
    pub fn run_with_cache_scheduled(
        &self,
        cache: &ArtifactCache,
        mode: ScheduleMode,
    ) -> Result<GridReport> {
        self.validate()?;
        // em-lint: allow(wall-clock) -- fills GridReport.wall_secs; canonical() zeroes it
        let t0 = Instant::now();

        // Phase 1: materialize every scenario's shared artifacts, in
        // parallel (order-preserving, so error precedence is fixed).
        let materialized: Vec<Result<Arc<DatasetArtifacts>>> = self
            .scenarios
            .par_iter()
            .map(|s| cache.get_or_materialize(s))
            .collect();
        let mut artifacts: BTreeMap<String, Arc<DatasetArtifacts>> = BTreeMap::new();
        for (scenario, result) in self.scenarios.iter().zip(materialized) {
            artifacts.insert(scenario.name().to_string(), result?);
        }

        // Phase 2: fan independent runs out over worker threads under
        // the requested schedule, then scatter outcomes back into
        // expansion-order slots.
        let specs = self.expand();
        let run_spec = |s: &RunSpec| {
            let art = artifacts
                .get(s.scenario.as_str())
                .expect("scenario materialized in phase 1");
            worker::execute_spec(s, art, &self.config.experiment)
        };
        let mut outcomes: Vec<Option<Result<(RunReport, f64)>>> =
            specs.iter().map(|_| None).collect();
        match mode {
            ScheduleMode::CostLpt => {
                // Estimate each cell's cost (probe-table strategy weight
                // × pair-count factor) and pack cells onto one bin per
                // worker with LPT. The vendored rayon shim partitions a
                // par_iter into contiguous per-thread chunks, so a
                // bins-length fan-out puts exactly one bin on each
                // worker; within a bin, cells run serially in
                // descending-cost placement order.
                let model = CostModel;
                let costs: Vec<f64> = specs
                    .iter()
                    .map(|s| {
                        let pairs = artifacts
                            .get(s.scenario.as_str())
                            .expect("scenario materialized in phase 1")
                            .dataset
                            .len();
                        model.cost_of(s.kind, pairs)
                    })
                    .collect();
                let n_bins = if rayon::in_serial_mode() {
                    1
                } else {
                    rayon::current_num_threads()
                };
                let bins = schedule::lpt_assign(&costs, n_bins);
                let per_bin: Vec<BinRuns> = bins
                    .par_iter()
                    .map(|bin| bin.iter().map(|&i| (i, run_spec(&specs[i]))).collect())
                    .collect();
                for bin in per_bin {
                    for (slot, outcome) in bin {
                        outcomes[slot] = Some(outcome);
                    }
                }
            }
            ScheduleMode::SeedInterleave => {
                // The pre-cost-model baseline: execute in the seed-major
                // interleave so contiguous chunks mix strategies.
                let order = spec::execution_order(&specs);
                let ran: Vec<Result<(RunReport, f64)>> =
                    order.par_iter().map(|&i| run_spec(&specs[i])).collect();
                for (&slot, outcome) in order.iter().zip(ran) {
                    outcomes[slot] = Some(outcome);
                }
            }
        }
        let mut results: Vec<Option<(RunReport, f64)>> = Vec::with_capacity(specs.len());
        for outcome in outcomes {
            results.push(Some(outcome.expect("every spec scheduled exactly once")?));
        }

        // Phase 3: aggregate consecutive same-cell specs, in expansion
        // order — the fixed merge that makes the report deterministic.
        let mut cells = Vec::new();
        let mut runs = Vec::new();
        let mut i = 0;
        while i < specs.len() {
            let mut j = i + 1;
            while j < specs.len()
                && specs[j].scenario == specs[i].scenario
                && specs[j].kind == specs[i].kind
            {
                j += 1;
            }
            let cell_runs: Vec<RunReport> = results[i..j]
                .iter()
                .map(|r| r.as_ref().expect("slot filled").0.clone())
                .collect();
            let secs: Vec<f64> = results[i..j]
                .iter()
                .map(|r| r.as_ref().expect("slot filled").1)
                .collect();
            cells.push(GridCell::from_runs(&cell_runs, &secs)?);
            runs.extend(cell_runs);
            i = j;
        }

        Ok(GridReport {
            master_seed: self.config.master_seed,
            threads: if rayon::in_serial_mode() {
                1
            } else {
                rayon::current_num_threads()
            },
            wall_secs: t0.elapsed().as_secs_f64(),
            cells,
            runs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::runner::run_active_learning;
    use em_core::PerfectOracle;
    use em_synth::DatasetProfile;

    fn quick_experiment() -> ExperimentConfig {
        let mut c = ExperimentConfig::default();
        c.al.budget = 20;
        c.al.iterations = 2;
        c.al.seed_size = 20;
        c.al.weak_budget = 20;
        c.matcher.epochs = 6;
        c.battleship.kselect_sample = 128;
        c
    }

    fn quick_grid(
        strategies: Vec<StrategySpec>,
        n_seeds: usize,
        baselines: bool,
    ) -> ExperimentGrid {
        ExperimentGrid::new(
            vec![Scenario::synthetic_scaled(
                DatasetProfile::amazon_google(),
                0.04,
                5,
            )],
            strategies,
            GridConfig {
                experiment: quick_experiment(),
                master_seed: 0xA5EED,
                n_seeds,
                include_baselines: baselines,
            },
        )
    }

    /// Zero a report's wall-clock fields (the only legitimately
    /// run-dependent content).
    fn strip(mut r: RunReport) -> RunReport {
        for it in &mut r.iterations {
            it.train_secs = 0.0;
            it.select_secs = 0.0;
        }
        r
    }

    #[test]
    fn grid_shape_cells_and_json() {
        let grid = quick_grid(vec![StrategySpec::Random, StrategySpec::Dal], 2, true);
        let report = grid.run().unwrap();
        let names: Vec<&str> = report.cells.iter().map(|c| c.strategy()).collect();
        assert_eq!(names, vec!["random", "dal", "zeroer", "full-d"]);
        assert_eq!(report.runs.len(), 2 + 2 + 1 + 1);
        assert!(report
            .cells
            .iter()
            .all(|c| c.dataset() == "amazon-google@0.04"));
        let cell = report.cell("amazon-google@0.04", "random").unwrap();
        assert_eq!(cell.aggregate.seeds, grid.config.run_seeds());
        assert_eq!(cell.aggregate.mean_curve.len(), 3); // seed + 2 iterations
                                                        // Baselines are one-point curves at 0 / full-train labels.
        let zero = report.cell("amazon-google@0.04", "zeroer").unwrap();
        assert_eq!(zero.aggregate.mean_curve[0].0, 0.0);
        let full = report.cell("amazon-google@0.04", "full-d").unwrap();
        assert!(full.aggregate.mean_curve[0].0 > 0.0);
        assert!(report.wall_secs > 0.0);
        // The JSON artifact round-trips.
        let back: GridReport = serde_json::from_str(&report.to_json().unwrap()).unwrap();
        assert_eq!(back.canonical(), report.canonical());
    }

    /// Golden: every active cell's runs are identical to the legacy
    /// single-run `run_active_learning` path with the same seed.
    #[test]
    fn grid_cells_match_legacy_single_runs() {
        let grid = quick_grid(
            vec![StrategySpec::Battleship, StrategySpec::Random],
            2,
            false,
        );
        let report = grid.run().unwrap();
        let art = grid.scenarios[0].materialize().unwrap();
        for run in &report.runs {
            let spec = StrategySpec::all()
                .into_iter()
                .find(|s| s.name() == run.strategy)
                .unwrap();
            let oracle = PerfectOracle::new();
            let legacy = run_active_learning(
                &art.dataset,
                &art.features,
                spec.build().as_mut(),
                &oracle,
                &grid.config.experiment,
                run.seed,
            )
            .unwrap();
            assert_eq!(
                strip(run.clone()),
                strip(legacy),
                "engine diverged from legacy for ({}, seed {})",
                run.strategy,
                run.seed
            );
        }
    }

    /// Golden: the canonical grid report is bit-identical between the
    /// forced-serial scheduler and the default (threaded) scheduler.
    #[test]
    fn grid_report_is_thread_count_invariant() {
        let grid = quick_grid(vec![StrategySpec::Random, StrategySpec::Dal], 2, true);
        let cache = ArtifactCache::new();
        let parallel = grid.run_with_cache(&cache).unwrap();
        let serial = rayon::serial_scope(|| grid.run_with_cache(&cache)).unwrap();
        assert_eq!(
            parallel.canonical().to_json().unwrap(),
            serial.canonical().to_json().unwrap()
        );
    }

    /// Golden: the cost-model LPT schedule and the legacy seed-major
    /// interleave produce bit-identical canonical reports — scheduling
    /// decides only placement, never content.
    #[test]
    fn grid_report_is_schedule_mode_invariant() {
        let grid = quick_grid(
            vec![StrategySpec::Random, StrategySpec::Battleship],
            2,
            true,
        );
        let cache = ArtifactCache::new();
        let lpt = grid
            .run_with_cache_scheduled(&cache, ScheduleMode::CostLpt)
            .unwrap();
        let interleave = grid
            .run_with_cache_scheduled(&cache, ScheduleMode::SeedInterleave)
            .unwrap();
        assert_eq!(
            lpt.canonical().to_json().unwrap(),
            interleave.canonical().to_json().unwrap()
        );
    }

    #[test]
    fn artifact_cache_is_shared_across_grid_runs() {
        let grid = quick_grid(vec![StrategySpec::Random], 1, false);
        let cache = ArtifactCache::new();
        grid.run_with_cache(&cache).unwrap();
        assert_eq!(cache.len(), 1);
        grid.run_with_cache(&cache).unwrap();
        assert_eq!(cache.len(), 1, "second run must reuse the artifacts");
    }

    #[test]
    fn grid_validation_errors() {
        // No scenarios.
        let empty = ExperimentGrid::new(vec![], vec![StrategySpec::Random], GridConfig::default());
        assert!(empty.run().is_err());
        // Duplicate scenario names.
        let dup = ExperimentGrid::new(
            vec![
                Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 5),
                Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 6),
            ],
            vec![StrategySpec::Random],
            GridConfig::default(),
        );
        assert!(dup.validate().is_err());
        // No strategies and no baselines.
        let none = quick_grid(vec![], 1, false);
        assert!(none.validate().is_err());
        // Duplicate strategies would silently merge into one cell.
        let dup_strat = quick_grid(vec![StrategySpec::Random, StrategySpec::Random], 1, false);
        assert!(dup_strat.validate().is_err());
        // …but baselines alone are a valid grid.
        let baselines_only = quick_grid(vec![], 1, true);
        baselines_only.validate().unwrap();
    }
}
