//! Shared immutable per-dataset artifacts.
//!
//! Materializing a scenario (generating or loading the dataset, then
//! featurizing every candidate pair) dwarfs the cost of a single small
//! run, and a grid references each dataset from many (strategy, seed)
//! cells. The engine therefore materializes once per scenario and hands
//! every worker an `Arc` of the result; the [`ArtifactCache`] extends
//! the same sharing across consecutive grids (e.g. an ablation sweep
//! re-running the same datasets with different parameters).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use em_core::{Dataset, Result};
use em_matcher::Featurizer;
use em_vector::Embeddings;

use super::scenario::Scenario;

/// Everything dataset-level a run needs, fully immutable.
#[derive(Debug)]
pub struct DatasetArtifacts {
    /// The dataset with its train/valid/test split.
    pub dataset: Dataset,
    /// The featurizer (ZeroER's similarity battery needs it).
    pub featurizer: Featurizer,
    /// Static pair features, one row per candidate pair.
    pub features: Embeddings,
}

/// A name-keyed cache of materialized scenarios, safe to share across
/// worker threads and across grids.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    inner: Mutex<BTreeMap<String, Arc<DatasetArtifacts>>>,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The map lock, recovered from poisoning: every critical section
    /// mutates through single `BTreeMap` calls that either complete or
    /// leave the map untouched, so a panic elsewhere while holding the
    /// lock cannot leave a torn entry behind — and a worker's panic
    /// must never take the cache (and every session on it) down.
    fn map(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<DatasetArtifacts>>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of cached scenarios.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the artifacts for `scenario`, materializing on first use.
    ///
    /// Materialization runs outside the lock so concurrent lookups of
    /// *different* scenarios never serialize; if two threads race on the
    /// same scenario the first insert wins (both materializations are
    /// deterministic and identical, see `Scenario::materialize`).
    pub fn get_or_materialize(&self, scenario: &Scenario) -> Result<Arc<DatasetArtifacts>> {
        if let Some(found) = self.map().get(scenario.name()) {
            return Ok(found.clone());
        }
        let fresh = Arc::new(scenario.materialize()?);
        let mut cache = self.map();
        Ok(cache
            .entry(scenario.name().to_string())
            .or_insert(fresh)
            .clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_synth::DatasetProfile;

    #[test]
    fn cache_shares_one_materialization_per_name() {
        let cache = ArtifactCache::new();
        let s = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 5);
        let a = cache.get_or_materialize(&s).unwrap();
        let b = cache.get_or_materialize(&s).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must reuse the Arc");
        assert_eq!(cache.len(), 1);

        let t = Scenario::synthetic_scaled(DatasetProfile::wdc_cameras(), 0.04, 5);
        let c = cache.get_or_materialize(&t).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }
}
