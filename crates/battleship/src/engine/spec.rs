//! Grid expansion: dataset × strategy × seed into independent run specs.
//!
//! Expansion order is the *reporting* contract: cells appear
//! scenario-major (Table 3 order as given), strategies in the grid's
//! order, baselines after the strategies of their scenario, seeds in
//! derivation order. The scheduler may execute specs in any permutation
//! (see [`execution_order`]) but always reassembles results in expansion
//! order, which is what makes grid reports deterministic under any
//! worker-thread count.

use serde::{Deserialize, Serialize};

use crate::config::GridConfig;
use crate::strategies::StrategySpec;

/// What a grid cell computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// A full active-learning run of one strategy.
    Active(StrategySpec),
    /// The ZeroER extreme: zero labels, GMM over similarity features.
    ZeroEr,
    /// The Full D extreme: the entire training split labeled.
    FullD,
}

impl CellKind {
    /// Display name, matching the strategy column of every report.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Active(s) => s.name(),
            CellKind::ZeroEr => "zeroer",
            CellKind::FullD => "full-d",
        }
    }

    /// Parse a display name back into a kind.
    pub fn from_name(name: &str) -> Option<CellKind> {
        match name {
            "zeroer" => Some(CellKind::ZeroEr),
            "full-d" => Some(CellKind::FullD),
            other => StrategySpec::all()
                .into_iter()
                .find(|s| s.name() == other)
                .map(CellKind::Active),
        }
    }
}

// Manual serde over the display name (the vendored derive doesn't cover
// tuple enum variants; a name string is also the friendlier artifact).
impl Serialize for CellKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name().to_string())
    }
}

impl Deserialize for CellKind {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let name = v
            .as_str()
            .ok_or_else(|| serde::DeError::custom(format!("expected cell name, got {v:?}")))?;
        CellKind::from_name(name)
            .ok_or_else(|| serde::DeError::custom(format!("unknown cell kind `{name}`")))
    }
}

/// One independent unit of grid work: a single (scenario, cell, seed)
/// run, executable on any worker thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Scenario name (the artifact-cache key).
    pub scenario: String,
    /// What to run.
    pub kind: CellKind,
    /// The run's derived seed (drives every random decision of the run).
    pub seed: u64,
    /// Position of `seed` in the grid's seed stream; the scheduler's
    /// interleaving key.
    pub seed_index: usize,
}

/// Expand a grid into its fixed-order spec list.
///
/// Active cells get one spec per derived seed; baseline cells (when
/// enabled) are deterministic given the dataset up to their internal
/// seed, so they run once per scenario with the first derived seed.
pub fn expand(
    scenario_names: &[String],
    strategies: &[StrategySpec],
    config: &GridConfig,
) -> Vec<RunSpec> {
    let seeds = config.run_seeds();
    let mut specs = Vec::new();
    for scenario in scenario_names {
        for &strategy in strategies {
            for (seed_index, &seed) in seeds.iter().enumerate() {
                specs.push(RunSpec {
                    scenario: scenario.clone(),
                    kind: CellKind::Active(strategy),
                    seed,
                    seed_index,
                });
            }
        }
        if config.include_baselines {
            // `validate()` rejects n_seeds == 0 before any run; fall back
            // to the master seed here so a bare `expand()` cannot panic.
            let baseline_seed = seeds.first().copied().unwrap_or(config.master_seed);
            for kind in [CellKind::ZeroEr, CellKind::FullD] {
                specs.push(RunSpec {
                    scenario: scenario.clone(),
                    kind,
                    seed: baseline_seed,
                    seed_index: 0,
                });
            }
        }
    }
    specs
}

/// The order specs are *executed* in: a seed-major interleave of the
/// expansion order.
///
/// The vendored rayon executor partitions work into contiguous index
/// ranges per thread, so executing in expansion order would hand one
/// thread all seeds of the most expensive strategy (DIAL trains a
/// committee per iteration) and make it the makespan. Interleaving by
/// seed index mixes strategies within every contiguous chunk. The
/// permutation is a pure function of the spec list — scheduling stays
/// deterministic — and results are always restored to expansion order.
pub fn execution_order(specs: &[RunSpec]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| (specs[i].seed_index, i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_config(n_seeds: usize, baselines: bool) -> GridConfig {
        GridConfig {
            n_seeds,
            include_baselines: baselines,
            ..GridConfig::default()
        }
    }

    #[test]
    fn expansion_order_is_scenario_cell_seed() {
        let names = vec!["a".to_string(), "b".to_string()];
        let strategies = [StrategySpec::Battleship, StrategySpec::Random];
        let specs = expand(&names, &strategies, &grid_config(3, false));
        assert_eq!(specs.len(), 2 * 2 * 3);
        // First cell: battleship on `a`, seeds in stream order.
        assert!(specs[..3]
            .iter()
            .all(|s| s.scenario == "a" && s.kind == CellKind::Active(StrategySpec::Battleship)));
        assert_eq!(
            specs[..3].iter().map(|s| s.seed_index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Scenario `b` starts after all of `a`.
        assert!(specs[6..].iter().all(|s| s.scenario == "b"));
        // Seeds are shared across cells: same stream per seed index.
        assert_eq!(specs[0].seed, specs[3].seed);
        assert_eq!(specs[0].seed, specs[6].seed);
    }

    #[test]
    fn baselines_append_one_spec_each_per_scenario() {
        let names = vec!["a".to_string()];
        let specs = expand(&names, &[StrategySpec::Random], &grid_config(2, true));
        assert_eq!(specs.len(), 2 + 2);
        assert_eq!(specs[2].kind, CellKind::ZeroEr);
        assert_eq!(specs[3].kind, CellKind::FullD);
        assert_eq!(specs[2].seed, specs[0].seed);
    }

    #[test]
    fn expand_with_zero_seeds_does_not_panic() {
        // Invalid as a grid (validate() rejects n_seeds == 0), but the
        // pub expansion itself must stay total.
        let names = vec!["a".to_string()];
        let config = grid_config(0, true);
        let specs = expand(&names, &[StrategySpec::Random], &config);
        assert_eq!(specs.len(), 2); // baselines only
        assert!(specs.iter().all(|s| s.seed == config.master_seed));
    }

    #[test]
    fn execution_order_interleaves_by_seed_index() {
        let names = vec!["a".to_string()];
        let strategies = [
            StrategySpec::Battleship,
            StrategySpec::Dal,
            StrategySpec::Dial,
            StrategySpec::Random,
        ];
        let specs = expand(&names, &strategies, &grid_config(3, false));
        let order = execution_order(&specs);
        // A permutation…
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
        // …whose first block covers all four strategies at seed 0.
        let first_four: Vec<CellKind> = order[..4].iter().map(|&i| specs[i].kind).collect();
        assert_eq!(
            first_four,
            strategies.map(CellKind::Active).to_vec(),
            "seed-0 specs must come first, in strategy order"
        );
        assert!(order[..4].iter().all(|&i| specs[i].seed_index == 0));
        assert!(order[4..8].iter().all(|&i| specs[i].seed_index == 1));
    }

    #[test]
    fn cell_kind_names() {
        assert_eq!(CellKind::Active(StrategySpec::Dial).name(), "dial");
        assert_eq!(CellKind::ZeroEr.name(), "zeroer");
        assert_eq!(CellKind::FullD.name(), "full-d");
    }
}
