//! Cost-model LPT scheduling: assigning grid cells (and serve-layer
//! sessions) onto workers by measured cost instead of position.
//!
//! The grid is a skewed workload: a DIAL cell trains a disagreement
//! committee every iteration and runs ≈5× longer than a random cell on
//! the same dataset (see the committed [`PROBE_TABLE`]). The vendored
//! rayon executor partitions work into contiguous per-thread index
//! ranges, so any fixed interleave leaves the tail of the heaviest
//! cells on one worker. This module replaces the engine's seed-major
//! interleave with the classic two-step:
//!
//! 1. a [`CostModel`] estimates each cell's cost as
//!    `cost_weight(kind) × (pairs / PROBE_PAIRS)` — strategy weight
//!    calibrated from the probe table, linear dataset-size factor
//!    (per-iteration work is dominated by predict + spatial builds over
//!    the pool, which scale with the pair count);
//! 2. [`lpt_assign`] runs longest-processing-time-first list
//!    scheduling: items sorted by descending cost are greedily placed
//!    on the least-loaded of `n_bins` worker bins (LPT is a 4/3-OPT
//!    makespan guarantee, Graham 1969).
//!
//! The assignment is a **pure function** of `(costs, n_bins)` — ties
//! break on lower index, bins on lower bin id — and the engine always
//! scatters results back into expansion-order slots, so the
//! [`GridReport`](crate::report::GridReport) stays bit-identical to the
//! serial schedule for any thread count (the engine's golden tests pin
//! this). The serve layer reuses the same model to dispatch heavy
//! sessions first in
//! [`step_ready_sessions`](crate::serve::SessionStore::step_ready_sessions).
//!
//! Calibration: `cargo run --release -p em-bench --bin probe_costs`
//! regenerates the measurements behind [`PROBE_TABLE`].

use crate::engine::spec::CellKind;

/// One measured row of the calibration probe (see module docs): the
/// one-core `mean_run_secs` of a cell kind at a given dataset size.
#[derive(Debug, Clone, Copy)]
pub struct ProbeRow {
    /// Cell-kind display name ([`CellKind::name`]).
    pub cell: &'static str,
    /// Dataset pair count the probe ran on.
    pub pairs: usize,
    /// Measured one-core seconds per run (mean over 3 seeds).
    pub secs: f64,
}

/// Pair count the probe table's reference scale was measured at
/// (amazon-google@0.1); the [`CostModel`]'s dataset-size factor is
/// `pairs / PROBE_PAIRS`.
pub const PROBE_PAIRS: usize = 1145;

/// Committed calibration measurements (`probe_costs`, one core,
/// 3 seeds per cell, amazon-google at scales 0.05 / 0.1 — see module
/// docs for the exact command). The [`CostModel`] weights below are the
/// @0.1 column normalized to `random`.
pub const PROBE_TABLE: &[ProbeRow] = &[
    ProbeRow {
        cell: "battleship",
        pairs: 1145,
        secs: 0.1826,
    },
    ProbeRow {
        cell: "dal",
        pairs: 1145,
        secs: 0.1401,
    },
    ProbeRow {
        cell: "dial",
        pairs: 1145,
        secs: 0.3349,
    },
    ProbeRow {
        cell: "random",
        pairs: 1145,
        secs: 0.1092,
    },
    ProbeRow {
        cell: "zeroer",
        pairs: 1145,
        secs: 0.0755,
    },
    ProbeRow {
        cell: "full-d",
        pairs: 1145,
        secs: 0.1507,
    },
    ProbeRow {
        cell: "battleship",
        pairs: 573,
        secs: 0.1166,
    },
    ProbeRow {
        cell: "dal",
        pairs: 573,
        secs: 0.0952,
    },
    ProbeRow {
        cell: "dial",
        pairs: 573,
        secs: 0.3327,
    },
    ProbeRow {
        cell: "random",
        pairs: 573,
        secs: 0.0797,
    },
    ProbeRow {
        cell: "zeroer",
        pairs: 573,
        secs: 0.0365,
    },
    ProbeRow {
        cell: "full-d",
        pairs: 573,
        secs: 0.0969,
    },
];

/// Relative execution cost of a grid cell kind (random ≡ 1.0), read
/// from the committed probe table.
pub fn cost_weight(kind: CellKind) -> f64 {
    match kind.name() {
        // @0.1 probe column / random's 0.1092 s.
        "battleship" => 1.65,
        "dal" => 1.3,
        "dial" => 3.1,
        "random" => 1.0,
        "zeroer" => 0.7,
        "full-d" => 1.4,
        _ => 1.0,
    }
}

/// The engine's (and serve layer's) cell-cost estimator.
///
/// `cost = cost_weight(kind) × pairs / PROBE_PAIRS`: strategy weight
/// from the probe table, linear in the dataset's pair count (both probe
/// scales agree on the weights within a few percent, so a linear size
/// factor is sufficient at grid scales). Absolute units are arbitrary —
/// LPT only compares costs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel;

impl CostModel {
    /// Estimated cost of one cell of `kind` over `pairs` candidate
    /// pairs.
    pub fn cost_of(&self, kind: CellKind, pairs: usize) -> f64 {
        cost_weight(kind) * (pairs.max(1) as f64) / (PROBE_PAIRS as f64)
    }

    /// Estimated cost by display name (the serve layer holds strategy
    /// *names*); unknown names cost as `random` — scheduling stays
    /// total.
    pub fn cost_of_named(&self, name: &str, pairs: usize) -> f64 {
        let weight = CellKind::from_name(name).map_or(1.0, cost_weight);
        weight * (pairs.max(1) as f64) / (PROBE_PAIRS as f64)
    }
}

/// Longest-processing-time-first assignment of `costs` onto `n_bins`
/// worker bins.
///
/// Returns one item-index list per bin; within a bin, items appear in
/// placement order — descending cost — so each worker starts its
/// heaviest item first. Deterministic: items sort by
/// `(cost desc, index asc)` and ties between equally-loaded bins go to
/// the lower bin id. `n_bins` is clamped to at least 1.
pub fn lpt_assign(costs: &[f64], n_bins: usize) -> Vec<Vec<usize>> {
    let n_bins = n_bins.max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then(a.cmp(&b)));
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); n_bins];
    let mut loads = vec![0.0f64; n_bins];
    for i in order {
        let mut best = 0usize;
        for (b, &load) in loads.iter().enumerate().skip(1) {
            if load.total_cmp(&loads[best]).is_lt() {
                best = b;
            }
        }
        bins[best].push(i);
        loads[best] += costs[i].max(0.0);
    }
    bins
}

/// The LPT *start offset* of every item: the accumulated load of its
/// bin at the moment it was placed (the idealized time its worker
/// starts it). Monotone in cost — a strictly heavier item never starts
/// later than a lighter one — which is the scheduling contract the
/// monotonicity proptest pins.
pub fn lpt_start_offsets(costs: &[f64], n_bins: usize) -> Vec<f64> {
    let n_bins = n_bins.max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then(a.cmp(&b)));
    let mut loads = vec![0.0f64; n_bins];
    let mut starts = vec![0.0f64; costs.len()];
    for i in order {
        let mut best = 0usize;
        for (b, &load) in loads.iter().enumerate().skip(1) {
            if load.total_cmp(&loads[best]).is_lt() {
                best = b;
            }
        }
        starts[i] = loads[best];
        loads[best] += costs[i].max(0.0);
    }
    starts
}

/// Which execution schedule the engine fans cells out under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    /// Cost-model LPT bins (the default since PR 10).
    #[default]
    CostLpt,
    /// The pre-cost-model seed-major interleave, preserved as the
    /// engine bench's measured baseline.
    SeedInterleave,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::StrategySpec;

    #[test]
    fn probe_table_covers_every_cell_kind_at_every_scale() {
        for kind in StrategySpec::all()
            .map(CellKind::Active)
            .into_iter()
            .chain([CellKind::ZeroEr, CellKind::FullD])
        {
            for pairs in [573usize, 1145] {
                assert!(
                    PROBE_TABLE
                        .iter()
                        .any(|r| r.cell == kind.name() && r.pairs == pairs),
                    "probe table is missing ({}, {pairs})",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn cost_weights_match_the_probe_table_within_tolerance() {
        // The committed weights are the @0.1 rows normalized to random;
        // assert they stay within 15% of the measurement so the table
        // and the constants cannot silently drift apart.
        let secs_of = |cell: &str, pairs: usize| {
            PROBE_TABLE
                .iter()
                .find(|r| r.cell == cell && r.pairs == pairs)
                .map(|r| r.secs)
                .unwrap_or(f64::NAN)
        };
        let random = secs_of("random", PROBE_PAIRS);
        for kind in StrategySpec::all()
            .map(CellKind::Active)
            .into_iter()
            .chain([CellKind::ZeroEr, CellKind::FullD])
        {
            let measured = secs_of(kind.name(), PROBE_PAIRS) / random;
            let committed = cost_weight(kind);
            assert!(
                (committed - measured).abs() <= 0.15 * measured,
                "{}: committed weight {committed} vs measured {measured:.3}",
                kind.name()
            );
        }
    }

    #[test]
    fn dial_dominates_the_cost_model() {
        let model = CostModel;
        let dial = model.cost_of(CellKind::Active(StrategySpec::Dial), 1000);
        for other in [
            StrategySpec::Battleship,
            StrategySpec::Dal,
            StrategySpec::Random,
        ] {
            assert!(dial > 1.5 * model.cost_of(CellKind::Active(other), 1000));
        }
        // Linear dataset factor.
        let small = model.cost_of(CellKind::Active(StrategySpec::Dial), 500);
        assert!((dial / small - 2.0).abs() < 1e-9);
        // Unknown names fall back to the random weight.
        assert_eq!(
            model.cost_of_named("mystery", 1000),
            model.cost_of(CellKind::Active(StrategySpec::Random), 1000)
        );
        assert_eq!(
            model.cost_of_named("dial", 1000),
            model.cost_of(CellKind::Active(StrategySpec::Dial), 1000)
        );
    }

    #[test]
    fn lpt_assign_is_a_deterministic_partition() {
        let costs = [5.0, 1.0, 3.0, 3.0, 2.0, 8.0, 1.0];
        let bins = lpt_assign(&costs, 3);
        let mut all: Vec<usize> = bins.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..costs.len()).collect::<Vec<_>>());
        assert_eq!(bins, lpt_assign(&costs, 3));
        // Heaviest item opens bin 0; second-heaviest bin 1.
        assert_eq!(bins[0][0], 5);
        assert_eq!(bins[1][0], 0);
        // Within every bin, placement order is non-increasing cost.
        for bin in &bins {
            for w in bin.windows(2) {
                assert!(costs[w[0]] >= costs[w[1]]);
            }
        }
    }

    #[test]
    fn lpt_balances_the_dial_skew() {
        // 4 strategies × 3 seeds with the probe weights: the three DIAL
        // cells must land on three different bins of a 4-worker fan-out.
        let model = CostModel;
        let mut costs = Vec::new();
        for spec in StrategySpec::all() {
            for _ in 0..3 {
                costs.push(model.cost_of(CellKind::Active(spec), PROBE_PAIRS));
            }
        }
        let bins = lpt_assign(&costs, 4);
        let dial_range = 6..9; // expansion order: battleship, dal, dial, random
        let mut dial_bins: Vec<usize> = Vec::new();
        for (b, bin) in bins.iter().enumerate() {
            for &i in bin {
                if dial_range.contains(&i) {
                    dial_bins.push(b);
                }
            }
        }
        dial_bins.sort_unstable();
        dial_bins.dedup();
        assert_eq!(dial_bins.len(), 3, "DIAL cells must spread across bins");
        // Makespan under LPT beats the contiguous-chunk makespan.
        let loads = |bins: &[Vec<usize>]| -> f64 {
            bins.iter()
                .map(|bin| bin.iter().map(|&i| costs[i]).sum::<f64>())
                .fold(0.0, f64::max)
        };
        let lpt_makespan = loads(&bins);
        let contiguous: Vec<Vec<usize>> = (0..4).map(|b| (b * 3..b * 3 + 3).collect()).collect();
        assert!(lpt_makespan < loads(&contiguous));
    }

    #[test]
    fn lpt_start_offsets_are_monotone_in_cost() {
        let costs = [0.5, 4.0, 2.0, 2.0, 9.0, 0.1, 3.3];
        for n_bins in 1..=5 {
            let starts = lpt_start_offsets(&costs, n_bins);
            for i in 0..costs.len() {
                for j in 0..costs.len() {
                    if costs[i] > costs[j] {
                        assert!(
                            starts[i] <= starts[j],
                            "bins={n_bins}: heavier {i} starts after lighter {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_shapes_stay_total() {
        assert_eq!(lpt_assign(&[], 4), vec![Vec::<usize>::new(); 4]);
        assert_eq!(lpt_assign(&[1.0, 2.0], 0).len(), 1);
        let one_bin = lpt_assign(&[1.0, 3.0, 2.0], 1);
        assert_eq!(one_bin[0], vec![1, 2, 0]); // descending cost
        assert!(lpt_start_offsets(&[], 3).is_empty());
    }
}
