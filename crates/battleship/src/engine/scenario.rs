//! Scenario registry: every way the engine can obtain a dataset.
//!
//! A [`Scenario`] is a named, reproducible recipe for a benchmark task —
//! one of `em-synth`'s Table 3 profiles (optionally rescaled), a
//! blocking-scale streamed record pool, or a Magellan-layout CSV
//! directory loaded through [`em_core::csv`]. Every scenario also
//! carries a [`BlockingSpec`] describing how candidate pairs are
//! extracted from the raw tables; [`BlockingSpec::Exhaustive`] is the
//! default and leaves the legacy pair generation bit-identical. The
//! engine materializes scenarios into immutable
//! [`DatasetArtifacts`](super::DatasetArtifacts) exactly once per grid
//! and shares them across every run that names them.

use std::path::PathBuf;

use em_core::{CandidatePair, EmError, Result, Rng};
use em_matcher::{FeatureConfig, Featurizer};
use em_synth::{all_profiles, generate, generate_pool, DatasetProfile, PoolProfile, RecordPool};

use super::artifacts::DatasetArtifacts;
use crate::blocking::{block_tables, BlockingOutput, BlockingSpec};

/// Where a scenario's dataset comes from.
#[derive(Debug, Clone)]
pub enum ScenarioSource {
    /// Generate synthetically from an `em-synth` profile.
    Synthetic {
        /// The (possibly rescaled) generation profile.
        profile: DatasetProfile,
        /// Generation seed — part of the scenario identity, so two grids
        /// naming the same scenario see the same pairs.
        gen_seed: u64,
    },
    /// Stream a blocking-scale record pool ([`em_synth::pool`]); the
    /// candidate set is whatever the scenario's [`BlockingSpec`]
    /// extracts from the raw tables.
    Pool {
        /// The pool profile.
        profile: PoolProfile,
        /// Generation seed (same identity contract as `Synthetic`).
        gen_seed: u64,
    },
    /// Load a Magellan-layout directory (`tableA.csv`, `tableB.csv`,
    /// `train.csv`, `valid.csv`, `test.csv`).
    CsvDir {
        /// The dataset directory.
        dir: PathBuf,
    },
}

/// A candidate pool produced by blocking alone — no featurization, no
/// split. This is the shape the 10⁵-record acceptance path uses: the
/// pair list comes out of the signature tier without the exhaustive
/// matrix (or the feature matrix) ever existing.
#[derive(Debug, Clone)]
pub struct CandidatePool {
    /// The blocking run: sorted candidate pairs plus size accounting.
    pub blocking: BlockingOutput,
    /// Ground-truth matches of the underlying tables, for recall
    /// measurement.
    pub true_matches: Vec<CandidatePair>,
}

/// A named, reproducible dataset recipe.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    source: ScenarioSource,
    blocking: BlockingSpec,
}

impl Scenario {
    /// A synthetic scenario named after its profile.
    pub fn synthetic(profile: DatasetProfile, gen_seed: u64) -> Self {
        Scenario {
            name: profile.name.to_string(),
            source: ScenarioSource::Synthetic { profile, gen_seed },
            blocking: BlockingSpec::Exhaustive,
        }
    }

    /// A synthetic scenario scaled by `factor` (for smoke grids); the
    /// name records the scale so differently-sized variants of one
    /// profile coexist in an [`ArtifactCache`](super::ArtifactCache).
    pub fn synthetic_scaled(profile: DatasetProfile, factor: f64, gen_seed: u64) -> Self {
        let name = format!("{}@{factor}", profile.name);
        Scenario {
            name,
            source: ScenarioSource::Synthetic {
                profile: profile.scaled(factor),
                gen_seed,
            },
            blocking: BlockingSpec::Exhaustive,
        }
    }

    /// A blocking-scale record-pool scenario named after its profile.
    ///
    /// Pools default to [`BlockingSpec::Exhaustive`] like every other
    /// scenario; at 10⁵+ records that errors out at materialize time
    /// (the cross product exceeds the cap), so real use pairs this with
    /// [`Scenario::with_blocking`].
    pub fn pool(profile: PoolProfile, gen_seed: u64) -> Self {
        Scenario {
            name: profile.name.clone(),
            source: ScenarioSource::Pool { profile, gen_seed },
            blocking: BlockingSpec::Exhaustive,
        }
    }

    /// A CSV-backed scenario over a Magellan-layout directory.
    pub fn csv_dir(name: impl Into<String>, dir: impl Into<PathBuf>) -> Self {
        Scenario {
            name: name.into(),
            source: ScenarioSource::CsvDir { dir: dir.into() },
            blocking: BlockingSpec::Exhaustive,
        }
    }

    /// Replace the blocking spec.
    ///
    /// Non-exhaustive specs tag the scenario name (e.g.
    /// `pool-100k+lsh8x32`) so blocked variants occupy their own
    /// artifact-cache slots; the exhaustive default never renames, which
    /// keeps legacy scenarios bit-identical.
    pub fn with_blocking(mut self, blocking: BlockingSpec) -> Self {
        if let Some(tag) = blocking.tag() {
            self.name = format!("{}+{tag}", self.name);
        }
        self.blocking = blocking;
        self
    }

    /// Look a built-in profile up by name (Table 3 naming, e.g.
    /// `"amazon-google"`), scaled by `factor`.
    pub fn by_name(name: &str, factor: f64, gen_seed: u64) -> Result<Scenario> {
        let profile = all_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .ok_or_else(|| {
                EmError::InvalidConfig(format!(
                    "unknown scenario `{name}` (known: {})",
                    Scenario::registry_names().join(", ")
                ))
            })?;
        Ok(if (factor - 1.0).abs() < 1e-12 {
            Scenario::synthetic(profile, gen_seed)
        } else {
            Scenario::synthetic_scaled(profile, factor, gen_seed)
        })
    }

    /// Names of all built-in synthetic profiles.
    pub fn registry_names() -> Vec<&'static str> {
        all_profiles().into_iter().map(|p| p.name).collect()
    }

    /// The scenario's name (the artifact-cache key and the dataset name
    /// every report of this scenario carries).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario's blocking spec.
    pub fn blocking(&self) -> &BlockingSpec {
        &self.blocking
    }

    /// The raw tables and truth list the blocking tier runs over.
    ///
    /// `Synthetic` sources re-use the legacy generator and strip its
    /// curated pair list down to the true matches; `Pool` sources stream
    /// the tables directly. CSV directories carry ground truth only for
    /// their listed pairs, so they cannot be re-blocked.
    fn source_pool(&self) -> Result<(RecordPool, Rng)> {
        match &self.source {
            ScenarioSource::Synthetic { profile, gen_seed } => {
                let mut rng = Rng::seed_from_u64(*gen_seed);
                let dataset = generate(profile, &mut rng)?;
                let mut true_matches: Vec<CandidatePair> = (0..dataset.len())
                    .filter(|&i| dataset.ground_truth(i).is_match())
                    .map(|i| dataset.pairs()[i])
                    .collect();
                true_matches.sort_unstable();
                true_matches.dedup();
                Ok((
                    RecordPool {
                        name: self.name.clone(),
                        left: dataset.left,
                        right: dataset.right,
                        true_matches,
                    },
                    rng,
                ))
            }
            ScenarioSource::Pool { profile, gen_seed } => {
                let mut rng = Rng::seed_from_u64(*gen_seed);
                let mut pool = generate_pool(profile, &mut rng)?;
                pool.name = self.name.clone();
                Ok((pool, rng))
            }
            ScenarioSource::CsvDir { .. } => Err(EmError::InvalidConfig(format!(
                "{}: CSV scenarios carry ground truth only for their listed pairs \
                 and cannot be re-blocked; use BlockingSpec::Exhaustive",
                self.name
            ))),
        }
    }

    /// Run only the blocking tier: raw tables → candidate pairs, no
    /// featurization and no exhaustive matrix.
    ///
    /// This is how 10⁵–10⁶-record pools are exercised: the candidate
    /// pool plus the truth list (for recall) is everything the
    /// throughput bench and the recall gate need.
    pub fn candidate_pool(&self) -> Result<CandidatePool> {
        let (pool, _rng) = self.source_pool()?;
        let blocking = block_tables(&pool.left, &pool.right, &self.blocking)?;
        Ok(CandidatePool {
            blocking,
            true_matches: pool.true_matches,
        })
    }

    /// Build the immutable per-dataset artifacts: the dataset itself,
    /// the featurizer, and the featurized pair embeddings.
    pub fn materialize(&self) -> Result<DatasetArtifacts> {
        let mut dataset = match (&self.source, &self.blocking) {
            // The legacy paths, bit-identical to pre-blocking behaviour:
            // synthetic profiles keep their curated pair list, CSV dirs
            // their labeled pairs.
            (ScenarioSource::Synthetic { profile, gen_seed }, BlockingSpec::Exhaustive) => {
                generate(profile, &mut Rng::seed_from_u64(*gen_seed))?
            }
            (ScenarioSource::CsvDir { dir }, BlockingSpec::Exhaustive) => {
                em_core::load_magellan_dir(dir, &self.name)?
            }
            // Everything else goes through the blocking tier: extract
            // candidates from the raw tables, label them against the
            // truth list, split, and proceed as usual.
            _ => {
                let (pool, mut rng) = self.source_pool()?;
                let blocked = block_tables(&pool.left, &pool.right, &self.blocking)?;
                em_synth::assemble_dataset(pool, blocked.candidates, &mut rng)?
            }
        };
        // Reports key cells by scenario name; make the dataset agree even
        // when a scenario renames its source (scaled variants, CSV dirs).
        dataset.name = self.name.clone();
        let featurizer = Featurizer::new(&dataset, FeatureConfig::default())?;
        let features = featurizer.featurize_all(&dataset)?;
        Ok(DatasetArtifacts {
            dataset,
            featurizer,
            features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::LshBlocking;
    use em_synth::blocking_recall;

    #[test]
    fn registry_lookup_and_unknown_name() {
        assert!(Scenario::registry_names().contains(&"amazon-google"));
        let s = Scenario::by_name("amazon-google", 0.05, 7).unwrap();
        assert_eq!(s.name(), "amazon-google@0.05");
        let full = Scenario::by_name("amazon-google", 1.0, 7).unwrap();
        assert_eq!(full.name(), "amazon-google");
        assert!(Scenario::by_name("no-such-dataset", 1.0, 7).is_err());
    }

    #[test]
    fn materialize_is_deterministic_and_renames() {
        let s = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 11);
        let a = s.materialize().unwrap();
        let b = s.materialize().unwrap();
        assert_eq!(a.dataset.name, "amazon-google@0.04");
        assert_eq!(a.dataset.len(), b.dataset.len());
        assert_eq!(a.features.len(), a.dataset.len());
        assert_eq!(a.features.row(0), b.features.row(0));
    }

    #[test]
    fn missing_csv_dir_errors() {
        let s = Scenario::csv_dir("ghost", "/nonexistent/em-data");
        assert!(s.materialize().is_err());
    }

    #[test]
    fn exhaustive_spec_is_bit_identical_to_legacy() {
        // `with_blocking(Exhaustive)` must change nothing: same name,
        // same pairs, same features.
        let base = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 11);
        let spec = base.clone().with_blocking(BlockingSpec::Exhaustive);
        assert_eq!(base.name(), spec.name());
        let a = base.materialize().unwrap();
        let b = spec.materialize().unwrap();
        assert_eq!(a.dataset.pairs(), b.dataset.pairs());
        assert_eq!(a.dataset.split(), b.dataset.split());
        for i in 0..a.dataset.len() {
            assert_eq!(a.features.row(i), b.features.row(i));
        }
    }

    #[test]
    fn blocked_scenarios_get_tagged_names() {
        let pool = Scenario::pool(PoolProfile::products("tag-pool", 1000), 5);
        assert_eq!(pool.name(), "tag-pool");
        let lsh = pool
            .clone()
            .with_blocking(BlockingSpec::Lsh(LshBlocking::default()));
        assert_eq!(lsh.name(), "tag-pool+lsh8x32");
        let token = pool.with_blocking(BlockingSpec::Token(Default::default()));
        assert_eq!(token.name(), "tag-pool+token");
    }

    #[test]
    fn pool_scenario_materializes_through_lsh() {
        let s = Scenario::pool(PoolProfile::products("mat-pool", 1500), 21)
            .with_blocking(BlockingSpec::Lsh(LshBlocking::default()));
        let a = s.materialize().unwrap();
        let b = s.materialize().unwrap();
        assert_eq!(a.dataset.name, "mat-pool+lsh8x32");
        assert_eq!(a.dataset.pairs(), b.dataset.pairs());
        assert_eq!(a.features.len(), a.dataset.len());
        // Blocked pool datasets contain both classes.
        let n_pos = (0..a.dataset.len())
            .filter(|&i| a.dataset.ground_truth(i).is_match())
            .count();
        assert!(n_pos > 0 && n_pos < a.dataset.len());
    }

    #[test]
    fn candidate_pool_skips_featurization_and_measures_recall() {
        let s = Scenario::pool(PoolProfile::products("cp-pool", 2000), 23)
            .with_blocking(BlockingSpec::Lsh(LshBlocking::default()));
        let cp = s.candidate_pool().unwrap();
        assert!(!cp.blocking.candidates.is_empty());
        assert!(!cp.true_matches.is_empty());
        let recall = blocking_recall(&cp.blocking.candidates, &cp.true_matches);
        assert!(recall >= 0.95, "recall {recall}");
        assert!(cp.blocking.stats.reduction_ratio > 0.9);
    }

    #[test]
    fn csv_scenarios_cannot_be_reblocked() {
        let s = Scenario::csv_dir("ghost", "/nonexistent/em-data")
            .with_blocking(BlockingSpec::Lsh(LshBlocking::default()));
        assert!(s.materialize().is_err());
        assert!(s.candidate_pool().is_err());
    }

    #[test]
    fn oversized_exhaustive_pool_errors_at_materialize() {
        let s = Scenario::pool(PoolProfile::products("big-pool", 20_000), 3);
        let err = s.materialize().unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("exhaustive"), "unexpected error: {msg}");
    }
}
