//! Scenario registry: every way the engine can obtain a dataset.
//!
//! A [`Scenario`] is a named, reproducible recipe for a benchmark task —
//! either one of `em-synth`'s Table 3 profiles (optionally rescaled) or
//! a Magellan-layout CSV directory loaded through [`em_core::csv`]. The
//! engine materializes scenarios into immutable
//! [`DatasetArtifacts`](super::DatasetArtifacts) exactly once per grid
//! and shares them across every run that names them.

use std::path::PathBuf;

use em_core::{EmError, Result, Rng};
use em_matcher::{FeatureConfig, Featurizer};
use em_synth::{all_profiles, generate, DatasetProfile};

use super::artifacts::DatasetArtifacts;

/// Where a scenario's dataset comes from.
#[derive(Debug, Clone)]
pub enum ScenarioSource {
    /// Generate synthetically from an `em-synth` profile.
    Synthetic {
        /// The (possibly rescaled) generation profile.
        profile: DatasetProfile,
        /// Generation seed — part of the scenario identity, so two grids
        /// naming the same scenario see the same pairs.
        gen_seed: u64,
    },
    /// Load a Magellan-layout directory (`tableA.csv`, `tableB.csv`,
    /// `train.csv`, `valid.csv`, `test.csv`).
    CsvDir {
        /// The dataset directory.
        dir: PathBuf,
    },
}

/// A named, reproducible dataset recipe.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    source: ScenarioSource,
}

impl Scenario {
    /// A synthetic scenario named after its profile.
    pub fn synthetic(profile: DatasetProfile, gen_seed: u64) -> Self {
        Scenario {
            name: profile.name.to_string(),
            source: ScenarioSource::Synthetic { profile, gen_seed },
        }
    }

    /// A synthetic scenario scaled by `factor` (for smoke grids); the
    /// name records the scale so differently-sized variants of one
    /// profile coexist in an [`ArtifactCache`](super::ArtifactCache).
    pub fn synthetic_scaled(profile: DatasetProfile, factor: f64, gen_seed: u64) -> Self {
        let name = format!("{}@{factor}", profile.name);
        Scenario {
            name,
            source: ScenarioSource::Synthetic {
                profile: profile.scaled(factor),
                gen_seed,
            },
        }
    }

    /// A CSV-backed scenario over a Magellan-layout directory.
    pub fn csv_dir(name: impl Into<String>, dir: impl Into<PathBuf>) -> Self {
        Scenario {
            name: name.into(),
            source: ScenarioSource::CsvDir { dir: dir.into() },
        }
    }

    /// Look a built-in profile up by name (Table 3 naming, e.g.
    /// `"amazon-google"`), scaled by `factor`.
    pub fn by_name(name: &str, factor: f64, gen_seed: u64) -> Result<Scenario> {
        let profile = all_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .ok_or_else(|| {
                EmError::InvalidConfig(format!(
                    "unknown scenario `{name}` (known: {})",
                    Scenario::registry_names().join(", ")
                ))
            })?;
        Ok(if (factor - 1.0).abs() < 1e-12 {
            Scenario::synthetic(profile, gen_seed)
        } else {
            Scenario::synthetic_scaled(profile, factor, gen_seed)
        })
    }

    /// Names of all built-in synthetic profiles.
    pub fn registry_names() -> Vec<&'static str> {
        all_profiles().into_iter().map(|p| p.name).collect()
    }

    /// The scenario's name (the artifact-cache key and the dataset name
    /// every report of this scenario carries).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Build the immutable per-dataset artifacts: the dataset itself,
    /// the featurizer, and the featurized pair embeddings.
    pub fn materialize(&self) -> Result<DatasetArtifacts> {
        let mut dataset = match &self.source {
            ScenarioSource::Synthetic { profile, gen_seed } => {
                generate(profile, &mut Rng::seed_from_u64(*gen_seed))?
            }
            ScenarioSource::CsvDir { dir } => em_core::load_magellan_dir(dir, &self.name)?,
        };
        // Reports key cells by scenario name; make the dataset agree even
        // when a scenario renames its source (scaled variants, CSV dirs).
        dataset.name = self.name.clone();
        let featurizer = Featurizer::new(&dataset, FeatureConfig::default())?;
        let features = featurizer.featurize_all(&dataset)?;
        Ok(DatasetArtifacts {
            dataset,
            featurizer,
            features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lookup_and_unknown_name() {
        assert!(Scenario::registry_names().contains(&"amazon-google"));
        let s = Scenario::by_name("amazon-google", 0.05, 7).unwrap();
        assert_eq!(s.name(), "amazon-google@0.05");
        let full = Scenario::by_name("amazon-google", 1.0, 7).unwrap();
        assert_eq!(full.name(), "amazon-google");
        assert!(Scenario::by_name("no-such-dataset", 1.0, 7).is_err());
    }

    #[test]
    fn materialize_is_deterministic_and_renames() {
        let s = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 11);
        let a = s.materialize().unwrap();
        let b = s.materialize().unwrap();
        assert_eq!(a.dataset.name, "amazon-google@0.04");
        assert_eq!(a.dataset.len(), b.dataset.len());
        assert_eq!(a.features.len(), a.dataset.len());
        assert_eq!(a.features.row(0), b.features.row(0));
    }

    #[test]
    fn missing_csv_dir_errors() {
        let s = Scenario::csv_dir("ghost", "/nonexistent/em-data");
        assert!(s.materialize().is_err());
    }
}
