//! The run worker: executes one [`RunSpec`] to a [`RunReport`].
//!
//! The active-learning protocol loop (§3.1 + §4.2: seed draw → train →
//! predict → select → label → repeat) lives in [`crate::session`] as
//! the step-driven [`MatchSession`] state machine; this module's
//! [`execute_run`] is a thin driver that steps a session against an
//! [`Oracle`], so the grid engine, `run_active_learning` and every
//! bench inherit the session redesign for free.
//!
//! The pre-redesign closed loop is preserved **verbatim** below as
//! [`execute_run_closed`] (public via
//! [`crate::runner::run_closed_loop`]): the golden tests in
//! `tests/session_api.rs` and the `em-bench` session bench pin the
//! session-driven path bit-identical (modulo wall-clock) to it for
//! every [`StrategySpec`](crate::strategies::StrategySpec), and the
//! bench additionally gates the step machinery's overhead at ≤ 5 %.
//!
//! Per-iteration wall-clock for training and selection is recorded — the
//! selection component is what Figure 6 plots (K-Means dominates it,
//! §5.2). Baseline cells (ZeroER / Full D) execute here too, shaped into
//! single-iteration [`RunReport`]s so they flow through the same
//! aggregation as active-learning cells.

use std::time::Instant;

use em_core::{
    BinaryConfusion, Dataset, EmError, Label, Membership, Oracle, PairIdx, PerfectOracle, Result,
    Rng,
};
use em_matcher::{train_matcher, MatcherConfig, TrainedMatcher};
use em_vector::Embeddings;

use crate::baselines::{full_d_f1, zeroer_f1};
use crate::config::ExperimentConfig;
use crate::report::{IterationRecord, RunReport};
use crate::session::MatchSession;
use crate::strategies::{SelectionContext, SelectionScratch, SelectionStrategy};

use super::artifacts::DatasetArtifacts;
use super::spec::{CellKind, RunSpec};

/// Execute a full active-learning run by driving a [`MatchSession`]
/// against the oracle (the engine's inner loop; the public single-run
/// entry point is
/// [`run_active_learning`](crate::runner::run_active_learning)).
///
/// `seed` drives every random decision (seed draw, matcher init,
/// residual budget allocation, strategy tie-breaks), making runs exactly
/// reproducible — and bit-identical (modulo wall-clock) to the
/// pre-redesign closed loop preserved in [`execute_run_closed`].
pub(crate) fn execute_run(
    dataset: &Dataset,
    features: &Embeddings,
    strategy: &mut dyn SelectionStrategy,
    oracle: &dyn Oracle,
    config: &ExperimentConfig,
    seed: u64,
) -> Result<RunReport> {
    let mut session =
        MatchSession::with_strategy(dataset, features, strategy, config.clone(), seed)?;
    session.drive(oracle)
}

/// A prepared run: dataset-level constants shared across iterations.
pub struct ActiveLearningRun<'a> {
    dataset: &'a Dataset,
    features: &'a Embeddings,
    valid_idx: Vec<PairIdx>,
    valid_labels: Vec<Label>,
    test_idx: Vec<PairIdx>,
    test_labels: Vec<Label>,
}

impl<'a> ActiveLearningRun<'a> {
    /// Prepare a run over `dataset` with precomputed pair `features`.
    ///
    /// Validation labels come from ground truth, mirroring the
    /// benchmark protocol the paper inherits from DITTO (§4.2: epoch
    /// selection by validation F1); the test set is only read for
    /// reporting.
    pub fn new(dataset: &'a Dataset, features: &'a Embeddings) -> Result<Self> {
        if features.len() != dataset.len() {
            return Err(EmError::DimensionMismatch {
                context: "run features".into(),
                expected: dataset.len(),
                actual: features.len(),
            });
        }
        let valid_idx = dataset.split().valid.clone();
        let valid_labels = dataset.ground_truth_of(&valid_idx);
        let test_idx = dataset.split().test.clone();
        let test_labels = dataset.ground_truth_of(&test_idx);
        Ok(ActiveLearningRun {
            dataset,
            features,
            valid_idx,
            valid_labels,
            test_idx,
            test_labels,
        })
    }

    /// Draw the balanced seed: `seed_size/2` matches and non-matches from
    /// the pool, labeled through the oracle (the standard assumption the
    /// paper takes from Kasai et al.: a balanced starter set exists).
    fn draw_seed(
        &self,
        pool: &mut Vec<PairIdx>,
        oracle: &dyn Oracle,
        seed_size: usize,
        rng: &mut Rng,
        membership: &mut Membership,
    ) -> (Vec<PairIdx>, Vec<Label>) {
        let mut shuffled = pool.clone();
        rng.shuffle(&mut shuffled);
        let half = seed_size / 2;
        let mut chosen = Vec::with_capacity(seed_size);
        let mut labels = Vec::with_capacity(seed_size);
        let mut n_pos = 0usize;
        let mut n_neg = 0usize;
        let mut leftovers = Vec::new();
        for &idx in &shuffled {
            if chosen.len() >= seed_size {
                break;
            }
            let label = self.dataset.ground_truth(idx);
            let take = if label.is_match() {
                if n_pos < half {
                    n_pos += 1;
                    true
                } else {
                    false
                }
            } else if n_neg < seed_size - half {
                n_neg += 1;
                true
            } else {
                false
            };
            if take {
                // Count the oracle query for budget accounting.
                labels.push(oracle.label(self.dataset, idx));
                chosen.push(idx);
            } else {
                leftovers.push(idx);
            }
        }
        // If one class ran short (tiny pools), fill with whatever remains.
        for &idx in &leftovers {
            if chosen.len() >= seed_size {
                break;
            }
            labels.push(oracle.label(self.dataset, idx));
            chosen.push(idx);
        }
        membership.begin();
        for &idx in &chosen {
            membership.insert(idx);
        }
        pool.retain(|&i| !membership.contains(i));
        (chosen, labels)
    }

    /// Train a matcher on `train ∪ weak` and measure test metrics.
    fn train_and_eval(
        &self,
        train: &[PairIdx],
        train_labels: &[Label],
        weak: &[(PairIdx, Label)],
        matcher_config: &MatcherConfig,
    ) -> Result<(TrainedMatcher, em_core::Metrics)> {
        let mut idx: Vec<PairIdx> = train.to_vec();
        let mut labels: Vec<Label> = train_labels.to_vec();
        for &(p, l) in weak {
            idx.push(p);
            labels.push(l);
        }
        let matcher = train_matcher(
            self.features,
            &idx,
            &labels,
            &self.valid_idx,
            &self.valid_labels,
            matcher_config,
        )?;
        let out = matcher.predict(self.features, &self.test_idx)?;
        let predicted: Vec<Label> = out.predictions.iter().map(|p| p.label).collect();
        let metrics = BinaryConfusion::from_labels(&predicted, &self.test_labels)?.metrics();
        Ok((matcher, metrics))
    }
}

/// The pre-redesign closed protocol loop, preserved verbatim as the
/// golden reference for the session-driven [`execute_run`] (public via
/// [`crate::runner::run_closed_loop`]; also the baseline the `em-bench`
/// session bench gates step-driven overhead against).
///
/// `seed` drives every random decision (seed draw, matcher init,
/// residual budget allocation, strategy tie-breaks), making runs exactly
/// reproducible.
pub(crate) fn execute_run_closed(
    dataset: &Dataset,
    features: &Embeddings,
    strategy: &mut dyn SelectionStrategy,
    oracle: &dyn Oracle,
    config: &ExperimentConfig,
    seed: u64,
) -> Result<RunReport> {
    config.validate()?;
    let run = ActiveLearningRun::new(dataset, features)?;
    let mut rng = Rng::seed_from_u64(seed);

    let mut pool: Vec<PairIdx> = dataset.split().train.clone();
    if pool.len() < config.al.seed_size {
        return Err(EmError::InvalidConfig(format!(
            "pool of {} smaller than seed size {}",
            pool.len(),
            config.al.seed_size
        )));
    }

    // One membership vector for every set test of the run (seed draw,
    // pool checks, selection removal), and one selection scratch reused
    // across iterations.
    let mut membership = Membership::new(dataset.len());
    let mut scratch = SelectionScratch::new();

    let (mut train, mut train_labels) = run.draw_seed(
        &mut pool,
        oracle,
        config.al.seed_size,
        &mut rng,
        &mut membership,
    );

    let mut iterations = Vec::with_capacity(config.al.iterations + 1);

    // Iteration 0: seed-only model (no weak set exists yet).
    let matcher_config = MatcherConfig {
        seed: rng.next_u64(),
        ..config.matcher.clone()
    };
    // em-lint: allow(wall-clock) -- fills a RunReport timing field; canonical() zeroes it
    let t0 = Instant::now();
    let (mut matcher, metrics) = run.train_and_eval(&train, &train_labels, &[], &matcher_config)?;
    let train_secs = t0.elapsed().as_secs_f64();
    iterations.push(IterationRecord {
        iteration: 0,
        labels_used: train.len(),
        test_f1_pct: metrics.f1_pct(),
        precision: metrics.precision,
        recall: metrics.recall,
        train_secs,
        select_secs: 0.0,
        new_positives: train_labels.iter().filter(|l| l.is_match()).count(),
        new_labels: train.len(),
        weak_used: 0,
    });

    for iteration in 0..config.al.iterations {
        if pool.is_empty() {
            break;
        }
        // Predict over pool and train with the current model.
        // em-lint: allow(wall-clock) -- fills a RunReport timing field; canonical() zeroes it
        let t_select = Instant::now();
        let pool_out = matcher.predict(features, &pool)?;
        let train_out = matcher.predict(features, &train)?;

        let budget = config.al.budget.min(pool.len());
        let mut ctx = SelectionContext {
            dataset,
            features,
            pool: &pool,
            train: &train,
            train_labels: &train_labels,
            pool_preds: &pool_out.predictions,
            pool_reprs: &pool_out.representations,
            train_reprs: &train_out.representations,
            budget,
            iteration,
            config,
            scratch: &mut scratch,
        };
        let selection = strategy.select(&mut ctx, &mut rng)?;
        let select_secs = t_select.elapsed().as_secs_f64();

        if selection.to_label.len() > budget {
            return Err(EmError::InvalidConfig(format!(
                "strategy `{}` exceeded its budget: {} > {budget}",
                strategy.name(),
                selection.to_label.len()
            )));
        }
        membership.begin();
        for &p in &pool {
            membership.insert(p);
        }
        for &p in &selection.to_label {
            if !membership.contains(p) {
                return Err(EmError::InvalidConfig(format!(
                    "strategy `{}` selected pair {p} outside the pool",
                    strategy.name()
                )));
            }
        }

        // Oracle labeling; move from pool to train.
        let mut new_positives = 0usize;
        for &p in &selection.to_label {
            let label = oracle.label(dataset, p);
            if label.is_match() {
                new_positives += 1;
            }
            train.push(p);
            train_labels.push(label);
        }
        membership.begin();
        for &p in &selection.to_label {
            membership.insert(p);
        }
        pool.retain(|&i| !membership.contains(i));

        // Train the next model on labels + weak pseudo-labels.
        let matcher_config = MatcherConfig {
            seed: rng.next_u64(),
            ..config.matcher.clone()
        };
        // em-lint: allow(wall-clock) -- fills a RunReport timing field; canonical() zeroes it
        let t_train = Instant::now();
        let (next_matcher, metrics) =
            run.train_and_eval(&train, &train_labels, &selection.weak, &matcher_config)?;
        let train_secs = t_train.elapsed().as_secs_f64();
        matcher = next_matcher;

        iterations.push(IterationRecord {
            iteration: iteration + 1,
            labels_used: train.len(),
            test_f1_pct: metrics.f1_pct(),
            precision: metrics.precision,
            recall: metrics.recall,
            train_secs,
            select_secs,
            new_positives,
            new_labels: selection.to_label.len(),
            weak_used: selection.weak.len(),
        });
    }

    Ok(RunReport {
        dataset: dataset.name.clone(),
        strategy: strategy.name(),
        seed,
        iterations,
    })
}

/// Shape a baseline's single test measurement into a one-iteration
/// [`RunReport`] so baselines aggregate like any other cell.
fn baseline_report(
    dataset: &Dataset,
    strategy: &str,
    seed: u64,
    metrics: &em_core::Metrics,
    labels_used: usize,
    positives: usize,
    train_secs: f64,
) -> RunReport {
    RunReport {
        dataset: dataset.name.clone(),
        strategy: strategy.to_string(),
        seed,
        iterations: vec![IterationRecord {
            iteration: 0,
            labels_used,
            test_f1_pct: metrics.f1 * 100.0,
            precision: metrics.precision,
            recall: metrics.recall,
            train_secs,
            select_secs: 0.0,
            new_positives: positives,
            new_labels: labels_used,
            weak_used: 0,
        }],
    }
}

/// Execute one grid spec against its scenario's shared artifacts,
/// returning the report and the run's wall-clock seconds.
pub(crate) fn execute_spec(
    spec: &RunSpec,
    artifacts: &DatasetArtifacts,
    config: &ExperimentConfig,
) -> Result<(RunReport, f64)> {
    // em-lint: allow(wall-clock) -- cell wall-clock for the engine's LPT accounting; canonical() zeroes it
    let t0 = Instant::now();
    let report = match spec.kind {
        CellKind::Active(strategy_spec) => {
            let mut strategy = strategy_spec.build();
            let oracle = PerfectOracle::new();
            execute_run(
                &artifacts.dataset,
                &artifacts.features,
                strategy.as_mut(),
                &oracle,
                config,
                spec.seed,
            )?
        }
        CellKind::ZeroEr => {
            let metrics = zeroer_f1(&artifacts.dataset, &artifacts.featurizer, spec.seed)?;
            baseline_report(
                &artifacts.dataset,
                "zeroer",
                spec.seed,
                &metrics,
                0,
                0,
                t0.elapsed().as_secs_f64(),
            )
        }
        CellKind::FullD => {
            let metrics = full_d_f1(&artifacts.dataset, &artifacts.features, &config.matcher)?;
            let train = &artifacts.dataset.split().train;
            let positives = artifacts
                .dataset
                .ground_truth_of(train)
                .iter()
                .filter(|l| l.is_match())
                .count();
            baseline_report(
                &artifacts.dataset,
                "full-d",
                spec.seed,
                &metrics,
                train.len(),
                positives,
                t0.elapsed().as_secs_f64(),
            )
        }
    };
    Ok((report, t0.elapsed().as_secs_f64()))
}
