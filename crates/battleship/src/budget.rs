//! Budget distribution (paper §3.4).
//!
//! The per-iteration budget `B` splits into `B⁺` (expected matches) and
//! `B⁻ = B − B⁺`. "Since match labels are harder to discover, especially
//! in the initial active learning iterations, we set the positive budget
//! B⁺ as B·max(0.8 − i/20, 0.5)" (§4.2). Each side's budget is then
//! shared across that side's connected components proportionally to size
//! (Eq. 2), with the rounding residue "randomly distributed among
//! connected components" — Example 6 is a unit test here.

use em_core::{EmError, Result, Rng};

/// The positively-skewed match budget `B⁺ = ⌊B · max(0.8 − i/20, 0.5)⌋`
/// for iteration `i` (0-based, matching the paper's indexing).
pub fn positive_budget(budget: usize, iteration: usize) -> usize {
    let frac = (0.8 - iteration as f64 / 20.0).max(0.5);
    (budget as f64 * frac).floor() as usize
}

/// Distribute `total` units over components of the given `sizes`
/// proportionally (Eq. 2), allocating the floor residue uniformly at
/// random among components that still have capacity (a component never
/// receives more budget than its size).
///
/// Returns per-component budgets summing to `min(total, Σ sizes)`.
pub fn distribute_budget(total: usize, sizes: &[usize], rng: &mut Rng) -> Result<Vec<usize>> {
    if sizes.is_empty() {
        return Ok(Vec::new());
    }
    if sizes.contains(&0) {
        return Err(EmError::InvalidConfig(
            "budget distribution over an empty component".into(),
        ));
    }
    let total_size: usize = sizes.iter().sum();
    let spendable = total.min(total_size);

    // Eq. 2: floor of the proportional share, capped by component size.
    let mut shares: Vec<usize> = sizes
        .iter()
        .map(|&s| (((spendable as u128) * (s as u128)) / (total_size as u128)) as usize)
        .collect();
    for (share, &size) in shares.iter_mut().zip(sizes) {
        *share = (*share).min(size);
    }

    // Random residue allocation among components with remaining capacity.
    let mut allocated: usize = shares.iter().sum();
    while allocated < spendable {
        let open: Vec<usize> = (0..sizes.len()).filter(|&c| shares[c] < sizes[c]).collect();
        if open.is_empty() {
            break;
        }
        let c = *rng.choose(&open);
        shares[c] += 1;
        allocated += 1;
    }
    Ok(shares)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_budget_schedule_matches_paper() {
        // i=0 → 80, decreasing by 5 per iteration, floored at 50.
        assert_eq!(positive_budget(100, 0), 80);
        assert_eq!(positive_budget(100, 1), 75);
        assert_eq!(positive_budget(100, 2), 70);
        assert_eq!(positive_budget(100, 5), 55);
        assert_eq!(positive_budget(100, 6), 50);
        assert_eq!(positive_budget(100, 7), 50);
        assert_eq!(positive_budget(100, 100), 50);
    }

    /// The paper's Example 6: 3,000 match-predicted samples in 10
    /// components (2×500, 4×300, 4×200), B⁺ = 50 → shares 8/8/5/5/5/5/
    /// 3/3/3/3 with a residue of 2 randomly allocated.
    #[test]
    fn example6_budget_shares_match_paper() {
        let sizes = [500, 500, 300, 300, 300, 300, 200, 200, 200, 200];
        let mut rng = Rng::seed_from_u64(1);
        let shares = distribute_budget(50, &sizes, &mut rng).unwrap();
        assert_eq!(shares.iter().sum::<usize>(), 50);
        // Base shares before residue: 8,8,5,5,5,5,3,3,3,3 (sum 48); the
        // residue of 2 adds at most 2 anywhere.
        let base = [8, 8, 5, 5, 5, 5, 3, 3, 3, 3];
        let mut extra = 0;
        for (s, b) in shares.iter().zip(&base) {
            assert!(*s >= *b, "share {s} below base {b}");
            extra += s - b;
        }
        assert_eq!(extra, 2, "residue misallocated: {shares:?}");
    }

    #[test]
    fn budget_larger_than_population_is_capped() {
        let mut rng = Rng::seed_from_u64(2);
        let shares = distribute_budget(100, &[3, 4], &mut rng).unwrap();
        assert_eq!(shares, vec![3, 4]);
    }

    #[test]
    fn share_never_exceeds_component_size() {
        let mut rng = Rng::seed_from_u64(3);
        // Highly skewed sizes with one tiny component.
        let sizes = [1, 999];
        for _ in 0..20 {
            let shares = distribute_budget(500, &sizes, &mut rng).unwrap();
            assert!(shares[0] <= 1);
            assert_eq!(shares.iter().sum::<usize>(), 500);
        }
    }

    #[test]
    fn zero_budget_gives_zero_shares() {
        let mut rng = Rng::seed_from_u64(4);
        let shares = distribute_budget(0, &[10, 20], &mut rng).unwrap();
        assert_eq!(shares, vec![0, 0]);
    }

    #[test]
    fn empty_components_rejected_empty_list_ok() {
        let mut rng = Rng::seed_from_u64(5);
        assert!(distribute_budget(5, &[3, 0], &mut rng).is_err());
        assert!(distribute_budget(5, &[], &mut rng).unwrap().is_empty());
    }

    #[test]
    fn proportionality_holds_for_large_budgets() {
        let mut rng = Rng::seed_from_u64(6);
        let sizes = [100, 200, 700];
        let shares = distribute_budget(100, &sizes, &mut rng).unwrap();
        assert_eq!(shares.iter().sum::<usize>(), 100);
        // Shares within ±1 of the exact proportional values 10/20/70.
        assert!((shares[0] as i64 - 10).abs() <= 1, "{shares:?}");
        assert!((shares[1] as i64 - 20).abs() <= 1, "{shares:?}");
        assert!((shares[2] as i64 - 70).abs() <= 1, "{shares:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let sizes = [7, 13, 29, 3];
        let a = distribute_budget(17, &sizes, &mut Rng::seed_from_u64(9)).unwrap();
        let b = distribute_budget(17, &sizes, &mut Rng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
