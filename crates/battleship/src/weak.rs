//! Weak supervision (§3.7).
//!
//! "We enrich the training set without exceeding the labeling budget ...
//! unlabeled samples are augmented into the training set with their
//! corresponding model-based prediction, treated as a label." The
//! battleship variant picks, per predicted side and per connected
//! component (budget via Eq. 2 again), the samples *minimizing* the
//! spatial certainty score of Eq. 4 — i.e. the spatially most confident
//! ones. The DAL variant (Kasai et al.) minimizes plain conditional
//! entropy instead; Figure 10 compares the two.

use em_core::{EmError, Label, PairIdx, Prediction, Result, Rng};
use em_graph::{binary_entropy, certainty_score, PairGraph};

use crate::budget::distribute_budget;
use crate::config::WeakMethod;
use crate::spatial::SpatialIndex;

/// Pick the weak set from one prediction side.
///
/// * `side` — spatial index over this side's pool nodes,
/// * `hetero`/`to_hetero` — heterogeneous graph and the side→hetero node
///   map (used by the [`WeakMethod::Spatial`] score),
/// * `side_preds[i]` — prediction of side node `i`,
/// * `side_pairs[i]` — global pair index of side node `i`,
/// * `side_budget` — this side's share of the weak budget.
///
/// Returns `(global pair index, pseudo-label)` pairs.
#[allow(clippy::too_many_arguments)]
pub fn weak_side(
    side: &SpatialIndex,
    hetero: &PairGraph,
    to_hetero: &[usize],
    side_preds: &[Prediction],
    side_pairs: &[PairIdx],
    side_budget: usize,
    method: WeakMethod,
    beta: f64,
    rng: &mut Rng,
) -> Result<Vec<(PairIdx, Label)>> {
    let n = side.len();
    if to_hetero.len() != n || side_preds.len() != n || side_pairs.len() != n {
        return Err(EmError::DimensionMismatch {
            context: "weak_side aligned inputs".into(),
            expected: n,
            actual: to_hetero.len().min(side_preds.len()).min(side_pairs.len()),
        });
    }
    if side_budget == 0 || n == 0 {
        return Ok(Vec::new());
    }

    let sizes: Vec<usize> = side.components.iter().map(Vec::len).collect();
    let shares = distribute_budget(side_budget, &sizes, rng)?;

    let mut out = Vec::with_capacity(side_budget);
    for (comp, &share) in side.components.iter().zip(&shares) {
        if share == 0 {
            continue;
        }
        // Score = the uncertainty to *minimize*.
        let scores: Vec<f64> = comp
            .iter()
            .map(|&v| match method {
                WeakMethod::Spatial => certainty_score(hetero, to_hetero[v], beta),
                WeakMethod::Entropy => {
                    Ok(binary_entropy(side_preds[v].confidence_in_label() as f64))
                }
            })
            .collect::<Result<_>>()?;
        let mut order: Vec<usize> = (0..comp.len()).collect();
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(comp[a].cmp(&comp[b]))
        });
        for &i in order.iter().take(share) {
            let v = comp[i];
            out.push((side_pairs[v], side_preds[v].label));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::{SpatialIndex, SpatialParams};
    use em_graph::NodeKind;
    use em_vector::Embeddings;

    fn build_side(n: usize, seed: u64) -> (SpatialIndex, Vec<Prediction>, Vec<PairIdx>) {
        let mut rng = Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.normal() as f32, rng.normal() as f32, 1.0])
            .collect();
        let data = Embeddings::from_rows(&rows).unwrap();
        let preds: Vec<Prediction> = (0..n)
            .map(|i| Prediction::from_prob(0.6 + 0.39 * (i as f32 / n as f32)))
            .collect();
        let confs: Vec<f32> = preds.iter().map(|p| p.confidence_in_label()).collect();
        let idx = SpatialIndex::build(
            &data,
            &vec![NodeKind::PredictedMatch; n],
            &confs,
            &SpatialParams {
                q: 2,
                extra_ratio: 0.05,
                cluster_min_frac: 0.05,
                cluster_max_frac: 0.5,
                kselect_sample: 64,
                ann: em_vector::AnnPolicy::with_threshold(4096),
                seed,
            },
        )
        .unwrap();
        let pairs: Vec<PairIdx> = (100..100 + n).collect();
        (idx, preds, pairs)
    }

    #[test]
    fn entropy_method_picks_most_confident() {
        let (idx, preds, pairs) = build_side(20, 1);
        let to_hetero: Vec<usize> = (0..20).collect();
        let mut rng = Rng::seed_from_u64(2);
        let weak = weak_side(
            &idx,
            &idx.graph,
            &to_hetero,
            &preds,
            &pairs,
            5,
            WeakMethod::Entropy,
            0.5,
            &mut rng,
        )
        .unwrap();
        assert_eq!(weak.len(), 5);
        // All pseudo-labels are the predicted side's label.
        assert!(weak.iter().all(|(_, l)| l.is_match()));
        // The most confident node overall (last index, prob ≈ 0.99) must
        // be picked unless its component got zero budget — with 20 nodes
        // and budget 5 across ≤ a few components this holds for this
        // seed.
        assert!(
            weak.iter().any(|&(p, _)| p == 119),
            "most confident pair missing: {weak:?}"
        );
    }

    #[test]
    fn budget_zero_or_empty_side() {
        let (idx, preds, pairs) = build_side(10, 3);
        let to_hetero: Vec<usize> = (0..10).collect();
        let mut rng = Rng::seed_from_u64(4);
        assert!(weak_side(
            &idx,
            &idx.graph,
            &to_hetero,
            &preds,
            &pairs,
            0,
            WeakMethod::Spatial,
            0.5,
            &mut rng
        )
        .unwrap()
        .is_empty());
    }

    #[test]
    fn spatial_method_uses_heterogeneous_graph() {
        let (idx, preds, pairs) = build_side(15, 5);
        let to_hetero: Vec<usize> = (0..15).collect();
        let mut rng = Rng::seed_from_u64(6);
        let weak = weak_side(
            &idx,
            &idx.graph,
            &to_hetero,
            &preds,
            &pairs,
            6,
            WeakMethod::Spatial,
            0.5,
            &mut rng,
        )
        .unwrap();
        assert_eq!(weak.len(), 6);
        // Distinct pairs.
        let mut ids: Vec<PairIdx> = weak.iter().map(|&(p, _)| p).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn validates_alignment() {
        let (idx, preds, pairs) = build_side(8, 7);
        let mut rng = Rng::seed_from_u64(8);
        let short_map = vec![0usize; 3];
        assert!(weak_side(
            &idx,
            &idx.graph,
            &short_map,
            &preds,
            &pairs,
            2,
            WeakMethod::Entropy,
            0.5,
            &mut rng
        )
        .is_err());
    }
}
