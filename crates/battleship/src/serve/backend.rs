//! Where persisted session snapshots live.
//!
//! A [`SnapshotBackend`] is a tiny key→bytes store: the
//! [`SessionStore`](super::SessionStore) writes each session's encoded
//! snapshot under its session id and reads it back on cache miss or
//! crash recovery. Two implementations ship:
//!
//! * [`MemoryBackend`] — a mutexed map; survives store drops (hand the
//!   same backend to a new store), not process exits. The unit-test and
//!   bench backend.
//! * [`DirBackend`] — one file per session under a directory, written
//!   atomically (temp file + rename) so a crash mid-checkpoint never
//!   leaves a half-written snapshot under the live key.
//!
//! Backends store opaque bytes; the codec (and thus corruption
//! detection) lives a layer above in
//! [`SnapshotCodec`](super::SnapshotCodec).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use em_core::{EmError, Result};

/// A keyed byte store for encoded session snapshots.
///
/// Implementations must be safe to call from concurrent store
/// operations (`Send + Sync`); keys are session ids.
pub trait SnapshotBackend: Send + Sync {
    /// Persist `bytes` under `key`, replacing any previous value.
    fn put(&self, key: &str, bytes: &[u8]) -> Result<()>;
    /// Read the bytes under `key`, or `None` if the key has never been
    /// written (I/O failures are `Err`, not `None`).
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>>;
    /// Remove `key` (idempotent; removing an absent key is `Ok`).
    fn remove(&self, key: &str) -> Result<()>;
    /// All keys currently persisted, in sorted order.
    fn keys(&self) -> Result<Vec<String>>;
}

/// Delegation through shared ownership: `Arc<B>` is a backend whenever
/// `B` is, so one backend can outlive any particular store (the crash
/// recovery tests drop a store and reopen a new one over the same
/// `Arc<MemoryBackend>`).
impl<B: SnapshotBackend + ?Sized> SnapshotBackend for std::sync::Arc<B> {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        (**self).put(key, bytes)
    }
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        (**self).get(key)
    }
    fn remove(&self, key: &str) -> Result<()> {
        (**self).remove(key)
    }
    fn keys(&self) -> Result<Vec<String>> {
        (**self).keys()
    }
}

/// An in-memory backend: a mutexed `BTreeMap`.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    inner: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemoryBackend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SnapshotBackend for MemoryBackend {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        self.inner
            .lock()
            .expect("memory backend poisoned")
            .insert(key.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        Ok(self
            .inner
            .lock()
            .expect("memory backend poisoned")
            .get(key)
            .cloned())
    }

    fn remove(&self, key: &str) -> Result<()> {
        self.inner
            .lock()
            .expect("memory backend poisoned")
            .remove(key);
        Ok(())
    }

    fn keys(&self) -> Result<Vec<String>> {
        Ok(self
            .inner
            .lock()
            .expect("memory backend poisoned")
            .keys()
            .cloned()
            .collect())
    }
}

/// Extension of snapshot files written by [`DirBackend`].
const SNAPSHOT_EXT: &str = "emsnap";

/// A directory-of-files backend: `<dir>/<key>.emsnap` per session.
///
/// Writes go through a temp file and an atomic rename, so a crash
/// mid-write leaves the previous snapshot intact. Keys are restricted
/// to filename-safe characters (`[A-Za-z0-9._-]`) so a session id can
/// never escape the directory.
#[derive(Debug)]
pub struct DirBackend {
    dir: PathBuf,
}

impl DirBackend {
    /// Open (creating if needed) a snapshot directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            EmError::Storage(format!("creating snapshot dir {}: {e}", dir.display()))
        })?;
        Ok(DirBackend { dir })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> Result<PathBuf> {
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
            || key.starts_with('.')
        {
            return Err(EmError::Storage(format!(
                "session key `{key}` is not filename-safe ([A-Za-z0-9._-], not dot-leading)"
            )));
        }
        Ok(self.dir.join(format!("{key}.{SNAPSHOT_EXT}")))
    }
}

impl SnapshotBackend for DirBackend {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        let path = self.path_for(key)?;
        let tmp = self.dir.join(format!(".{key}.{SNAPSHOT_EXT}.tmp"));
        std::fs::write(&tmp, bytes)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| EmError::Storage(format!("writing snapshot {}: {e}", path.display())))
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        let path = self.path_for(key)?;
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(EmError::Storage(format!(
                "reading snapshot {}: {e}",
                path.display()
            ))),
        }
    }

    fn remove(&self, key: &str) -> Result<()> {
        let path = self.path_for(key)?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(EmError::Storage(format!(
                "removing snapshot {}: {e}",
                path.display()
            ))),
        }
    }

    fn keys(&self) -> Result<Vec<String>> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| {
            EmError::Storage(format!("listing snapshot dir {}: {e}", self.dir.display()))
        })?;
        let suffix = format!(".{SNAPSHOT_EXT}");
        let mut keys = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| {
                EmError::Storage(format!("listing snapshot dir {}: {e}", self.dir.display()))
            })?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with('.') {
                continue; // in-flight temp files
            }
            if let Some(key) = name.strip_suffix(&suffix) {
                keys.push(key.to_string());
            }
        }
        keys.sort_unstable();
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn SnapshotBackend) {
        assert_eq!(backend.keys().unwrap(), Vec::<String>::new());
        assert_eq!(backend.get("a").unwrap(), None);
        backend.put("a", b"one").unwrap();
        backend.put("b", b"two").unwrap();
        backend.put("a", b"three").unwrap(); // overwrite
        assert_eq!(backend.get("a").unwrap().unwrap(), b"three");
        assert_eq!(backend.keys().unwrap(), vec!["a", "b"]);
        backend.remove("a").unwrap();
        backend.remove("a").unwrap(); // idempotent
        assert_eq!(backend.get("a").unwrap(), None);
        assert_eq!(backend.keys().unwrap(), vec!["b"]);
    }

    #[test]
    fn memory_backend_contract() {
        exercise(&MemoryBackend::new());
    }

    #[test]
    fn dir_backend_contract_and_key_safety() {
        let dir = std::env::temp_dir().join(format!("emsnap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = DirBackend::new(&dir).unwrap();
        exercise(&backend);
        // Unsafe keys cannot touch the filesystem.
        for bad in ["", "../escape", "a/b", ".hidden", "nul\0byte"] {
            assert!(backend.put(bad, b"x").is_err(), "key {bad:?} accepted");
        }
        // A second backend over the same directory sees the data.
        let reopened = DirBackend::new(&dir).unwrap();
        assert_eq!(reopened.keys().unwrap(), vec!["b"]);
        assert_eq!(reopened.get("b").unwrap().unwrap(), b"two");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
