//! Where persisted session snapshots live.
//!
//! A [`SnapshotBackend`] is a tiny key→bytes store: the
//! [`SessionStore`](super::SessionStore) writes each session's encoded
//! snapshot under its session id and reads it back on cache miss or
//! crash recovery. Two implementations ship:
//!
//! * [`MemoryBackend`] — a mutexed map; survives store drops (hand the
//!   same backend to a new store), not process exits. The unit-test and
//!   bench backend.
//! * [`DirBackend`] — **generational** files per session under a
//!   directory: every `put` writes a new frame atomically (temp file +
//!   rename) and the last [`DirBackend::keep`] frames are retained, so
//!   recovery can fall back past a torn or corrupt newest frame.
//!   Frames that fail to decode are moved into `quarantine/` by
//!   [`SnapshotBackend::quarantine`] instead of being deleted — they
//!   are the post-mortem evidence.
//!
//! Backends store opaque bytes; the codec (and thus corruption
//! detection) lives a layer above in
//! [`SnapshotCodec`](super::SnapshotCodec). The store walks
//! [`SnapshotBackend::history`] newest→oldest when the newest frame is
//! undecodable.
//!
//! No backend panics on a poisoned lock: a panicking thread elsewhere
//! in the process must degrade that one operation, never take the whole
//! persistence layer down.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use em_core::{EmError, Result};

/// A keyed byte store for encoded session snapshots.
///
/// Implementations must be safe to call from concurrent store
/// operations (`Send + Sync`); keys are session ids.
pub trait SnapshotBackend: Send + Sync {
    /// Persist `bytes` under `key` as the newest frame, superseding (not
    /// necessarily destroying) any previous value.
    fn put(&self, key: &str, bytes: &[u8]) -> Result<()>;
    /// Read the newest frame under `key`, or `None` if the key has never
    /// been written (I/O failures are `Err`, not `None`).
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>>;
    /// Remove every frame of `key` (idempotent; removing an absent key
    /// is `Ok`).
    fn remove(&self, key: &str) -> Result<()>;
    /// All keys currently persisted, in sorted order.
    fn keys(&self) -> Result<Vec<String>>;

    /// Every retained frame of `key`, newest first, as
    /// `(generation, bytes)` pairs. Single-frame backends return at most
    /// one entry with generation 0; the default forwards to
    /// [`SnapshotBackend::get`].
    fn history(&self, key: &str) -> Result<Vec<(u64, Vec<u8>)>> {
        Ok(self
            .get(key)?
            .map(|bytes| vec![(0, bytes)])
            .unwrap_or_default())
    }

    /// Move the given frame aside so recovery never reads it again
    /// (called on frames that fail to decode). Backends without frame
    /// storage may treat this as bookkeeping-only; it must be idempotent.
    fn quarantine(&self, _key: &str, _generation: u64) -> Result<()> {
        Ok(())
    }
}

/// Delegation through shared ownership: `Arc<B>` is a backend whenever
/// `B` is, so one backend can outlive any particular store (the crash
/// recovery tests drop a store and reopen a new one over the same
/// `Arc<MemoryBackend>`).
impl<B: SnapshotBackend + ?Sized> SnapshotBackend for std::sync::Arc<B> {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        (**self).put(key, bytes)
    }
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        (**self).get(key)
    }
    fn remove(&self, key: &str) -> Result<()> {
        (**self).remove(key)
    }
    fn keys(&self) -> Result<Vec<String>> {
        (**self).keys()
    }
    fn history(&self, key: &str) -> Result<Vec<(u64, Vec<u8>)>> {
        (**self).history(key)
    }
    fn quarantine(&self, key: &str, generation: u64) -> Result<()> {
        (**self).quarantine(key, generation)
    }
}

/// Frames retained per key by default (newest included).
const DEFAULT_KEEP: usize = 4;

/// Per-key frame history: `(generation, bytes)` pairs, oldest first.
type FrameMap = BTreeMap<String, VecDeque<(u64, Vec<u8>)>>;

/// An in-memory backend: a mutexed map of per-key frame histories.
#[derive(Debug)]
pub struct MemoryBackend {
    inner: Mutex<FrameMap>,
    keep: usize,
}

impl Default for MemoryBackend {
    fn default() -> Self {
        Self::with_keep(DEFAULT_KEEP)
    }
}

impl MemoryBackend {
    /// An empty backend retaining the default number of frames per key.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty backend retaining the last `keep` frames per key
    /// (`keep` is clamped to at least 1).
    pub fn with_keep(keep: usize) -> Self {
        MemoryBackend {
            inner: Mutex::new(BTreeMap::new()),
            keep: keep.max(1),
        }
    }

    /// The map lock, recovered from poisoning. Every operation below
    /// mutates the map through single `BTreeMap`/`VecDeque` calls that
    /// either complete or leave the value untouched, so data behind a
    /// poisoned lock is still consistent — recover it instead of
    /// panicking the next caller (`into_inner`-style).
    fn map(&self) -> MutexGuard<'_, FrameMap> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl SnapshotBackend for MemoryBackend {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        let mut map = self.map();
        let frames = map.entry(key.to_string()).or_default();
        let gen = frames.back().map(|(g, _)| g + 1).unwrap_or(0);
        frames.push_back((gen, bytes.to_vec()));
        while frames.len() > self.keep {
            frames.pop_front();
        }
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        Ok(self
            .map()
            .get(key)
            .and_then(|frames| frames.back())
            .map(|(_, bytes)| bytes.clone()))
    }

    fn remove(&self, key: &str) -> Result<()> {
        self.map().remove(key);
        Ok(())
    }

    fn keys(&self) -> Result<Vec<String>> {
        Ok(self
            .map()
            .iter()
            .filter(|(_, frames)| !frames.is_empty())
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn history(&self, key: &str) -> Result<Vec<(u64, Vec<u8>)>> {
        Ok(self
            .map()
            .get(key)
            .map(|frames| frames.iter().rev().cloned().collect())
            .unwrap_or_default())
    }

    fn quarantine(&self, key: &str, generation: u64) -> Result<()> {
        if let Some(frames) = self.map().get_mut(key) {
            frames.retain(|(g, _)| *g != generation);
        }
        Ok(())
    }
}

/// Extension of snapshot files written by [`DirBackend`].
const SNAPSHOT_EXT: &str = "emsnap";
/// Subdirectory corrupt frames are moved into.
const QUARANTINE_DIR: &str = "quarantine";

/// A directory-of-files backend with generational frames:
/// `<dir>/<key>/g<generation>.emsnap` per checkpoint, newest `keep`
/// retained.
///
/// Writes go through a temp file and an atomic rename, so a crash
/// mid-write leaves every committed frame intact (the orphaned temp
/// file is swept on the next [`DirBackend::new`]). Keys are restricted
/// to filename-safe characters (`[A-Za-z0-9._-]`) so a session id can
/// never escape the directory; `quarantine` is reserved for the corrupt
/// frames moved aside by recovery.
#[derive(Debug)]
pub struct DirBackend {
    dir: PathBuf,
    keep: usize,
    /// Next generation per key, so each `put` is O(1) after the first.
    next_gen: Mutex<BTreeMap<String, u64>>,
}

impl DirBackend {
    /// Open (creating if needed) a snapshot directory with the default
    /// retention, sweeping any orphaned temp files a crash left behind.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::with_generations(dir, DEFAULT_KEEP)
    }

    /// Open a snapshot directory retaining the last `keep` frames per
    /// key (clamped to at least 1).
    pub fn with_generations(dir: impl Into<PathBuf>, keep: usize) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            EmError::storage_io(format!("creating snapshot dir {}", dir.display()), &e)
        })?;
        let backend = DirBackend {
            dir,
            keep: keep.max(1),
            next_gen: Mutex::new(BTreeMap::new()),
        };
        backend.sweep_orphaned_temp_files()?;
        Ok(backend)
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Frames retained per key.
    pub fn keep(&self) -> usize {
        self.keep
    }

    /// File names currently in `quarantine/` (sorted) — the corrupt
    /// frames recovery has moved aside.
    pub fn quarantined(&self) -> Result<Vec<String>> {
        let qdir = self.dir.join(QUARANTINE_DIR);
        if !qdir.exists() {
            return Ok(Vec::new());
        }
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&qdir)
            .map_err(|e| EmError::storage_io(format!("listing {}", qdir.display()), &e))?
        {
            let entry = entry
                .map_err(|e| EmError::storage_io(format!("listing {}", qdir.display()), &e))?;
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    /// Remove `.tmp` files orphaned by a crash between write and rename
    /// — they were never committed, so deleting them is always safe.
    fn sweep_orphaned_temp_files(&self) -> Result<()> {
        let mut dirs = vec![self.dir.clone()];
        for entry in std::fs::read_dir(&self.dir)
            .map_err(|e| EmError::storage_io(format!("listing {}", self.dir.display()), &e))?
        {
            let entry = entry
                .map_err(|e| EmError::storage_io(format!("listing {}", self.dir.display()), &e))?;
            let path = entry.path();
            if path.is_dir() && entry.file_name().to_str() != Some(QUARANTINE_DIR) {
                dirs.push(path);
            }
        }
        for dir in dirs {
            for entry in std::fs::read_dir(&dir)
                .map_err(|e| EmError::storage_io(format!("listing {}", dir.display()), &e))?
            {
                let entry = entry
                    .map_err(|e| EmError::storage_io(format!("listing {}", dir.display()), &e))?;
                let name = entry.file_name();
                let is_tmp = name.to_str().is_some_and(|n| n.ends_with(".tmp"));
                if is_tmp && entry.path().is_file() {
                    std::fs::remove_file(entry.path()).map_err(|e| {
                        EmError::storage_io(
                            format!("sweeping orphan {}", entry.path().display()),
                            &e,
                        )
                    })?;
                }
            }
        }
        Ok(())
    }

    fn key_dir(&self, key: &str) -> Result<PathBuf> {
        if key.is_empty()
            || key == QUARANTINE_DIR
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
            || key.starts_with('.')
        {
            return Err(EmError::Storage(format!(
                "session key `{key}` is not filename-safe \
                 ([A-Za-z0-9._-], not dot-leading, not `{QUARANTINE_DIR}`)"
            )));
        }
        Ok(self.dir.join(key))
    }

    fn frame_name(generation: u64) -> String {
        format!("g{generation:016x}.{SNAPSHOT_EXT}")
    }

    /// Parse `g<16-hex>.emsnap` back into a generation.
    fn parse_frame_name(name: &str) -> Option<u64> {
        let hex = name
            .strip_prefix('g')?
            .strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16).ok()
    }

    /// Generations present for `key`, ascending. Missing dir ⇒ empty.
    fn generations(&self, key: &str) -> Result<Vec<u64>> {
        let dir = self.key_dir(key)?;
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => {
                return Err(EmError::storage_io(
                    format!("listing {}", dir.display()),
                    &e,
                ))
            }
        };
        let mut gens = Vec::new();
        for entry in entries {
            let entry =
                entry.map_err(|e| EmError::storage_io(format!("listing {}", dir.display()), &e))?;
            if let Some(gen) = entry.file_name().to_str().and_then(Self::parse_frame_name) {
                gens.push(gen);
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }
}

impl SnapshotBackend for DirBackend {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        let dir = self.key_dir(key)?;
        std::fs::create_dir_all(&dir)
            .map_err(|e| EmError::storage_io(format!("creating {}", dir.display()), &e))?;
        let gen = {
            let mut next = self.next_gen.lock().unwrap_or_else(PoisonError::into_inner);
            let gen = match next.get(key) {
                Some(&g) => g,
                None => self.generations(key)?.last().map(|g| g + 1).unwrap_or(0),
            };
            next.insert(key.to_string(), gen + 1);
            gen
        };
        let path = dir.join(Self::frame_name(gen));
        let tmp = dir.join(format!(".{}.tmp", Self::frame_name(gen)));
        std::fs::write(&tmp, bytes)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| EmError::storage_io(format!("writing snapshot {}", path.display()), &e))?;
        // Prune past the retention window, oldest first.
        let gens = self.generations(key)?;
        if gens.len() > self.keep {
            for old in &gens[..gens.len() - self.keep] {
                let old_path = dir.join(Self::frame_name(*old));
                match std::fs::remove_file(&old_path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => {
                        return Err(EmError::storage_io(
                            format!("pruning old frame {}", old_path.display()),
                            &e,
                        ))
                    }
                }
            }
        }
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        let dir = self.key_dir(key)?;
        let Some(&newest) = self.generations(key)?.last() else {
            return Ok(None);
        };
        let path = dir.join(Self::frame_name(newest));
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(EmError::storage_io(
                format!("reading snapshot {}", path.display()),
                &e,
            )),
        }
    }

    fn remove(&self, key: &str) -> Result<()> {
        let dir = self.key_dir(key)?;
        self.next_gen
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(key);
        match std::fs::remove_dir_all(&dir) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(EmError::storage_io(
                format!("removing snapshots {}", dir.display()),
                &e,
            )),
        }
    }

    fn keys(&self) -> Result<Vec<String>> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| EmError::storage_io(format!("listing {}", self.dir.display()), &e))?;
        let mut keys = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| EmError::storage_io(format!("listing {}", self.dir.display()), &e))?;
            if !entry.path().is_dir() {
                continue;
            }
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name == QUARANTINE_DIR || name.starts_with('.') {
                continue;
            }
            if !self.generations(name)?.is_empty() {
                keys.push(name.to_string());
            }
        }
        keys.sort_unstable();
        Ok(keys)
    }

    fn history(&self, key: &str) -> Result<Vec<(u64, Vec<u8>)>> {
        let dir = self.key_dir(key)?;
        let mut frames = Vec::new();
        for gen in self.generations(key)?.into_iter().rev() {
            let path = dir.join(Self::frame_name(gen));
            match std::fs::read(&path) {
                Ok(bytes) => frames.push((gen, bytes)),
                // Pruned concurrently — older than anything we care about.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(EmError::storage_io(
                        format!("reading snapshot {}", path.display()),
                        &e,
                    ))
                }
            }
        }
        Ok(frames)
    }

    fn quarantine(&self, key: &str, generation: u64) -> Result<()> {
        let src = self.key_dir(key)?.join(Self::frame_name(generation));
        let qdir = self.dir.join(QUARANTINE_DIR);
        std::fs::create_dir_all(&qdir)
            .map_err(|e| EmError::storage_io(format!("creating {}", qdir.display()), &e))?;
        let dst = qdir.join(format!("{key}.{}", Self::frame_name(generation)));
        match std::fs::rename(&src, &dst) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()), // idempotent
            Err(e) => Err(EmError::storage_io(
                format!("quarantining {}", src.display()),
                &e,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn SnapshotBackend) {
        assert_eq!(backend.keys().unwrap(), Vec::<String>::new());
        assert_eq!(backend.get("a").unwrap(), None);
        assert_eq!(backend.history("a").unwrap(), vec![]);
        backend.put("a", b"one").unwrap();
        backend.put("b", b"two").unwrap();
        backend.put("a", b"three").unwrap(); // supersede
        assert_eq!(backend.get("a").unwrap().unwrap(), b"three");
        assert_eq!(backend.keys().unwrap(), vec!["a", "b"]);
        // History is newest first and retains the superseded frame.
        let history = backend.history("a").unwrap();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].1, b"three");
        assert_eq!(history[1].1, b"one");
        assert!(history[0].0 > history[1].0, "generations not descending");
        backend.remove("a").unwrap();
        backend.remove("a").unwrap(); // idempotent
        assert_eq!(backend.get("a").unwrap(), None);
        assert_eq!(backend.keys().unwrap(), vec!["b"]);
    }

    fn retention(backend: &dyn SnapshotBackend, keep: usize) {
        for i in 0..10u8 {
            backend.put("k", &[i]).unwrap();
        }
        let history = backend.history("k").unwrap();
        assert_eq!(history.len(), keep, "retention window not enforced");
        assert_eq!(history[0].1, vec![9], "newest frame wrong");
        assert_eq!(backend.get("k").unwrap().unwrap(), vec![9]);
    }

    #[test]
    fn memory_backend_contract() {
        exercise(&MemoryBackend::new());
        retention(&MemoryBackend::new(), DEFAULT_KEEP);
    }

    #[test]
    fn memory_backend_recovers_from_poisoned_lock() {
        let backend = MemoryBackend::new();
        backend.put("before", b"ok").unwrap();
        // Poison the mutex: panic while holding the lock (as a panicking
        // serve-layer thread would).
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = backend.inner.lock().unwrap();
            panic!("worker thread dies mid-operation");
        }));
        assert!(poisoned.is_err());
        assert!(backend.inner.lock().is_err(), "lock not actually poisoned");
        // Every subsequent op still succeeds — the store degrades one
        // operation, never the whole backend.
        assert_eq!(backend.get("before").unwrap().unwrap(), b"ok");
        backend.put("after", b"also ok").unwrap();
        assert_eq!(backend.keys().unwrap(), vec!["after", "before"]);
        backend.remove("before").unwrap();
        assert_eq!(backend.keys().unwrap(), vec!["after"]);
    }

    #[test]
    fn memory_backend_quarantine_hides_a_generation() {
        let backend = MemoryBackend::new();
        backend.put("k", b"good-old").unwrap();
        backend.put("k", b"bad-new").unwrap();
        let newest_gen = backend.history("k").unwrap()[0].0;
        backend.quarantine("k", newest_gen).unwrap();
        assert_eq!(backend.get("k").unwrap().unwrap(), b"good-old");
        backend.quarantine("k", newest_gen).unwrap(); // idempotent
        assert_eq!(backend.history("k").unwrap().len(), 1);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("emsnap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dir_backend_contract_and_key_safety() {
        let dir = temp_dir("contract");
        let backend = DirBackend::new(&dir).unwrap();
        exercise(&backend);
        retention(&DirBackend::new(dir.join("ret")).unwrap(), DEFAULT_KEEP);
        // Unsafe keys cannot touch the filesystem.
        for bad in ["", "../escape", "a/b", ".hidden", "nul\0byte", "quarantine"] {
            assert!(backend.put(bad, b"x").is_err(), "key {bad:?} accepted");
        }
        // A second backend over the same directory sees the data.
        let reopened = DirBackend::new(&dir).unwrap();
        assert_eq!(reopened.keys().unwrap(), vec!["b"]);
        assert_eq!(reopened.get("b").unwrap().unwrap(), b"two");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_backend_quarantines_frames_into_subdir() {
        let dir = temp_dir("quarantine");
        let backend = DirBackend::new(&dir).unwrap();
        backend.put("k", b"good").unwrap();
        backend.put("k", b"corrupt").unwrap();
        let newest = backend.history("k").unwrap()[0].0;
        backend.quarantine("k", newest).unwrap();
        // The frame is gone from the live history but preserved on disk.
        assert_eq!(backend.get("k").unwrap().unwrap(), b"good");
        let quarantined = backend.quarantined().unwrap();
        assert_eq!(quarantined.len(), 1);
        assert!(quarantined[0].starts_with("k."), "{quarantined:?}");
        backend.quarantine("k", newest).unwrap(); // idempotent
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_backend_new_sweeps_orphaned_temp_files() {
        let dir = temp_dir("sweep");
        {
            let backend = DirBackend::new(&dir).unwrap();
            backend.put("real", b"committed").unwrap();
        }
        // Plant orphans a crash between write and rename would leave:
        // one inside a key directory, one at the top level.
        let planted_inner = dir.join("real").join(".g00000000000000ff.emsnap.tmp");
        let planted_top = dir.join(".stray.tmp");
        std::fs::write(&planted_inner, b"half-written").unwrap();
        std::fs::write(&planted_top, b"half-written").unwrap();

        let backend = DirBackend::new(&dir).unwrap();
        assert!(!planted_inner.exists(), "inner orphan not swept");
        assert!(!planted_top.exists(), "top-level orphan not swept");
        // Committed data is untouched.
        assert_eq!(backend.get("real").unwrap().unwrap(), b"committed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_backend_generations_survive_reopen() {
        let dir = temp_dir("reopen");
        {
            let backend = DirBackend::new(&dir).unwrap();
            backend.put("k", b"v0").unwrap();
            backend.put("k", b"v1").unwrap();
        }
        let backend = DirBackend::new(&dir).unwrap();
        let history = backend.history("k").unwrap();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].1, b"v1");
        // New puts continue the generation sequence past the old ones.
        backend.put("k", b"v2").unwrap();
        let history = backend.history("k").unwrap();
        assert_eq!(history[0].1, b"v2");
        assert!(history[0].0 > history[1].0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
