//! Bounded, deterministic retry for transient backend faults.
//!
//! Every backend operation the [`SessionStore`](super::SessionStore)
//! issues goes through a [`RetryPolicy`]: an error classified
//! [`EmError::is_transient`] is retried with exponential backoff and
//! seeded jitter, every other error surfaces immediately. Three bounds
//! keep a flaky backend from wedging the serve path:
//!
//! * **attempt cap** — at most [`RetryPolicy::max_attempts`] tries;
//! * **per-delay cap** — no single backoff exceeds
//!   [`RetryPolicy::max_delay_micros`];
//! * **total budget** — the *sum* of all sleeps never exceeds
//!   [`RetryPolicy::total_budget_micros`] (the schedule is truncated,
//!   not clipped, when the budget runs out).
//!
//! Jitter is drawn from the workspace [`Rng`] seeded with
//! [`RetryPolicy::jitter_seed`], so the complete backoff schedule is a
//! pure function of the policy — the proptests in
//! `tests/fault_tolerance.rs` pin determinism and the three bounds.

use em_core::{EmError, Result, Rng};

/// How (and how long) to retry a transient backend fault.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts, the first one included. `1` disables retry.
    pub max_attempts: usize,
    /// Backoff before the first retry, in microseconds; doubles per
    /// retry until [`RetryPolicy::max_delay_micros`].
    pub base_delay_micros: u64,
    /// Upper bound on any single backoff, in microseconds.
    pub max_delay_micros: u64,
    /// Upper bound on the *sum* of all backoffs, in microseconds.
    pub total_budget_micros: u64,
    /// Seed for the multiplicative jitter (each delay is scaled into
    /// `[½·d, d]`). Same seed ⇒ same schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Up to 8 attempts, 250 µs first backoff, 20 ms per-delay cap,
    /// 100 ms total budget — enough to ride out bursts of transient
    /// faults without ever stalling a request noticeably.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay_micros: 250,
            max_delay_micros: 20_000,
            total_budget_micros: 100_000,
            jitter_seed: 0x7E57,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every error surfaces immediately).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_micros: 0,
            max_delay_micros: 0,
            total_budget_micros: 0,
            jitter_seed: 0,
        }
    }

    /// The same policy under a different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The deterministic backoff schedule, in microseconds: one entry
    /// per possible retry (so at most `max_attempts − 1`), truncated
    /// where the cumulative sum would exceed the total budget.
    ///
    /// `schedule()[i]` is slept between attempt `i+1` and attempt `i+2`.
    pub fn schedule(&self) -> Vec<u64> {
        let mut rng = Rng::seed_from_u64(self.jitter_seed);
        let mut delays = Vec::new();
        let mut spent: u64 = 0;
        let mut base = self.base_delay_micros.min(self.max_delay_micros);
        for _ in 1..self.max_attempts {
            // Jitter scales into [½·base, base] — bounded above by the
            // un-jittered exponential curve, so caps still hold.
            let jittered = (base as f64 * (0.5 + 0.5 * rng.f64())).round() as u64;
            if spent.saturating_add(jittered) > self.total_budget_micros {
                break;
            }
            spent += jittered;
            delays.push(jittered);
            base = base.saturating_mul(2).min(self.max_delay_micros);
        }
        delays
    }

    /// Run `op`, retrying transient errors along [`RetryPolicy::schedule`].
    ///
    /// Non-transient errors surface immediately; a transient error that
    /// survives the whole schedule is returned as-is (still transient,
    /// so callers can distinguish "backend is down" from a hard fault).
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let schedule = self.schedule();
        let mut last: Option<EmError> = None;
        for (attempt, delay) in std::iter::once(&0u64).chain(schedule.iter()).enumerate() {
            if attempt > 0 && *delay > 0 {
                std::thread::sleep(std::time::Duration::from_micros(*delay));
            }
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            EmError::Transient("retry ran zero attempts (max_attempts = 0)".into())
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let a = p.schedule();
        let b = p.schedule();
        assert_eq!(a, b, "same policy produced different schedules");
        assert!(a.len() < p.max_attempts);
        assert!(a.iter().all(|&d| d <= p.max_delay_micros));
        assert!(a.iter().sum::<u64>() <= p.total_budget_micros);
        // A different seed perturbs the jitter.
        let c = p.clone().with_seed(99).schedule();
        assert_ne!(a, c, "jitter seed had no effect");
    }

    #[test]
    fn transient_errors_are_retried_then_succeed() {
        let p = RetryPolicy {
            base_delay_micros: 1,
            max_delay_micros: 10,
            total_budget_micros: 100,
            ..RetryPolicy::default()
        };
        let calls = AtomicUsize::new(0);
        let out = p.run(|| {
            if calls.fetch_add(1, Ordering::SeqCst) < 3 {
                Err(EmError::Transient("blip".into()))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn permanent_errors_surface_immediately() {
        let p = RetryPolicy::default();
        let calls = AtomicUsize::new(0);
        let out: Result<()> = p.run(|| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EmError::Storage("disk gone".into()))
        });
        assert!(matches!(out, Err(EmError::Storage(_))));
        assert_eq!(calls.load(Ordering::SeqCst), 1, "permanent error retried");
    }

    #[test]
    fn exhausted_schedule_returns_last_transient() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay_micros: 1,
            max_delay_micros: 2,
            total_budget_micros: 10,
            jitter_seed: 5,
        };
        let calls = AtomicUsize::new(0);
        let out: Result<()> = p.run(|| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EmError::Transient("still down".into()))
        });
        assert!(matches!(out, Err(EmError::Transient(_))));
        assert_eq!(calls.load(Ordering::SeqCst), 1 + p.schedule().len());
    }

    #[test]
    fn none_policy_tries_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out: Result<()> = RetryPolicy::none().run(|| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EmError::Transient("blip".into()))
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
