//! The serving subsystem: many concurrent [`MatchSession`]s behind a
//! keyed store, persisted compactly, sharing dataset artifacts.
//!
//! The paper's protocol (§3.1) puts a human labeler in the loop — a
//! deployment serves many long-lived, latency-tolerant sessions rather
//! than one batch run. PR 4's [`MatchSession`](crate::session) is the
//! per-session state machine; this module is everything *around* it
//! that a label-serving front-end needs:
//!
//! * [`SessionStore`] — sessions keyed by id behind interior
//!   mutability: `create` / `get` / `next_query_batch` /
//!   `submit_labels` / `advance` / `checkpoint` / `evict`, plus
//!   [`SessionStore::step_ready_sessions`] fanning every trainable
//!   session across rayon workers and [`SessionStore::recover`]
//!   reloading the whole store from its backend after a crash —
//!   bit-identically, half-labeled batches included.
//! * [`SnapshotCodec`] — the pluggable wire format: the original JSON
//!   path or the compact checksummed binary frame
//!   ([`SessionSnapshot::to_bytes`](crate::session::SessionSnapshot::to_bytes)),
//!   both restoring bit-identically.
//! * [`SnapshotBackend`] — where encoded snapshots live:
//!   [`MemoryBackend`] or the atomic-rename [`DirBackend`], both keeping
//!   a bounded history of checkpoint *generations* per key so recovery
//!   can fall back past a torn or corrupt newest frame.
//! * [`RetryPolicy`] — bounded exponential backoff with seeded jitter
//!   around every backend call the store issues; transient faults
//!   ([`em_core::EmError::is_transient`]) retry, hard faults surface.
//! * [`FaultyBackend`] — the fault-injection harness: wraps any backend
//!   and, driven by a seeded [`FaultPlan`], injects transient errors,
//!   torn writes, crash-before-commit, silent bit corruption and
//!   latency — the chaos bench and the fault-tolerance tests prove the
//!   store rides all of it out bit-identically.
//!
//! Artifacts are shared, never copied: every session of a scenario
//! holds an `Arc` into one [`DatasetArtifacts`](crate::engine)
//! materialization resolved through the engine's
//! [`ArtifactCache`](crate::engine::ArtifactCache).

mod backend;
mod codec;
mod fault;
mod retry;
mod store;

pub use backend::{DirBackend, MemoryBackend, SnapshotBackend};
pub use codec::SnapshotCodec;
pub use fault::{Fault, FaultPlan, FaultStats, FaultyBackend};
pub use retry::RetryPolicy;
pub use store::{RecoveryReport, SessionStatus, SessionStore};
