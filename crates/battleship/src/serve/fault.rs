//! Deterministic fault injection for the persistence stack.
//!
//! A [`FaultyBackend`] wraps any [`SnapshotBackend`] and injects the
//! failure modes a production store must survive, driven by a seeded,
//! reproducible [`FaultPlan`]:
//!
//! * **transient errors** — the op fails with [`EmError::Transient`]
//!   before touching the inner backend (an interrupted syscall, a
//!   momentary mount hiccup); a bounded retry clears it;
//! * **crash-before-commit** — a `put` fails after doing no visible
//!   work (the crash-between-write-and-rename window of an atomic
//!   backend);
//! * **torn writes** — a `put` persists only a prefix of the frame and
//!   then fails (a crash mid-write on a backend without atomic rename);
//!   the checksummed codec detects the tear at decode time and
//!   generational recovery falls back to the previous frame;
//! * **bit corruption** — a `put` silently persists the frame with one
//!   flipped bit (media rot); detected at decode, recovered
//!   generationally;
//! * **latency** — a bounded sleep before the op (a slow disk), which
//!   must never change any result.
//!
//! Every probabilistic draw comes from a [`Rng`](em_core::Rng) seeded by
//! [`FaultPlan::seed`], so a given op sequence replays the exact same
//! fault sequence — every failure mode is a unit test, not an outage.
//! [`FaultyBackend::force_on_put`] additionally queues a *guaranteed*
//! fault for the next `put`, which is how the chaos bench plants its
//! "at least one torn write and one corrupt frame per run".

use std::collections::VecDeque;
use std::sync::Mutex;

use em_core::{EmError, Result, Rng};

use super::backend::SnapshotBackend;

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the op with [`EmError::Transient`]; inner backend untouched.
    Transient,
    /// `put` only: persist a prefix of the bytes, then fail.
    TornWrite,
    /// `put` only: silently persist the bytes with one bit flipped.
    Corrupt,
    /// `put` only: fail after doing no visible work (the
    /// crash-before-rename window).
    CrashBeforeCommit,
}

/// A seeded, reproducible schedule of injected faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic draw. Same seed + same op sequence
    /// ⇒ same faults.
    pub seed: u64,
    /// Probability any op fails transiently before executing.
    pub transient_rate: f64,
    /// Probability a `put` persists only a prefix, then fails.
    pub torn_write_rate: f64,
    /// Probability a `put` silently persists one flipped bit.
    pub corrupt_rate: f64,
    /// Probability a `put` fails with no visible work done.
    pub crash_rate: f64,
    /// Probability an op sleeps before executing.
    pub latency_rate: f64,
    /// Upper bound on an injected sleep, in microseconds.
    pub max_latency_micros: u64,
    /// Total injected-fault budget (`None` = unbounded). Latency does
    /// not count against it.
    pub max_faults: Option<usize>,
}

impl FaultPlan {
    /// No faults at all (a transparent wrapper).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            torn_write_rate: 0.0,
            corrupt_rate: 0.0,
            crash_rate: 0.0,
            latency_rate: 0.0,
            max_latency_micros: 0,
            max_faults: None,
        }
    }

    /// Transient failures only, at `rate` — the retry-demo plan.
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultPlan {
            transient_rate: rate,
            ..FaultPlan::none(seed)
        }
    }

    /// The chaos-bench mix: ≥5 % transient failures plus torn writes,
    /// silent corruption, crash windows and up to 200 µs latency.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.08,
            torn_write_rate: 0.02,
            corrupt_rate: 0.02,
            crash_rate: 0.02,
            latency_rate: 0.10,
            max_latency_micros: 200,
            max_faults: None,
        }
    }
}

/// Counters of everything a [`FaultyBackend`] injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Backend ops seen (faulted or not).
    pub ops: usize,
    /// Transient failures injected.
    pub transient: usize,
    /// Torn writes injected.
    pub torn_writes: usize,
    /// Silent bit corruptions injected.
    pub corruptions: usize,
    /// Crash-before-commit failures injected.
    pub crashes: usize,
    /// Latency sleeps injected.
    pub delays: usize,
}

impl FaultStats {
    /// Total hard faults injected (latency excluded).
    pub fn total_faults(&self) -> usize {
        self.transient + self.torn_writes + self.corruptions + self.crashes
    }
}

/// Mutable injection state behind one lock.
#[derive(Debug)]
struct FaultState {
    rng: Rng,
    stats: FaultStats,
    /// Guaranteed faults for upcoming `put`s (front first), consumed
    /// before any probabilistic draw.
    forced_on_put: VecDeque<Fault>,
}

/// A [`SnapshotBackend`] wrapper that injects faults per a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyBackend<B> {
    inner: B,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl<B: SnapshotBackend> FaultyBackend<B> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        let state = FaultState {
            rng: Rng::seed_from_u64(plan.seed),
            stats: FaultStats::default(),
            forced_on_put: VecDeque::new(),
        };
        FaultyBackend {
            inner,
            plan,
            state: Mutex::new(state),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The fault plan driving the injections.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.lock_state().stats
    }

    /// Queue a guaranteed fault for an upcoming `put` (FIFO, consumed
    /// one per `put` before any probabilistic draw).
    pub fn force_on_put(&self, fault: Fault) {
        self.lock_state().forced_on_put.push_back(fault);
    }

    /// The state lock, recovered from poisoning: the state is a plain
    /// value struct every op leaves consistent, so a panic elsewhere
    /// while holding the lock cannot corrupt it.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Budget check + latency injection shared by every op. Returns a
    /// transient error when one should be injected.
    fn pre_op(&self, op: &str) -> Result<()> {
        let mut s = self.lock_state();
        s.stats.ops += 1;
        if self.plan.latency_rate > 0.0 && s.rng.bool(self.plan.latency_rate) {
            let micros = s.rng.below(self.plan.max_latency_micros.max(1) as usize) as u64;
            s.stats.delays += 1;
            drop(s);
            std::thread::sleep(std::time::Duration::from_micros(micros));
            s = self.lock_state();
        }
        let budget_left = self
            .plan
            .max_faults
            .map(|cap| s.stats.total_faults() < cap)
            .unwrap_or(true);
        if budget_left && s.rng.bool(self.plan.transient_rate) {
            s.stats.transient += 1;
            return Err(EmError::Transient(format!(
                "injected transient fault on {op}"
            )));
        }
        Ok(())
    }
}

impl<B: SnapshotBackend> SnapshotBackend for FaultyBackend<B> {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        self.pre_op("put")?;
        let fault = {
            let mut s = self.lock_state();
            let budget_left = self
                .plan
                .max_faults
                .map(|cap| s.stats.total_faults() < cap)
                .unwrap_or(true);
            let fault = if let Some(forced) = s.forced_on_put.pop_front() {
                Some(forced)
            } else if !budget_left {
                None
            } else if s.rng.bool(self.plan.crash_rate) {
                Some(Fault::CrashBeforeCommit)
            } else if s.rng.bool(self.plan.torn_write_rate) {
                Some(Fault::TornWrite)
            } else if s.rng.bool(self.plan.corrupt_rate) {
                Some(Fault::Corrupt)
            } else {
                None
            };
            match fault {
                Some(Fault::Transient) => s.stats.transient += 1,
                Some(Fault::TornWrite) => s.stats.torn_writes += 1,
                Some(Fault::Corrupt) => s.stats.corruptions += 1,
                Some(Fault::CrashBeforeCommit) => s.stats.crashes += 1,
                None => {}
            }
            fault
        };
        match fault {
            None => self.inner.put(key, bytes),
            Some(Fault::Transient) => {
                Err(EmError::Transient("injected transient fault on put".into()))
            }
            Some(Fault::CrashBeforeCommit) => Err(EmError::Transient(
                "injected crash before commit (no bytes visible)".into(),
            )),
            Some(Fault::TornWrite) => {
                // Persist a strict prefix, then report failure — the torn
                // frame is what recovery will find if no retry lands.
                let cut = {
                    let mut s = self.lock_state();
                    1 + s.rng.below(bytes.len().saturating_sub(1).max(1))
                };
                self.inner.put(key, &bytes[..cut.min(bytes.len())])?;
                Err(EmError::Transient(format!(
                    "injected torn write ({cut} of {} bytes persisted)",
                    bytes.len()
                )))
            }
            Some(Fault::Corrupt) => {
                // Persist with one flipped bit and report success: the
                // corruption is only discoverable at decode time.
                let mut bad = bytes.to_vec();
                if !bad.is_empty() {
                    let (pos, bit) = {
                        let mut s = self.lock_state();
                        (s.rng.below(bad.len()), s.rng.below(8))
                    };
                    bad[pos] ^= 1 << bit;
                }
                self.inner.put(key, &bad)
            }
        }
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        self.pre_op("get")?;
        self.inner.get(key)
    }

    fn remove(&self, key: &str) -> Result<()> {
        self.pre_op("remove")?;
        self.inner.remove(key)
    }

    fn keys(&self) -> Result<Vec<String>> {
        self.pre_op("keys")?;
        self.inner.keys()
    }

    fn history(&self, key: &str) -> Result<Vec<(u64, Vec<u8>)>> {
        self.pre_op("history")?;
        self.inner.history(key)
    }

    fn quarantine(&self, key: &str, generation: u64) -> Result<()> {
        self.pre_op("quarantine")?;
        self.inner.quarantine(key, generation)
    }
}

#[cfg(test)]
mod tests {
    use super::super::backend::MemoryBackend;
    use super::*;

    #[test]
    fn no_fault_plan_is_transparent() {
        let b = FaultyBackend::new(MemoryBackend::new(), FaultPlan::none(1));
        b.put("k", b"hello").unwrap();
        assert_eq!(b.get("k").unwrap().unwrap(), b"hello");
        assert_eq!(b.keys().unwrap(), vec!["k"]);
        b.remove("k").unwrap();
        assert_eq!(b.get("k").unwrap(), None);
        assert_eq!(b.stats().total_faults(), 0);
    }

    #[test]
    fn transient_faults_are_reproducible_per_seed() {
        let run = |seed| {
            let b = FaultyBackend::new(MemoryBackend::new(), FaultPlan::transient(seed, 0.3));
            (0..100)
                .map(|i| b.put(&format!("k{i}"), b"x").is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed diverged");
        assert_ne!(run(7), run(8), "different seeds agreed everywhere");
        let b = FaultyBackend::new(MemoryBackend::new(), FaultPlan::transient(7, 0.3));
        let failures = (0..100).filter(|_| b.put("k", b"x").is_err()).count();
        assert!(failures > 10, "rate 0.3 injected only {failures}/100");
        assert!(
            b.stats().transient == failures,
            "stats disagree with observed failures"
        );
    }

    #[test]
    fn forced_torn_write_persists_a_prefix_and_fails() {
        let b = FaultyBackend::new(MemoryBackend::new(), FaultPlan::none(3));
        b.force_on_put(Fault::TornWrite);
        let payload = vec![0xAB; 64];
        let err = b.put("k", &payload).unwrap_err();
        assert!(err.is_transient(), "torn write not transient: {err}");
        let stored = b.inner().get("k").unwrap().unwrap();
        assert!(stored.len() < payload.len(), "nothing was torn");
        assert_eq!(b.stats().torn_writes, 1);
    }

    #[test]
    fn forced_corruption_flips_exactly_one_bit_silently() {
        let b = FaultyBackend::new(MemoryBackend::new(), FaultPlan::none(4));
        b.force_on_put(Fault::Corrupt);
        let payload = vec![0u8; 32];
        b.put("k", &payload).unwrap(); // reports success
        let stored = b.inner().get("k").unwrap().unwrap();
        let flipped: u32 = stored
            .iter()
            .zip(&payload)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "expected exactly one flipped bit");
        assert_eq!(b.stats().corruptions, 1);
    }

    #[test]
    fn crash_before_commit_leaves_no_trace() {
        let b = FaultyBackend::new(MemoryBackend::new(), FaultPlan::none(5));
        b.force_on_put(Fault::CrashBeforeCommit);
        assert!(b.put("k", b"data").is_err());
        assert_eq!(b.inner().get("k").unwrap(), None);
        assert_eq!(b.stats().crashes, 1);
    }

    #[test]
    fn fault_budget_caps_injections() {
        let plan = FaultPlan {
            max_faults: Some(5),
            ..FaultPlan::transient(11, 1.0)
        };
        let b = FaultyBackend::new(MemoryBackend::new(), plan);
        let failures = (0..50).filter(|_| b.put("k", b"x").is_err()).count();
        assert_eq!(failures, 5, "budget not enforced");
        assert_eq!(b.get("k").unwrap().unwrap(), b"x");
    }
}
