//! Pluggable snapshot encodings for the serving layer.
//!
//! The store persists [`SessionSnapshot`]s through exactly one of two
//! wire formats:
//!
//! * [`SnapshotCodec::Json`] — the original `serde` path: human
//!   readable, diffable, and the compatibility format every existing
//!   checkpoint was written in;
//! * [`SnapshotCodec::Binary`] — the compact frame of
//!   [`SessionSnapshot::to_bytes`]: float bit patterns instead of
//!   decimal renderings, a version byte and an FNV-1a 64 checksum
//!   (several times smaller on real sessions — the matcher parameters
//!   dominate — and the store's default).
//!
//! Both decode to the *same* [`SessionSnapshot`] value, so a session
//! restored from either continues bit-identically; the golden tests in
//! `tests/serve_api.rs` pin JSON→restore ≡ binary→restore for every
//! strategy. [`SnapshotCodec::decode`] sniffs nothing: each codec only
//! accepts its own format, and corruption is a structured error.

use em_core::{EmError, Result};

use crate::session::SessionSnapshot;

/// Which wire format a [`SessionStore`](super::SessionStore) persists
/// snapshots in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotCodec {
    /// `serde_json` text — the readable/compatible format.
    Json,
    /// The compact checksummed binary frame (the default).
    #[default]
    Binary,
}

impl SnapshotCodec {
    /// Display name (used in bench output and backend metadata).
    pub fn name(self) -> &'static str {
        match self {
            SnapshotCodec::Json => "json",
            SnapshotCodec::Binary => "binary",
        }
    }

    /// Encode a snapshot under this codec.
    pub fn encode(self, snapshot: &SessionSnapshot) -> Result<Vec<u8>> {
        match self {
            SnapshotCodec::Json => serde_json::to_string(snapshot)
                .map(String::into_bytes)
                .map_err(|e| EmError::Codec(format!("SessionSnapshot JSON encode: {e}"))),
            SnapshotCodec::Binary => Ok(snapshot.to_bytes()),
        }
    }

    /// Decode bytes written by [`SnapshotCodec::encode`] under the same
    /// codec. Malformed input is a structured [`EmError::Codec`].
    pub fn decode(self, bytes: &[u8]) -> Result<SessionSnapshot> {
        match self {
            SnapshotCodec::Json => {
                let text = std::str::from_utf8(bytes).map_err(|e| {
                    EmError::Codec(format!("SessionSnapshot JSON is not UTF-8: {e}"))
                })?;
                serde_json::from_str(text)
                    .map_err(|e| EmError::Codec(format!("SessionSnapshot JSON decode: {e}")))
            }
            SnapshotCodec::Binary => SessionSnapshot::from_bytes(bytes),
        }
    }
}
