//! The keyed session store: many live [`MatchSession`]s over shared
//! dataset artifacts, persisted through a pluggable backend.
//!
//! ```text
//!            create(id, scenario, cfg)        checkpoint(id)
//!                      │                            │
//!                      ▼                            ▼
//!   ┌──────────────────────────────┐   ┌───────────────────────────┐
//!   │  SessionStore                │   │  SnapshotCodec            │
//!   │   sessions: id → SessionCell │──▶│  (json | binary frame)    │
//!   │   scenarios: name → Scenario │   └────────────┬──────────────┘
//!   │   cache: ArtifactCache       │                ▼
//!   └──────────────┬───────────────┘   ┌───────────────────────────┐
//!                  │ Arc<DatasetArtifacts>  │  SnapshotBackend     │
//!                  ▼ (one per scenario,     │  (memory | directory)│
//!   ┌──────────────────────────────┐ shared └───────────────────────┘
//!   │ MatchSession  MatchSession … │ by every session of the
//!   └──────────────────────────────┘ scenario)
//! ```
//!
//! Design decisions, in order of importance:
//!
//! * **Artifacts are shared, never per-session.** Materializing a
//!   scenario (dataset + featurizer + features) is orders of magnitude
//!   heavier than a session's loop state. The store resolves scenarios
//!   through the engine's [`ArtifactCache`], so a thousand sessions of
//!   one scenario hold a thousand `Arc`s to one allocation.
//! * **Sessions live behind per-session locks.** The store-level map
//!   lock is held only for lookup/insert/unlink (plus `delete`'s cheap
//!   backend removal, which must be atomic with the unlink); every
//!   operation on a session locks that session alone, so labeling
//!   traffic on different sessions never serializes. The
//!   lookup-then-lock window is closed by a tombstone protocol: a cell
//!   detached by `evict`/`delete` is marked under its own lock, and
//!   any operation that finds the mark retries against the map instead
//!   of mutating the orphan (see [`SessionStore::with_cell`]).
//! * **Eviction is checkpoint-then-drop.** [`SessionStore::evict`]
//!   *always* persists the session (half-labeled batch included) before
//!   releasing its memory; any later operation on the id transparently
//!   reloads it from the backend. Evicting is therefore a pure
//!   memory/latency trade, never a correctness event — the regression
//!   test drives evict→reload→finish against the uninterrupted run.
//! * **Stepping is fanned out.** [`SessionStore::step_ready_sessions`]
//!   advances every session whose next `advance()` does real work
//!   (training or the initial seed draw) across rayon workers. Each
//!   session owns its rng and touches only its own state, so the fan-out
//!   is deterministic per session and the combined outcome is
//!   bit-identical to stepping serially.
//! * **Crash recovery is a reload.** [`SessionStore::recover`] lists
//!   the backend, decodes every snapshot, re-resolves artifacts through
//!   the scenario registry and resumes each session exactly where its
//!   last checkpoint left it — pinned bit-identical by the
//!   crash-recovery golden test.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use rayon::prelude::*;

use em_core::{Dataset, EmError, Label, PairIdx, Result};
use em_vector::Embeddings;

use crate::engine::{ArtifactCache, DatasetArtifacts, Scenario};
use crate::report::RunReport;
use crate::session::{MatchSession, SessionConfig, SessionPhase};

use super::backend::SnapshotBackend;
use super::codec::SnapshotCodec;

/// A live session pinned to the artifacts it borrows.
///
/// [`MatchSession`] borrows its dataset and features for a lifetime
/// `'a`; the store needs to own sessions in a map while the borrowed
/// artifacts live in `Arc`s *in the same entry*. The borrow is
/// expressed as `'static` internally and never leaves this module: the
/// public API only returns owned data (phases, batches, snapshots,
/// reports).
struct SessionCell {
    /// Declared first so it drops before `artifacts` (field order is
    /// drop order) — the session's borrows never outlive their target.
    session: MatchSession<'static>,
    /// Keeps the borrowed artifacts alive for the cell's lifetime.
    artifacts: Arc<DatasetArtifacts>,
    /// The scenario key the session runs on (recovery bookkeeping).
    scenario: String,
    /// Tombstone, set under the cell lock when `evict`/`delete`
    /// detaches the cell from the map. A caller that cloned the cell's
    /// `Arc` *before* the detach and acquires the lock *after* it must
    /// not mutate this orphaned copy (its state would be silently lost
    /// on the next reload); [`SessionStore::with_cell`] retries against
    /// the map instead.
    detached: bool,
}

// SAFETY: a `SessionCell` is always built through `SessionCell::open` /
// `SessionCell::restore`, both of which construct the session from a
// `SessionConfig` — the *owned* strategy path (`Box<dyn SelectionStrategy
// + Send>`). The only non-Send variant of `MatchSession`'s internals is
// the borrowed-strategy slot, which cannot occur here, and the `&'static
// Dataset`/`&'static Embeddings` borrows point into the immutable,
// `Sync` artifacts the cell itself keeps alive.
unsafe impl Send for SessionCell {}

impl SessionCell {
    /// Project `'static` references into the `Arc`'d artifacts.
    ///
    /// SAFETY (for both callers below): the references point into the
    /// heap allocation owned by `artifacts`; the cell holds that `Arc`
    /// for at least as long as the session (drop order), the artifacts
    /// are immutable, and an `Arc`'s pointee never moves.
    fn project(artifacts: &Arc<DatasetArtifacts>) -> (&'static Dataset, &'static Embeddings) {
        unsafe {
            (
                &*(&artifacts.dataset as *const Dataset),
                &*(&artifacts.features as *const Embeddings),
            )
        }
    }

    fn open(
        artifacts: Arc<DatasetArtifacts>,
        scenario: String,
        config: SessionConfig,
    ) -> Result<Self> {
        let (dataset, features) = Self::project(&artifacts);
        let session = MatchSession::new(dataset, features, config)?;
        Ok(SessionCell {
            session,
            artifacts,
            scenario,
            detached: false,
        })
    }

    fn restore(
        artifacts: Arc<DatasetArtifacts>,
        scenario: String,
        snapshot: &crate::session::SessionSnapshot,
    ) -> Result<Self> {
        let (dataset, features) = Self::project(&artifacts);
        let session = MatchSession::restore(dataset, features, snapshot)?;
        Ok(SessionCell {
            session,
            artifacts,
            scenario,
            detached: false,
        })
    }
}

/// An owned status view of one stored session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStatus {
    /// The session's key in the store.
    pub id: String,
    /// The scenario the session runs on.
    pub scenario: String,
    /// Where the session stands in the protocol.
    pub phase: SessionPhase,
    /// Oracle labels consumed so far (partial batches included).
    pub labels_used: usize,
    /// Unlabeled pairs remaining in the pool.
    pub pool_remaining: usize,
    /// Iterations recorded so far (seed model first).
    pub iterations: usize,
}

/// A keyed store of live [`MatchSession`]s over shared artifacts.
///
/// See the [module docs](self) for the data-flow picture. All methods
/// take `&self`: the store is interior-mutable and safe to share
/// (`Arc<SessionStore>`) across request handlers.
pub struct SessionStore {
    backend: Box<dyn SnapshotBackend>,
    codec: SnapshotCodec,
    cache: Arc<ArtifactCache>,
    scenarios: Mutex<BTreeMap<String, Scenario>>,
    sessions: Mutex<BTreeMap<String, Arc<Mutex<SessionCell>>>>,
}

impl SessionStore {
    /// A store persisting through `backend` with the given codec and a
    /// private artifact cache.
    pub fn new(backend: Box<dyn SnapshotBackend>, codec: SnapshotCodec) -> Self {
        Self::with_cache(backend, codec, Arc::new(ArtifactCache::new()))
    }

    /// A store sharing an existing [`ArtifactCache`] (e.g. with an
    /// experiment engine running the same scenarios in the same
    /// process).
    pub fn with_cache(
        backend: Box<dyn SnapshotBackend>,
        codec: SnapshotCodec,
        cache: Arc<ArtifactCache>,
    ) -> Self {
        SessionStore {
            backend,
            codec,
            cache,
            scenarios: Mutex::new(BTreeMap::new()),
            sessions: Mutex::new(BTreeMap::new()),
        }
    }

    /// The codec snapshots are persisted under.
    pub fn codec(&self) -> SnapshotCodec {
        self.codec
    }

    /// Register a scenario sessions can be created on (and recovered
    /// into). Re-registering the same name replaces the recipe; the
    /// artifact cache still dedupes by name.
    pub fn register_scenario(&self, scenario: Scenario) {
        self.scenarios
            .lock()
            .expect("scenario registry poisoned")
            .insert(scenario.name().to_string(), scenario);
    }

    /// Ids of the sessions currently live in memory (evicted sessions
    /// are not listed; they reload on first use).
    pub fn resident_ids(&self) -> Vec<String> {
        self.sessions
            .lock()
            .expect("session map poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of sessions live in memory.
    pub fn resident_len(&self) -> usize {
        self.sessions.lock().expect("session map poisoned").len()
    }

    fn scenario_named(&self, name: &str) -> Result<Scenario> {
        self.scenarios
            .lock()
            .expect("scenario registry poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| {
                EmError::InvalidConfig(format!(
                    "scenario `{name}` is not registered with this store"
                ))
            })
    }

    /// Open a new session under `id` on a registered scenario.
    ///
    /// Artifacts are resolved through the shared cache — creating the
    /// thousandth session of a scenario costs loop-state only. Errors
    /// if `id` already exists (in memory *or* in the backend: a crashed
    /// session must be recovered or deleted, not silently recreated).
    pub fn create(&self, id: &str, scenario_name: &str, config: SessionConfig) -> Result<()> {
        let scenario = self.scenario_named(scenario_name)?;
        if self.backend.get(id)?.is_some() {
            return Err(EmError::InvalidConfig(format!(
                "session `{id}` already has a persisted snapshot; recover or delete it first"
            )));
        }
        let artifacts = self.cache.get_or_materialize(&scenario)?;
        let cell = SessionCell::open(artifacts, scenario_name.to_string(), config)?;
        let mut sessions = self.sessions.lock().expect("session map poisoned");
        if sessions.contains_key(id) {
            return Err(EmError::InvalidConfig(format!(
                "session `{id}` already exists"
            )));
        }
        sessions.insert(id.to_string(), Arc::new(Mutex::new(cell)));
        Ok(())
    }

    /// Fetch the live cell for `id`, transparently reloading an evicted
    /// session from the backend.
    fn cell(&self, id: &str) -> Result<Arc<Mutex<SessionCell>>> {
        if let Some(cell) = self
            .sessions
            .lock()
            .expect("session map poisoned")
            .get(id)
            .cloned()
        {
            return Ok(cell);
        }
        // Cache miss: reload from the backend (the evict path's mirror).
        // Decode and restore outside every lock — this is the expensive
        // part — then re-validate under the map lock before inserting.
        let bytes = self.backend.get(id)?.ok_or_else(|| {
            EmError::InvalidConfig(format!("no session `{id}` (in memory or persisted)"))
        })?;
        let snapshot = self.codec.decode(&bytes)?;
        let scenario = self.scenario_named(&snapshot.dataset)?;
        let artifacts = self.cache.get_or_materialize(&scenario)?;
        let cell = SessionCell::restore(artifacts, snapshot.dataset.clone(), &snapshot)?;
        let mut sessions = self.sessions.lock().expect("session map poisoned");
        // A concurrent reload may have won; keep the first one.
        if let Some(existing) = sessions.get(id) {
            return Ok(existing.clone());
        }
        // A concurrent `delete` may have removed the persisted snapshot
        // after this reload read it; inserting anyway would resurrect
        // the deleted session. `delete` removes from the backend while
        // holding the map lock, so this re-check is race-free.
        if self.backend.get(id)?.is_none() {
            return Err(EmError::InvalidConfig(format!(
                "no session `{id}` (deleted during reload)"
            )));
        }
        let cell = Arc::new(Mutex::new(cell));
        sessions.insert(id.to_string(), cell.clone());
        Ok(cell)
    }

    /// Run `f` on session `id`'s locked cell.
    ///
    /// The lookup-then-lock window races with `evict`/`delete`: the
    /// cell `Arc` obtained from the map may be *detached* (tombstoned
    /// and removed) by the time its lock is acquired. Mutating such an
    /// orphan would silently lose the mutation on the next reload, so
    /// detached cells are never touched — the loop retries against the
    /// map, which either serves the live replacement (reloaded from the
    /// checkpoint the evict wrote) or reports the id gone.
    fn with_cell<R>(&self, id: &str, f: impl FnOnce(&mut SessionCell) -> Result<R>) -> Result<R> {
        loop {
            let cell = self.cell(id)?;
            let mut guard = cell.lock().expect("session poisoned");
            if guard.detached {
                drop(guard);
                std::thread::yield_now();
                continue;
            }
            return f(&mut guard);
        }
    }

    /// The shared artifacts session `id` runs on — what a labeling
    /// front-end needs to render query pairs (records, schema, feature
    /// rows). Cheap: clones an `Arc`, never the data.
    pub fn artifacts(&self, id: &str) -> Result<Arc<DatasetArtifacts>> {
        self.with_cell(id, |cell| Ok(cell.artifacts.clone()))
    }

    /// An owned status view of session `id`.
    pub fn get(&self, id: &str) -> Result<SessionStatus> {
        self.with_cell(id, |cell| {
            Ok(SessionStatus {
                id: id.to_string(),
                scenario: cell.scenario.clone(),
                phase: cell.session.phase(),
                labels_used: cell.session.labels_used(),
                pool_remaining: cell.session.pool_remaining(),
                iterations: cell.session.records().len(),
            })
        })
    }

    /// The pairs session `id` is waiting on (empty when none).
    pub fn next_query_batch(&self, id: &str) -> Result<Vec<PairIdx>> {
        self.with_cell(id, |cell| Ok(cell.session.next_query_batch()))
    }

    /// Submit (part of) the outstanding labels for session `id`.
    pub fn submit_labels(&self, id: &str, labels: &[(PairIdx, Label)]) -> Result<SessionPhase> {
        self.with_cell(id, |cell| cell.session.submit_labels(labels))
    }

    /// Perform session `id`'s current phase's work (seed draw, training
    /// + next selection, …) and return the new phase.
    pub fn advance(&self, id: &str) -> Result<SessionPhase> {
        self.with_cell(id, |cell| cell.session.advance())
    }

    /// The report of everything session `id` has recorded so far.
    pub fn report(&self, id: &str) -> Result<RunReport> {
        self.with_cell(id, |cell| Ok(cell.session.report()))
    }

    /// Persist session `id`'s complete state through the codec and
    /// backend. Returns the encoded size in bytes.
    pub fn checkpoint(&self, id: &str) -> Result<usize> {
        self.with_cell(id, |cell| self.checkpoint_cell(id, cell))
    }

    fn checkpoint_cell(&self, id: &str, cell: &SessionCell) -> Result<usize> {
        let snapshot = cell.session.snapshot()?;
        let bytes = self.codec.encode(&snapshot)?;
        self.backend.put(id, &bytes)?;
        Ok(bytes.len())
    }

    /// Checkpoint every resident session; returns `(id, bytes)` pairs
    /// in id order.
    pub fn checkpoint_all(&self) -> Result<Vec<(String, usize)>> {
        let resident: Vec<(String, Arc<Mutex<SessionCell>>)> = {
            let sessions = self.sessions.lock().expect("session map poisoned");
            sessions
                .iter()
                .map(|(id, c)| (id.clone(), c.clone()))
                .collect()
        };
        let mut out = Vec::with_capacity(resident.len());
        for (id, cell) in resident {
            let cell = cell.lock().expect("session poisoned");
            if cell.detached {
                // Evicted concurrently — the evict already persisted it.
                continue;
            }
            out.push((id.clone(), self.checkpoint_cell(&id, &cell)?));
        }
        Ok(out)
    }

    /// Release session `id`'s memory, **checkpointing it first**.
    ///
    /// A session may be evicted at any phase — mid-batch with half its
    /// labels received included. The checkpoint-before-drop order is
    /// load-bearing: an in-flight session evicted without persisting
    /// would silently lose the labels already submitted, which is why
    /// this method has no "skip the checkpoint" variant. Any later
    /// operation on `id` transparently reloads it.
    pub fn evict(&self, id: &str) -> Result<()> {
        // Checkpoint and tombstone under the cell lock (no map lock —
        // the encode + backend write never serializes other sessions),
        // then unlink exactly the cell that was persisted. A caller
        // that cloned the cell's Arc before the unlink finds the
        // tombstone and retries against the map (`with_cell`), so no
        // mutation can slip between the persisted snapshot and the
        // drop.
        self.with_cell(id, |cell| {
            self.checkpoint_cell(id, cell)?;
            cell.detached = true;
            Ok(())
        })?;
        let mut sessions = self.sessions.lock().expect("session map poisoned");
        // Only remove the tombstoned cell; a concurrent reload may
        // already have installed a fresh (live) replacement.
        if let Some(entry) = sessions.get(id) {
            if entry.lock().expect("session poisoned").detached {
                sessions.remove(id);
            }
        }
        Ok(())
    }

    /// Permanently remove session `id` from memory and the backend.
    pub fn delete(&self, id: &str) -> Result<()> {
        // Tombstone any resident cell (so racing operations holding its
        // Arc fail over to the map instead of mutating an orphan) and
        // remove the persisted snapshot while still holding the map
        // lock — `cell`'s reload path re-checks the backend under this
        // lock, so a reload in flight cannot resurrect the session.
        let mut sessions = self.sessions.lock().expect("session map poisoned");
        if let Some(entry) = sessions.remove(id) {
            entry.lock().expect("session poisoned").detached = true;
        }
        self.backend.remove(id)
    }

    /// Reload every persisted session from the backend — the crash
    /// recovery path. Returns the recovered ids in order.
    ///
    /// Each snapshot is decoded, its scenario re-resolved through the
    /// registry (artifacts come from the shared cache, materialized at
    /// most once per scenario) and the session resumed exactly where
    /// its last checkpoint left it. Sessions already resident are left
    /// untouched — their in-memory state is newer than or equal to the
    /// persisted one.
    pub fn recover(&self) -> Result<Vec<String>> {
        let mut recovered = Vec::new();
        for id in self.backend.keys()? {
            let already_resident = self
                .sessions
                .lock()
                .expect("session map poisoned")
                .contains_key(&id);
            if already_resident {
                continue;
            }
            self.cell(&id)?;
            recovered.push(id);
        }
        Ok(recovered)
    }

    /// Advance every session whose current phase has work to do
    /// (`SeedDraw` or `Training` — a complete batch waiting to train),
    /// fanning the sessions out across rayon workers.
    ///
    /// Each session's step is a pure function of its own state (its own
    /// rng, pool, matcher), so the fan-out is deterministic per session
    /// and bit-identical to stepping the same sessions serially — the
    /// serve bench's golden check pins this. Returns `(id, new phase)`
    /// in id order for the sessions that were stepped.
    pub fn step_ready_sessions(&self) -> Result<Vec<(String, SessionPhase)>> {
        // The map lock is held only to clone the resident (id, Arc)
        // list — never across a cell lock, so a session mid-training
        // can never stall operations on other sessions. Readiness is
        // checked inside each worker under that session's own lock
        // (the only place the check can be race-free anyway).
        let resident: Vec<(String, Arc<Mutex<SessionCell>>)> = {
            let sessions = self.sessions.lock().expect("session map poisoned");
            sessions
                .iter()
                .map(|(id, cell)| (id.clone(), cell.clone()))
                .collect()
        };
        let outcomes: Vec<Result<Option<(String, SessionPhase)>>> = resident
            .par_iter()
            .map(|(id, cell)| {
                let mut cell = cell.lock().expect("session poisoned");
                if cell.detached
                    || !matches!(
                        cell.session.phase(),
                        SessionPhase::SeedDraw | SessionPhase::Training
                    )
                {
                    return Ok(None);
                }
                let phase = cell.session.advance()?;
                Ok(Some((id.clone(), phase)))
            })
            .collect();
        let mut stepped = Vec::new();
        for outcome in outcomes {
            if let Some(entry) = outcome? {
                stepped.push(entry);
            }
        }
        Ok(stepped)
    }
}

impl std::fmt::Debug for SessionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionStore")
            .field("codec", &self.codec)
            .field("resident", &self.resident_len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::super::backend::MemoryBackend;
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::strategies::StrategySpec;
    use em_synth::DatasetProfile;

    fn quick_config(strategy: StrategySpec, seed: u64) -> SessionConfig {
        let mut experiment = ExperimentConfig::low_resource(1, 10);
        experiment.al.seed_size = 10;
        experiment.matcher.epochs = 2;
        experiment.battleship.kselect_sample = 128;
        SessionConfig {
            experiment,
            strategy,
            seed,
        }
    }

    fn store_with_scenario() -> (SessionStore, Scenario) {
        let scenario = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 5);
        let store = SessionStore::new(Box::new(MemoryBackend::new()), SnapshotCodec::Binary);
        store.register_scenario(scenario.clone());
        (store, scenario)
    }

    /// Drive a stored session to Done through the store API.
    fn drive(store: &SessionStore, id: &str) {
        loop {
            let status = store.get(id).unwrap();
            match status.phase {
                SessionPhase::AwaitingLabels => {
                    let batch = store.next_query_batch(id).unwrap();
                    let artifacts = store.artifacts(id).unwrap();
                    let answers: Vec<(PairIdx, Label)> = batch
                        .iter()
                        .map(|&p| (p, artifacts.dataset.ground_truth(p)))
                        .collect();
                    store.submit_labels(id, &answers).unwrap();
                }
                SessionPhase::Done => break,
                SessionPhase::SeedDraw | SessionPhase::Training => {
                    store.advance(id).unwrap();
                }
            }
        }
    }

    #[test]
    fn create_get_drive_and_share_artifacts() {
        let (store, scenario) = store_with_scenario();
        store
            .create("s1", scenario.name(), quick_config(StrategySpec::Random, 1))
            .unwrap();
        store
            .create("s2", scenario.name(), quick_config(StrategySpec::Random, 2))
            .unwrap();
        // Duplicate ids are rejected.
        assert!(store
            .create("s1", scenario.name(), quick_config(StrategySpec::Random, 3))
            .is_err());
        // Unregistered scenarios are rejected.
        assert!(store
            .create("s3", "ghost", quick_config(StrategySpec::Random, 3))
            .is_err());
        assert_eq!(store.resident_ids(), vec!["s1", "s2"]);

        // Both sessions borrow the same materialized artifacts.
        let a = store.cell("s1").unwrap();
        let b = store.cell("s2").unwrap();
        assert!(Arc::ptr_eq(
            &a.lock().unwrap().artifacts,
            &b.lock().unwrap().artifacts
        ));

        let s = store.get("s1").unwrap();
        assert_eq!(s.phase, SessionPhase::SeedDraw);
        assert_eq!(s.scenario, scenario.name());
        drive(&store, "s1");
        let report = store.report("s1").unwrap();
        assert_eq!(report.iterations.len(), 2);
        assert_eq!(store.get("s1").unwrap().phase, SessionPhase::Done);
    }

    #[test]
    fn checkpoint_evict_reload_is_transparent() {
        let (store, scenario) = store_with_scenario();
        store
            .create("s", scenario.name(), quick_config(StrategySpec::Random, 7))
            .unwrap();
        store.advance("s").unwrap(); // seed batch out
        let before = store.get("s").unwrap();
        store.evict("s").unwrap();
        assert_eq!(store.resident_len(), 0);
        // First touch reloads from the backend.
        let after = store.get("s").unwrap();
        assert_eq!(after, before);
        assert_eq!(store.resident_len(), 1);
        drive(&store, "s");

        // Deleting removes both tiers; the id is then unknown.
        store.delete("s").unwrap();
        assert!(store.get("s").is_err());
    }

    #[test]
    fn unknown_ids_are_structured_errors() {
        let (store, _) = store_with_scenario();
        assert!(store.get("nope").is_err());
        assert!(store.advance("nope").is_err());
        assert!(store.checkpoint("nope").is_err());
        assert!(store.evict("nope").is_err());
    }
}
