//! The keyed session store: many live [`MatchSession`]s over shared
//! dataset artifacts, persisted through a pluggable backend.
//!
//! ```text
//!            create(id, scenario, cfg)        checkpoint(id)
//!                      │                            │
//!                      ▼                            ▼
//!   ┌──────────────────────────────┐   ┌───────────────────────────┐
//!   │  SessionStore                │   │  SnapshotCodec            │
//!   │   sessions: id → SessionCell │──▶│  (json | binary frame)    │
//!   │   scenarios: name → Scenario │   └────────────┬──────────────┘
//!   │   cache: ArtifactCache       │                ▼
//!   └──────────────┬───────────────┘   ┌───────────────────────────┐
//!                  │ Arc<DatasetArtifacts>  │  RetryPolicy         │
//!                  ▼ (one per scenario,     │  → SnapshotBackend   │
//!   ┌──────────────────────────────┐ shared │  (memory | directory)│
//!   │ MatchSession  MatchSession … │ by every └─────────────────────┘
//!   └──────────────────────────────┘ session of the scenario)
//! ```
//!
//! Design decisions, in order of importance:
//!
//! * **Artifacts are shared, never per-session.** Materializing a
//!   scenario (dataset + featurizer + features) is orders of magnitude
//!   heavier than a session's loop state. The store resolves scenarios
//!   through the engine's [`ArtifactCache`], so a thousand sessions of
//!   one scenario hold a thousand `Arc`s to one allocation.
//! * **Sessions live behind per-session locks.** The store-level map
//!   lock is held only for lookup/insert/unlink (plus `delete`'s cheap
//!   backend removal, which must be atomic with the unlink); every
//!   operation on a session locks that session alone, so labeling
//!   traffic on different sessions never serializes. The
//!   lookup-then-lock window is closed by a tombstone protocol: a cell
//!   detached by `evict`/`delete` is marked under its own lock, and
//!   any operation that finds the mark retries against the map instead
//!   of mutating the orphan (see [`SessionStore::with_cell`]).
//! * **No lock poisoning is fatal.** A panicking worker must cost at
//!   most its own session, never the store. The map/registry locks are
//!   recovered `into_inner`-style (their maps are consistent after any
//!   single panicked call); a *session* mutex poisoned mid-step means
//!   the session's in-memory state is suspect, so the store discards it
//!   and rebuilds from the last checkpoint — or tombstones the id with
//!   a structured error when no checkpoint exists.
//! * **Backend faults are retried, then surfaced.** Every backend call
//!   goes through the store's [`RetryPolicy`]: transient faults
//!   ([`EmError::is_transient`]) are retried under bounded exponential
//!   backoff with seeded jitter; hard faults surface immediately.
//! * **Recovery trusts no single frame.** Reload and [`recover`]
//!   (crash recovery) walk [`SnapshotBackend::history`] newest→oldest,
//!   quarantining frames that fail to decode and restoring from the
//!   newest decodable one — a torn or corrupt last checkpoint costs one
//!   checkpoint interval, not the session.
//! * **Memory is bounded.** With
//!   [`SessionStore::with_max_resident`], admission past the cap
//!   evicts the least-recently-touched session (checkpoint-then-drop,
//!   so eviction is still never a correctness event).
//! * **Stepping is fanned out.** [`SessionStore::step_ready_sessions`]
//!   advances every session whose next `advance()` does real work
//!   (training or the initial seed draw) across rayon workers. Each
//!   session owns its rng and touches only its own state, so the fan-out
//!   is deterministic per session and the combined outcome is
//!   bit-identical to stepping serially.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use rayon::prelude::*;

use em_core::{Dataset, EmError, Label, PairIdx, Result};
use em_vector::Embeddings;

use crate::engine::{ArtifactCache, DatasetArtifacts, Scenario};
use crate::report::RunReport;
use crate::session::{MatchSession, SessionConfig, SessionPhase};

use super::backend::SnapshotBackend;
use super::codec::SnapshotCodec;
use super::retry::RetryPolicy;

/// One stepped session's outcome: `Ok(Some(_))` advanced, `Ok(None)`
/// skipped (not ready, detached, or poisoned — healed after the pass).
type StepOutcome = Result<Option<(String, SessionPhase)>>;

/// Lock with `into_inner` poison recovery, for the store-level maps.
///
/// Safe here because every critical section below mutates its map
/// through single `BTreeMap` calls that either complete or leave the
/// map untouched — a panic elsewhere while holding the lock cannot
/// leave a torn value behind.
fn locked<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A live session pinned to the artifacts it borrows.
///
/// [`MatchSession`] borrows its dataset and features for a lifetime
/// `'a`; the store needs to own sessions in a map while the borrowed
/// artifacts live in `Arc`s *in the same entry*. The borrow is
/// expressed as `'static` internally and never leaves this module: the
/// public API only returns owned data (phases, batches, snapshots,
/// reports).
struct SessionCell {
    /// Declared first so it drops before `artifacts` (field order is
    /// drop order) — the session's borrows never outlive their target.
    session: MatchSession<'static>,
    /// Keeps the borrowed artifacts alive for the cell's lifetime.
    artifacts: Arc<DatasetArtifacts>,
    /// The scenario key the session runs on (recovery bookkeeping).
    scenario: String,
    /// Tombstone, set under the cell lock when `evict`/`delete`
    /// detaches the cell from the map. A caller that cloned the cell's
    /// `Arc` *before* the detach and acquires the lock *after* it must
    /// not mutate this orphaned copy (its state would be silently lost
    /// on the next reload); [`SessionStore::with_cell`] retries against
    /// the map instead.
    detached: bool,
    /// Logical timestamp of the last store operation that touched this
    /// session (drawn from the store's monotone clock) — the LRU key
    /// for admission-control eviction.
    last_touch: u64,
}

// SAFETY: a `SessionCell` is always built through `SessionCell::open` /
// `SessionCell::restore`, both of which construct the session from a
// `SessionConfig` — the *owned* strategy path (`Box<dyn SelectionStrategy
// + Send>`). The only non-Send variant of `MatchSession`'s internals is
// the borrowed-strategy slot, which cannot occur here, and the `&'static
// Dataset`/`&'static Embeddings` borrows point into the immutable,
// `Sync` artifacts the cell itself keeps alive.
unsafe impl Send for SessionCell {}

impl SessionCell {
    /// Project `'static` references into the `Arc`'d artifacts.
    ///
    /// SAFETY (for both callers below): the references point into the
    /// heap allocation owned by `artifacts`; the cell holds that `Arc`
    /// for at least as long as the session (drop order), the artifacts
    /// are immutable, and an `Arc`'s pointee never moves.
    fn project(artifacts: &Arc<DatasetArtifacts>) -> (&'static Dataset, &'static Embeddings) {
        // SAFETY: per the contract above — both pointers target the
        // heap allocation `artifacts` owns; the cell holds that `Arc`
        // at least as long as the session (field drop order), the
        // artifacts are immutable, and an `Arc`'s pointee never moves.
        unsafe {
            (
                &*(&artifacts.dataset as *const Dataset),
                &*(&artifacts.features as *const Embeddings),
            )
        }
    }

    fn open(
        artifacts: Arc<DatasetArtifacts>,
        scenario: String,
        config: SessionConfig,
    ) -> Result<Self> {
        let (dataset, features) = Self::project(&artifacts);
        let session = MatchSession::new(dataset, features, config)?;
        Ok(SessionCell {
            session,
            artifacts,
            scenario,
            detached: false,
            last_touch: 0,
        })
    }

    fn restore(
        artifacts: Arc<DatasetArtifacts>,
        scenario: String,
        snapshot: &crate::session::SessionSnapshot,
    ) -> Result<Self> {
        let (dataset, features) = Self::project(&artifacts);
        let session = MatchSession::restore(dataset, features, snapshot)?;
        Ok(SessionCell {
            session,
            artifacts,
            scenario,
            detached: false,
            last_touch: 0,
        })
    }
}

/// An owned status view of one stored session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStatus {
    /// The session's key in the store.
    pub id: String,
    /// The scenario the session runs on.
    pub scenario: String,
    /// Where the session stands in the protocol.
    pub phase: SessionPhase,
    /// Oracle labels consumed so far (partial batches included).
    pub labels_used: usize,
    /// Unlabeled pairs remaining in the pool.
    pub pool_remaining: usize,
    /// Iterations recorded so far (seed model first).
    pub iterations: usize,
}

/// What [`SessionStore::recover`] found in the backend.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sessions restored into memory, in key order.
    pub recovered: Vec<String>,
    /// Corrupt frames moved aside as `(session id, generation)` —
    /// recovery fell back past each of these to an older checkpoint.
    pub quarantined: Vec<(String, u64)>,
    /// Sessions whose *every* persisted frame was corrupt: nothing to
    /// restore from. Their frames are quarantined for post-mortem and
    /// the ids report structured errors until recreated or deleted.
    pub lost: Vec<String>,
}

/// Outcome of one backend reload attempt (internal).
enum Reload {
    /// The live (or just-installed) cell.
    Loaded(Arc<Mutex<SessionCell>>),
    /// The backend holds no frames for this key.
    Missing,
    /// Every persisted frame failed to decode (all quarantined).
    AllCorrupt(usize),
}

/// A keyed store of live [`MatchSession`]s over shared artifacts.
///
/// See the [module docs](self) for the data-flow picture. All methods
/// take `&self`: the store is interior-mutable and safe to share
/// (`Arc<SessionStore>`) across request handlers.
pub struct SessionStore {
    backend: Box<dyn SnapshotBackend>,
    codec: SnapshotCodec,
    retry: RetryPolicy,
    max_resident: Option<usize>,
    cache: Arc<ArtifactCache>,
    scenarios: Mutex<BTreeMap<String, Scenario>>,
    sessions: Mutex<BTreeMap<String, Arc<Mutex<SessionCell>>>>,
    /// Sessions tombstoned with a structured reason (poisoned with no
    /// checkpoint, all frames corrupt): operations on these ids fail
    /// fast with the reason instead of "unknown id".
    lost: Mutex<BTreeMap<String, String>>,
    /// Monotone logical clock stamping `SessionCell::last_touch`.
    clock: AtomicU64,
}

impl SessionStore {
    /// A store persisting through `backend` with the given codec, a
    /// private artifact cache, the default [`RetryPolicy`] and no
    /// resident cap.
    pub fn new(backend: Box<dyn SnapshotBackend>, codec: SnapshotCodec) -> Self {
        Self::with_cache(backend, codec, Arc::new(ArtifactCache::new()))
    }

    /// A store sharing an existing [`ArtifactCache`] (e.g. with an
    /// experiment engine running the same scenarios in the same
    /// process).
    pub fn with_cache(
        backend: Box<dyn SnapshotBackend>,
        codec: SnapshotCodec,
        cache: Arc<ArtifactCache>,
    ) -> Self {
        SessionStore {
            backend,
            codec,
            retry: RetryPolicy::default(),
            max_resident: None,
            cache,
            scenarios: Mutex::new(BTreeMap::new()),
            sessions: Mutex::new(BTreeMap::new()),
            lost: Mutex::new(BTreeMap::new()),
            clock: AtomicU64::new(1),
        }
    }

    /// Replace the retry policy backend operations run under
    /// (builder-style; [`RetryPolicy::none`] disables retry).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Cap resident sessions at `max` (clamped to at least 1):
    /// admitting a session past the cap evicts the least-recently
    /// touched one (checkpoint-then-drop, transparently reloadable).
    pub fn with_max_resident(mut self, max: usize) -> Self {
        self.max_resident = Some(max.max(1));
        self
    }

    /// The codec snapshots are persisted under.
    pub fn codec(&self) -> SnapshotCodec {
        self.codec
    }

    /// The retry policy backend operations run under.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    // ---- retry-wrapped backend operations -------------------------------

    fn backend_put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        self.retry.run(|| self.backend.put(key, bytes))
    }

    fn backend_get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        self.retry.run(|| self.backend.get(key))
    }

    fn backend_remove(&self, key: &str) -> Result<()> {
        self.retry.run(|| self.backend.remove(key))
    }

    fn backend_keys(&self) -> Result<Vec<String>> {
        self.retry.run(|| self.backend.keys())
    }

    fn backend_history(&self, key: &str) -> Result<Vec<(u64, Vec<u8>)>> {
        self.retry.run(|| self.backend.history(key))
    }

    fn backend_quarantine(&self, key: &str, generation: u64) -> Result<()> {
        self.retry.run(|| self.backend.quarantine(key, generation))
    }

    // ---------------------------------------------------------------------

    /// Register a scenario sessions can be created on (and recovered
    /// into). Re-registering the same name replaces the recipe; the
    /// artifact cache still dedupes by name.
    pub fn register_scenario(&self, scenario: Scenario) {
        locked(&self.scenarios).insert(scenario.name().to_string(), scenario);
    }

    /// Ids of the sessions currently live in memory (evicted sessions
    /// are not listed; they reload on first use).
    pub fn resident_ids(&self) -> Vec<String> {
        locked(&self.sessions).keys().cloned().collect()
    }

    /// Number of sessions live in memory.
    pub fn resident_len(&self) -> usize {
        locked(&self.sessions).len()
    }

    /// Ids tombstoned with a structured loss reason (poisoned with no
    /// checkpoint, every frame corrupt), in key order.
    pub fn lost_ids(&self) -> Vec<String> {
        locked(&self.lost).keys().cloned().collect()
    }

    fn scenario_named(&self, name: &str) -> Result<Scenario> {
        locked(&self.scenarios).get(name).cloned().ok_or_else(|| {
            EmError::InvalidConfig(format!(
                "scenario `{name}` is not registered with this store"
            ))
        })
    }

    /// Open a new session under `id` on a registered scenario.
    ///
    /// Artifacts are resolved through the shared cache — creating the
    /// thousandth session of a scenario costs loop-state only. Errors
    /// if `id` already exists (in memory *or* in the backend: a crashed
    /// session must be recovered or deleted, not silently recreated).
    /// Creating over a tombstoned (lost) id is allowed and clears the
    /// tombstone — the old state is unrecoverable by definition.
    pub fn create(&self, id: &str, scenario_name: &str, config: SessionConfig) -> Result<()> {
        let scenario = self.scenario_named(scenario_name)?;
        if self.backend_get(id)?.is_some() {
            return Err(EmError::InvalidConfig(format!(
                "session `{id}` already has a persisted snapshot; recover or delete it first"
            )));
        }
        let artifacts = self.cache.get_or_materialize(&scenario)?;
        let mut cell = SessionCell::open(artifacts, scenario_name.to_string(), config)?;
        cell.last_touch = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut sessions = locked(&self.sessions);
            if sessions.contains_key(id) {
                return Err(EmError::InvalidConfig(format!(
                    "session `{id}` already exists"
                )));
            }
            sessions.insert(id.to_string(), Arc::new(Mutex::new(cell)));
        }
        locked(&self.lost).remove(id);
        self.enforce_admission(id)?;
        Ok(())
    }

    /// Evict least-recently-touched sessions until the resident count
    /// is within `max_resident` again (`keep` is never the victim).
    fn enforce_admission(&self, keep: &str) -> Result<()> {
        let Some(cap) = self.max_resident else {
            return Ok(());
        };
        loop {
            let victim = {
                let sessions = locked(&self.sessions);
                if sessions.len() <= cap {
                    return Ok(());
                }
                let mut lru: Option<(String, u64)> = None;
                for (vid, cell) in sessions.iter() {
                    if vid == keep {
                        continue;
                    }
                    // A busy or poisoned cell is a bad eviction victim;
                    // skip it — some other session will be idle.
                    let Ok(guard) = cell.try_lock() else { continue };
                    if guard.detached {
                        continue;
                    }
                    if lru
                        .as_ref()
                        .map(|(_, t)| guard.last_touch < *t)
                        .unwrap_or(true)
                    {
                        lru = Some((vid.clone(), guard.last_touch));
                    }
                }
                lru
            };
            match victim {
                Some((vid, _)) => self.evict(&vid)?,
                // Everything else is mid-operation: over the cap is the
                // lesser evil versus blocking admission on a lock.
                None => return Ok(()),
            }
        }
    }

    /// Reload `id` from the backend, walking the frame history newest →
    /// oldest and quarantining frames that fail to decode. Corrupt
    /// generations discovered on the way are appended to `quarantined`.
    fn reload(&self, id: &str, quarantined: &mut Vec<(String, u64)>) -> Result<Reload> {
        // Decode and restore outside every lock — this is the expensive
        // part — then re-validate under the map lock before inserting.
        let frames = self.backend_history(id)?;
        if frames.is_empty() {
            return Ok(Reload::Missing);
        }
        let total = frames.len();
        let mut snapshot = None;
        for (generation, bytes) in frames {
            match self.codec.decode(&bytes) {
                Ok(snap) => {
                    snapshot = Some(snap);
                    break;
                }
                Err(EmError::Codec(_)) => {
                    // Torn or corrupt frame: move it aside and fall back
                    // to the previous checkpoint.
                    self.backend_quarantine(id, generation)?;
                    quarantined.push((id.to_string(), generation));
                }
                Err(other) => return Err(other),
            }
        }
        let Some(snapshot) = snapshot else {
            locked(&self.lost).insert(
                id.to_string(),
                format!("all {total} persisted frames were corrupt (quarantined)"),
            );
            return Ok(Reload::AllCorrupt(total));
        };
        let scenario = self.scenario_named(&snapshot.dataset)?;
        let artifacts = self.cache.get_or_materialize(&scenario)?;
        let mut cell = SessionCell::restore(artifacts, snapshot.dataset.clone(), &snapshot)?;
        cell.last_touch = self.clock.fetch_add(1, Ordering::Relaxed);
        let installed = {
            let mut sessions = locked(&self.sessions);
            // A concurrent reload may have won; keep the first one.
            if let Some(existing) = sessions.get(id) {
                return Ok(Reload::Loaded(existing.clone()));
            }
            // A concurrent `delete` may have removed the persisted
            // snapshot after this reload read it; inserting anyway would
            // resurrect the deleted session. `delete` removes from the
            // backend while holding the map lock, so this re-check is
            // race-free.
            if self.retry.run(|| self.backend.get(id))?.is_none() {
                return Ok(Reload::Missing);
            }
            let cell = Arc::new(Mutex::new(cell));
            sessions.insert(id.to_string(), cell.clone());
            cell
        };
        locked(&self.lost).remove(id);
        self.enforce_admission(id)?;
        Ok(Reload::Loaded(installed))
    }

    /// Fetch the live cell for `id`, transparently reloading an evicted
    /// session from the backend (falling back past corrupt frames).
    fn cell(&self, id: &str) -> Result<Arc<Mutex<SessionCell>>> {
        if let Some(cell) = locked(&self.sessions).get(id).cloned() {
            return Ok(cell);
        }
        let mut quarantined = Vec::new();
        match self.reload(id, &mut quarantined)? {
            Reload::Loaded(cell) => Ok(cell),
            Reload::Missing => Err(EmError::InvalidConfig(format!(
                "no session `{id}` (in memory or persisted)"
            ))),
            Reload::AllCorrupt(total) => Err(EmError::Storage(format!(
                "session `{id}` lost: all {total} persisted frames were corrupt (quarantined)"
            ))),
        }
    }

    /// Discard a cell whose mutex was poisoned by a panicking operation:
    /// tombstone the orphan, unlink it from the map, and verify a
    /// checkpoint exists to rebuild from. Errors (and records the loss)
    /// when there is none.
    fn heal_poisoned(
        &self,
        id: &str,
        cell: &Arc<Mutex<SessionCell>>,
        poisoned: PoisonError<MutexGuard<'_, SessionCell>>,
    ) -> Result<()> {
        // The in-memory state may be mid-mutation; never serve it again.
        let mut guard = poisoned.into_inner();
        guard.detached = true;
        drop(guard);
        {
            let mut sessions = locked(&self.sessions);
            if let Some(entry) = sessions.get(id) {
                if Arc::ptr_eq(entry, cell) {
                    sessions.remove(id);
                }
            }
        }
        if self.backend_history(id)?.is_empty() {
            let reason = "session mutex poisoned by a panicking operation and no checkpoint exists"
                .to_string();
            locked(&self.lost).insert(id.to_string(), reason.clone());
            return Err(EmError::Storage(format!("session `{id}` lost: {reason}")));
        }
        // A checkpoint exists: the caller's retry loop will rebuild from
        // it through the ordinary reload path.
        Ok(())
    }

    /// Run `f` on session `id`'s locked cell.
    ///
    /// The lookup-then-lock window races with `evict`/`delete`: the
    /// cell `Arc` obtained from the map may be *detached* (tombstoned
    /// and removed) by the time its lock is acquired. Mutating such an
    /// orphan would silently lose the mutation on the next reload, so
    /// detached cells are never touched — the loop retries against the
    /// map, which either serves the live replacement (reloaded from the
    /// checkpoint the evict wrote) or reports the id gone. A *poisoned*
    /// cell is healed the same way: discarded and rebuilt from its last
    /// checkpoint (or tombstoned with a structured error if none
    /// exists).
    fn with_cell<R>(&self, id: &str, f: impl FnOnce(&mut SessionCell) -> Result<R>) -> Result<R> {
        let mut f = Some(f);
        loop {
            if let Some(reason) = locked(&self.lost).get(id) {
                return Err(EmError::Storage(format!("session `{id}` lost: {reason}")));
            }
            let cell = self.cell(id)?;
            let lock_outcome = cell.lock();
            match lock_outcome {
                Ok(mut guard) => {
                    if guard.detached {
                        drop(guard);
                        std::thread::yield_now();
                        continue;
                    }
                    guard.last_touch = self.clock.fetch_add(1, Ordering::Relaxed);
                    // em-lint: allow(no-panic) -- loop invariant: `f` stays Some until the one take() on the return path
                    let f = f.take().expect("with_cell closure consumed twice");
                    return f(&mut guard);
                }
                Err(poisoned) => {
                    self.heal_poisoned(id, &cell, poisoned)?;
                    continue;
                }
            }
        }
    }

    /// The shared artifacts session `id` runs on — what a labeling
    /// front-end needs to render query pairs (records, schema, feature
    /// rows). Cheap: clones an `Arc`, never the data.
    pub fn artifacts(&self, id: &str) -> Result<Arc<DatasetArtifacts>> {
        self.with_cell(id, |cell| Ok(cell.artifacts.clone()))
    }

    /// An owned status view of session `id`.
    pub fn get(&self, id: &str) -> Result<SessionStatus> {
        self.with_cell(id, |cell| {
            Ok(SessionStatus {
                id: id.to_string(),
                scenario: cell.scenario.clone(),
                phase: cell.session.phase(),
                labels_used: cell.session.labels_used(),
                pool_remaining: cell.session.pool_remaining(),
                iterations: cell.session.records().len(),
            })
        })
    }

    /// The pairs session `id` is waiting on (empty when none).
    pub fn next_query_batch(&self, id: &str) -> Result<Vec<PairIdx>> {
        self.with_cell(id, |cell| Ok(cell.session.next_query_batch()))
    }

    /// Submit (part of) the outstanding labels for session `id`.
    pub fn submit_labels(&self, id: &str, labels: &[(PairIdx, Label)]) -> Result<SessionPhase> {
        self.with_cell(id, |cell| cell.session.submit_labels(labels))
    }

    /// Perform session `id`'s current phase's work (seed draw, training
    /// + next selection, …) and return the new phase.
    pub fn advance(&self, id: &str) -> Result<SessionPhase> {
        self.with_cell(id, |cell| cell.session.advance())
    }

    /// The report of everything session `id` has recorded so far.
    pub fn report(&self, id: &str) -> Result<RunReport> {
        self.with_cell(id, |cell| Ok(cell.session.report()))
    }

    /// Persist session `id`'s complete state through the codec and
    /// backend. Returns the encoded size in bytes.
    pub fn checkpoint(&self, id: &str) -> Result<usize> {
        self.with_cell(id, |cell| self.checkpoint_cell(id, cell))
    }

    fn checkpoint_cell(&self, id: &str, cell: &SessionCell) -> Result<usize> {
        let snapshot = cell.session.snapshot()?;
        let bytes = self.codec.encode(&snapshot)?;
        self.backend_put(id, &bytes)?;
        Ok(bytes.len())
    }

    /// Checkpoint every resident session; returns `(id, bytes)` pairs
    /// in id order. Sessions whose mutex was poisoned are healed
    /// (rebuilt from their last checkpoint — which is therefore already
    /// persisted) and skipped.
    pub fn checkpoint_all(&self) -> Result<Vec<(String, usize)>> {
        let resident: Vec<(String, Arc<Mutex<SessionCell>>)> = {
            let sessions = locked(&self.sessions);
            sessions
                .iter()
                .map(|(id, c)| (id.clone(), c.clone()))
                .collect()
        };
        let mut out = Vec::with_capacity(resident.len());
        for (id, cell) in resident {
            match cell.lock() {
                Ok(cell) => {
                    if cell.detached {
                        // Evicted concurrently — the evict already
                        // persisted it.
                        continue;
                    }
                    out.push((id.clone(), self.checkpoint_cell(&id, &cell)?));
                }
                Err(poisoned) => {
                    // Heal; its last checkpoint already is the freshest
                    // trustworthy state, so there is nothing to persist.
                    // A tombstoned loss is deliberate, not an error of
                    // checkpoint_all.
                    let _ = self.heal_poisoned(&id, &cell, poisoned);
                }
            }
        }
        Ok(out)
    }

    /// Release session `id`'s memory, **checkpointing it first**.
    ///
    /// A session may be evicted at any phase — mid-batch with half its
    /// labels received included. The checkpoint-before-drop order is
    /// load-bearing: an in-flight session evicted without persisting
    /// would silently lose the labels already submitted, which is why
    /// this method has no "skip the checkpoint" variant. Any later
    /// operation on `id` transparently reloads it.
    pub fn evict(&self, id: &str) -> Result<()> {
        // Checkpoint and tombstone under the cell lock (no map lock —
        // the encode + backend write never serializes other sessions),
        // then unlink exactly the cell that was persisted. A caller
        // that cloned the cell's Arc before the unlink finds the
        // tombstone and retries against the map (`with_cell`), so no
        // mutation can slip between the persisted snapshot and the
        // drop.
        self.with_cell(id, |cell| {
            self.checkpoint_cell(id, cell)?;
            cell.detached = true;
            Ok(())
        })?;
        let mut sessions = locked(&self.sessions);
        // Only remove the tombstoned cell; a concurrent reload may
        // already have installed a fresh (live) replacement.
        if let Some(entry) = sessions.get(id) {
            let is_detached = match entry.lock() {
                Ok(guard) => guard.detached,
                // Poisoned: its state is suspect either way; unlink it
                // (its checkpoint from above is the source of truth).
                Err(poisoned) => {
                    let mut guard = poisoned.into_inner();
                    guard.detached = true;
                    true
                }
            };
            if is_detached {
                sessions.remove(id);
            }
        }
        Ok(())
    }

    /// Permanently remove session `id` from memory and the backend
    /// (clears a loss tombstone too).
    pub fn delete(&self, id: &str) -> Result<()> {
        // Tombstone any resident cell (so racing operations holding its
        // Arc fail over to the map instead of mutating an orphan) and
        // remove the persisted snapshot while still holding the map
        // lock — `cell`'s reload path re-checks the backend under this
        // lock, so a reload in flight cannot resurrect the session.
        let mut sessions = locked(&self.sessions);
        if let Some(entry) = sessions.remove(id) {
            entry
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .detached = true;
        }
        locked(&self.lost).remove(id);
        self.backend_remove(id)
    }

    /// Reload every persisted session from the backend — the crash
    /// recovery path.
    ///
    /// Each session's frame history is walked newest→oldest: frames
    /// that fail to decode are quarantined and recovery falls back to
    /// the previous checkpoint, so one torn or corrupt frame never
    /// fails the store. A session with *no* decodable frame is recorded
    /// in [`RecoveryReport::lost`] (and tombstoned with a structured
    /// error) instead of aborting recovery of the others. Sessions
    /// already resident are left untouched — their in-memory state is
    /// newer than or equal to the persisted one.
    pub fn recover(&self) -> Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        for id in self.backend_keys()? {
            let already_resident = locked(&self.sessions).contains_key(&id);
            if already_resident {
                continue;
            }
            match self.reload(&id, &mut report.quarantined)? {
                Reload::Loaded(_) => report.recovered.push(id),
                Reload::Missing => {} // deleted concurrently
                Reload::AllCorrupt(_) => report.lost.push(id),
            }
        }
        Ok(report)
    }

    /// Advance every session whose current phase has work to do
    /// (`SeedDraw` or `Training` — a complete batch waiting to train),
    /// fanning the sessions out across rayon workers.
    ///
    /// Each session's step is a pure function of its own state (its own
    /// rng, pool, matcher), so the fan-out is deterministic per session
    /// and bit-identical to stepping the same sessions serially — the
    /// serve bench's golden check pins this. Dispatch order comes from
    /// the engine's [`CostModel`](crate::engine::CostModel): sessions
    /// are packed onto workers with LPT so the heaviest (DIAL on the
    /// biggest dataset) start first instead of queueing behind cheap
    /// ones. Returns `(id, new phase)` in id order for the sessions
    /// that were stepped. A session that panics mid-step poisons only
    /// its own lock; the next operation on it heals it from its last
    /// checkpoint.
    pub fn step_ready_sessions(&self) -> Result<Vec<(String, SessionPhase)>> {
        // The map lock is held only to clone the resident (id, Arc)
        // list — never across a cell lock, so a session mid-training
        // can never stall operations on other sessions. Readiness is
        // checked inside each worker under that session's own lock
        // (the only place the check can be race-free anyway).
        let resident: Vec<(String, Arc<Mutex<SessionCell>>)> = {
            let sessions = locked(&self.sessions);
            sessions
                .iter()
                .map(|(id, cell)| (id.clone(), cell.clone()))
                .collect()
        };
        // Estimate each session's step cost for dispatch ordering only —
        // a snapshot via try_lock (a busy or poisoned cell gets the
        // default weight; it would be skipped or healed below anyway).
        // The estimate never changes *what* runs, so a stale cost can
        // delay a session's start but never its result.
        let model = crate::engine::CostModel;
        let costs: Vec<f64> = resident
            .iter()
            .map(|(_, cell)| match cell.try_lock() {
                Ok(guard) => model.cost_of_named(
                    &guard.session.strategy_name(),
                    guard.artifacts.dataset.len(),
                ),
                Err(_) => 1.0,
            })
            .collect();
        let n_bins = if rayon::in_serial_mode() {
            1
        } else {
            rayon::current_num_threads()
        };
        let bins = crate::engine::lpt_assign(&costs, n_bins);
        let step_one = |idx: usize| -> StepOutcome {
            let (id, cell) = &resident[idx];
            let mut cell = match cell.lock() {
                Ok(cell) => cell,
                // A previous step panicked on this session: skip it
                // this round; the serial pass below heals it.
                Err(_) => return Ok(None),
            };
            if cell.detached
                || !matches!(
                    cell.session.phase(),
                    SessionPhase::SeedDraw | SessionPhase::Training
                )
            {
                return Ok(None);
            }
            let phase = cell.session.advance()?;
            Ok(Some((id.clone(), phase)))
        };
        // One bin per worker (the shim's contiguous partitioning maps a
        // bins-length fan-out 1:1); within a bin, heaviest first.
        let per_bin: Vec<Vec<(usize, StepOutcome)>> = bins
            .par_iter()
            .map(|bin| bin.iter().map(|&idx| (idx, step_one(idx))).collect())
            .collect();
        let mut outcomes: Vec<Option<StepOutcome>> = resident.iter().map(|_| None).collect();
        for bin in per_bin {
            for (idx, outcome) in bin {
                outcomes[idx] = Some(outcome);
            }
        }
        let outcomes: Vec<StepOutcome> = outcomes
            .into_iter()
            .map(|o| {
                o.unwrap_or_else(|| {
                    Err(EmError::Internal(
                        "scheduler bins missed a resident session".to_string(),
                    ))
                })
            })
            .collect();
        // Heal any poisoned sessions found during the fan-out (serially,
        // so healing cannot race itself). Tombstoned losses are
        // deliberate and must not fail the step round.
        for (id, cell) in &resident {
            if let Err(poisoned) = cell.lock() {
                let _ = self.heal_poisoned(id, cell, poisoned);
            }
        }
        let mut stepped = Vec::new();
        for outcome in outcomes {
            if let Some(entry) = outcome? {
                stepped.push(entry);
            }
        }
        Ok(stepped)
    }
}

impl std::fmt::Debug for SessionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionStore")
            .field("codec", &self.codec)
            .field("resident", &self.resident_len())
            .field("max_resident", &self.max_resident)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::super::backend::MemoryBackend;
    use super::super::fault::{Fault, FaultPlan, FaultyBackend};
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::strategies::StrategySpec;
    use em_synth::DatasetProfile;

    fn quick_config(strategy: StrategySpec, seed: u64) -> SessionConfig {
        let mut experiment = ExperimentConfig::low_resource(1, 10);
        experiment.al.seed_size = 10;
        experiment.matcher.epochs = 2;
        experiment.battleship.kselect_sample = 128;
        SessionConfig {
            experiment,
            strategy,
            seed,
        }
    }

    fn store_with_scenario() -> (SessionStore, Scenario) {
        let scenario = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 5);
        let store = SessionStore::new(Box::new(MemoryBackend::new()), SnapshotCodec::Binary);
        store.register_scenario(scenario.clone());
        (store, scenario)
    }

    /// Drive a stored session to Done through the store API.
    fn drive(store: &SessionStore, id: &str) {
        loop {
            let status = store.get(id).unwrap();
            match status.phase {
                SessionPhase::AwaitingLabels => {
                    let batch = store.next_query_batch(id).unwrap();
                    let artifacts = store.artifacts(id).unwrap();
                    let answers: Vec<(PairIdx, Label)> = batch
                        .iter()
                        .map(|&p| (p, artifacts.dataset.ground_truth(p)))
                        .collect();
                    store.submit_labels(id, &answers).unwrap();
                }
                SessionPhase::Done => break,
                SessionPhase::SeedDraw | SessionPhase::Training => {
                    store.advance(id).unwrap();
                }
            }
        }
    }

    #[test]
    fn create_get_drive_and_share_artifacts() {
        let (store, scenario) = store_with_scenario();
        store
            .create("s1", scenario.name(), quick_config(StrategySpec::Random, 1))
            .unwrap();
        store
            .create("s2", scenario.name(), quick_config(StrategySpec::Random, 2))
            .unwrap();
        // Duplicate ids are rejected.
        assert!(store
            .create("s1", scenario.name(), quick_config(StrategySpec::Random, 3))
            .is_err());
        // Unregistered scenarios are rejected.
        assert!(store
            .create("s3", "ghost", quick_config(StrategySpec::Random, 3))
            .is_err());
        assert_eq!(store.resident_ids(), vec!["s1", "s2"]);

        // Both sessions borrow the same materialized artifacts.
        let a = store.cell("s1").unwrap();
        let b = store.cell("s2").unwrap();
        assert!(Arc::ptr_eq(
            &a.lock().unwrap().artifacts,
            &b.lock().unwrap().artifacts
        ));

        let s = store.get("s1").unwrap();
        assert_eq!(s.phase, SessionPhase::SeedDraw);
        assert_eq!(s.scenario, scenario.name());
        drive(&store, "s1");
        let report = store.report("s1").unwrap();
        assert_eq!(report.iterations.len(), 2);
        assert_eq!(store.get("s1").unwrap().phase, SessionPhase::Done);
    }

    #[test]
    fn checkpoint_evict_reload_is_transparent() {
        let (store, scenario) = store_with_scenario();
        store
            .create("s", scenario.name(), quick_config(StrategySpec::Random, 7))
            .unwrap();
        store.advance("s").unwrap(); // seed batch out
        let before = store.get("s").unwrap();
        store.evict("s").unwrap();
        assert_eq!(store.resident_len(), 0);
        // First touch reloads from the backend.
        let after = store.get("s").unwrap();
        assert_eq!(after, before);
        assert_eq!(store.resident_len(), 1);
        drive(&store, "s");

        // Deleting removes both tiers; the id is then unknown.
        store.delete("s").unwrap();
        assert!(store.get("s").is_err());
    }

    #[test]
    fn unknown_ids_are_structured_errors() {
        let (store, _) = store_with_scenario();
        assert!(store.get("nope").is_err());
        assert!(store.advance("nope").is_err());
        assert!(store.checkpoint("nope").is_err());
        assert!(store.evict("nope").is_err());
    }

    #[test]
    fn poisoned_session_is_rebuilt_from_its_checkpoint() {
        let (store, scenario) = store_with_scenario();
        store
            .create("s", scenario.name(), quick_config(StrategySpec::Random, 9))
            .unwrap();
        store.advance("s").unwrap(); // seed batch out
        let before = store.get("s").unwrap();
        store.checkpoint("s").unwrap();

        // A worker panics while holding the session lock.
        let cell = store.cell("s").unwrap();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cell.lock().unwrap();
            panic!("worker dies mid-step");
        }));
        assert!(panicked.is_err());
        assert!(cell.lock().is_err(), "cell lock not actually poisoned");

        // The next operation transparently heals from the checkpoint…
        let after = store.get("s").unwrap();
        assert_eq!(after, before, "healed session diverged from checkpoint");
        assert!(store.lost_ids().is_empty());
        // …and the session still finishes normally.
        drive(&store, "s");
        assert_eq!(store.get("s").unwrap().phase, SessionPhase::Done);
    }

    #[test]
    fn poisoned_session_without_checkpoint_is_tombstoned() {
        let (store, scenario) = store_with_scenario();
        store
            .create("s", scenario.name(), quick_config(StrategySpec::Random, 9))
            .unwrap();
        // No checkpoint ever written; poison the cell.
        let cell = store.cell("s").unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cell.lock().unwrap();
            panic!("worker dies before any checkpoint");
        }));

        // Structured loss, not a panic and not "unknown id".
        let err = store.get("s").unwrap_err();
        assert!(
            matches!(&err, EmError::Storage(msg) if msg.contains("lost")),
            "unexpected error {err}"
        );
        assert_eq!(store.lost_ids(), vec!["s"]);
        // Every subsequent op fails the same structured way…
        assert!(store.advance("s").is_err());
        // …the rest of the store still works…
        store
            .create(
                "other",
                scenario.name(),
                quick_config(StrategySpec::Random, 10),
            )
            .unwrap();
        drive(&store, "other");
        // …and creating over the tombstone clears it.
        store
            .create("s", scenario.name(), quick_config(StrategySpec::Random, 11))
            .unwrap();
        assert!(store.lost_ids().is_empty());
        drive(&store, "s");
    }

    #[test]
    fn max_resident_evicts_least_recently_touched() {
        let scenario = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 5);
        let store = SessionStore::new(Box::new(MemoryBackend::new()), SnapshotCodec::Binary)
            .with_max_resident(2);
        store.register_scenario(scenario.clone());
        for (i, id) in ["a", "b", "c"].iter().enumerate() {
            store
                .create(
                    id,
                    scenario.name(),
                    quick_config(StrategySpec::Random, i as u64),
                )
                .unwrap();
        }
        // `a` was touched least recently → evicted by `c`'s admission.
        assert_eq!(store.resident_ids(), vec!["b", "c"]);
        // It is still transparently reachable (reloads, evicting `b`).
        assert_eq!(store.get("a").unwrap().phase, SessionPhase::SeedDraw);
        assert_eq!(store.resident_len(), 2);
        assert!(store.resident_ids().contains(&"a".to_string()));
        // Touch order, not insert order, decides the victim.
        store.get("c").unwrap();
        store
            .create("d", scenario.name(), quick_config(StrategySpec::Random, 9))
            .unwrap();
        assert_eq!(store.resident_ids(), vec!["c", "d"]);
        // Nothing was lost: every session still drives to Done.
        for id in ["a", "b", "c", "d"] {
            drive(&store, id);
        }
    }

    #[test]
    fn transient_backend_faults_are_retried_through() {
        let scenario = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 5);
        let backend = Arc::new(FaultyBackend::new(
            MemoryBackend::new(),
            FaultPlan::transient(0xFA11, 0.3),
        ));
        let store = SessionStore::new(Box::new(backend.clone()), SnapshotCodec::Binary)
            .with_retry_policy(RetryPolicy {
                base_delay_micros: 10,
                max_delay_micros: 100,
                total_budget_micros: 10_000,
                ..RetryPolicy::default()
            });
        store.register_scenario(scenario.clone());
        store
            .create("s", scenario.name(), quick_config(StrategySpec::Random, 3))
            .unwrap();
        store.advance("s").unwrap();
        for _ in 0..10 {
            store.checkpoint("s").unwrap();
        }
        store.evict("s").unwrap();
        drive(&store, "s");
        assert!(
            backend.stats().transient > 0,
            "the fault plan injected nothing — test is vacuous"
        );
    }

    #[test]
    fn corrupt_newest_frame_falls_back_to_previous_generation() {
        let scenario = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 5);
        let backend = Arc::new(FaultyBackend::new(MemoryBackend::new(), FaultPlan::none(1)));
        let store = SessionStore::new(Box::new(backend.clone()), SnapshotCodec::Binary);
        store.register_scenario(scenario.clone());
        store
            .create("s", scenario.name(), quick_config(StrategySpec::Random, 3))
            .unwrap();
        store.advance("s").unwrap();
        store.checkpoint("s").unwrap(); // generation 1: good
        let at_gen1 = store.get("s").unwrap();

        // Mutate past generation 1, then persist the newer state through
        // a frame that is silently corrupted on its way to the backend.
        let batch = store.next_query_batch("s").unwrap();
        let artifacts = store.artifacts("s").unwrap();
        let answers: Vec<(PairIdx, Label)> = batch
            .iter()
            .map(|&p| (p, artifacts.dataset.ground_truth(p)))
            .collect();
        store.submit_labels("s", &answers).unwrap();
        backend.force_on_put(Fault::Corrupt);
        store.checkpoint("s").unwrap(); // generation 2: corrupt at rest

        // A fresh store over the same backend (a restart) must
        // quarantine the corrupt newest frame and restore generation 1.
        let fresh = SessionStore::new(Box::new(backend.clone()), SnapshotCodec::Binary);
        fresh.register_scenario(scenario.clone());
        let report = fresh.recover().unwrap();
        assert_eq!(report.recovered, vec!["s"]);
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.lost.is_empty());
        let after = fresh.get("s").unwrap();
        assert_eq!(after, at_gen1, "fallback restored the wrong generation");
        drive(&fresh, "s");
    }

    #[test]
    fn all_frames_corrupt_is_a_structured_loss_not_a_store_failure() {
        let scenario = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 5);
        let backend = Arc::new(MemoryBackend::new());
        let store = SessionStore::new(Box::new(backend.clone()), SnapshotCodec::Binary);
        store.register_scenario(scenario.clone());
        // One healthy session, one whose every frame is garbage.
        store
            .create("ok", scenario.name(), quick_config(StrategySpec::Random, 1))
            .unwrap();
        store.checkpoint("ok").unwrap();
        backend.put("junk", b"not a snapshot at all").unwrap();
        backend.put("junk", b"still not a snapshot").unwrap();

        // recover(): the healthy session comes back, the junk key is a
        // structured loss, recovery itself succeeds.
        let fresh = SessionStore::new(Box::new(backend.clone()), SnapshotCodec::Binary);
        fresh.register_scenario(scenario.clone());
        let report = fresh.recover().unwrap();
        assert_eq!(report.recovered, vec!["ok"]);
        assert_eq!(report.lost, vec!["junk"]);
        assert_eq!(report.quarantined.len(), 2);
        let err = fresh.get("junk").unwrap_err();
        assert!(
            matches!(&err, EmError::Storage(msg) if msg.contains("lost")),
            "unexpected error {err}"
        );
        drive(&fresh, "ok");
    }
}
