//! # battleship
//!
//! The paper's contribution: a spatially-aware active-learning selection
//! policy for low-resource entity matching, plus the baselines it is
//! evaluated against and the experiment runner that reproduces the
//! paper's figures and tables.
//!
//! ## The algorithm in one paragraph (§3)
//!
//! Each iteration trains a fresh matcher on the labeled set, extracts a
//! representation and an (over-confident) match probability for every
//! candidate pair, and then plays Battleship in the latent space: the
//! match-predicted and non-match-predicted pools are each clustered with
//! constrained K-Means and woven into pair graphs whose connected
//! components receive budget shares proportional to size (Eq. 2,
//! positively skewed early via `B⁺ = B·max(0.8 − i/20, 0.5)`). Within
//! each component, pairs are ranked by a blend (Eq. 6, weight `α`) of
//! spatial-aware uncertainty (Eq. 4, weight `β` between model entropy
//! and neighbourhood-agreement entropy) and weighted-PageRank centrality
//! (Eq. 5); the top-ranked pairs go to the oracle, and the spatially most
//! *certain* pairs augment the train set as weak labels (§3.7).
//!
//! ## Crate layout
//!
//! * [`config`] — every knob of the algorithm and the experiment
//!   protocol, mirroring §4.2's published values,
//! * [`budget`] — Eq. 2 budget distribution and the `B⁺` schedule
//!   (Example 6 is a unit test),
//! * [`spatial`] — the cluster→graph→components pipeline shared by
//!   selection and weak supervision,
//! * [`selection`] — the battleship scoring and per-component top-k,
//! * [`weak`] — weak supervision (spatial Eq. 4 and DAL-style Eq. 1
//!   variants),
//! * [`strategies`] — [`strategies::SelectionStrategy`] implementations:
//!   Battleship, DAL, DIAL, Random,
//! * [`baselines`] — the non-AL extremes: ZeroER (0 labels) and Full D
//!   (all labels),
//! * [`session`] — the step-driven session API: the protocol loop
//!   inverted into the resumable, checkpointable
//!   [`session::MatchSession`] state machine (seed draw → awaiting
//!   labels → training → done),
//! * [`serve`] — the serving subsystem: the keyed [`serve::SessionStore`]
//!   holding many concurrent sessions over shared artifacts, the
//!   pluggable [`serve::SnapshotCodec`] (JSON or the compact checksummed
//!   binary frame) and [`serve::SnapshotBackend`]s (memory / directory),
//!   with parallel stepping and bit-identical crash recovery,
//! * [`engine`] — the parallel experiment engine: scenario registry,
//!   shared dataset artifacts, grid expansion and the rayon scheduler
//!   that fans dataset × strategy × seed runs out across workers (each
//!   worker drives one session against a perfect oracle),
//! * [`runner`] — the single-run entry point (a thin oracle-driver over
//!   a session) plus the preserved pre-redesign closed loop
//!   ([`runner::run_closed_loop`], the golden/bench reference),
//! * [`report`] — multi-seed and grid aggregation, F1 curves, AUC
//!   (Table 5),
//! * [`blocking`] — the sub-quadratic candidate-generation tier
//!   (exhaustive / token inverted-index / banded SimHash with exact
//!   re-ranking) that scenarios run before featurization, unlocking
//!   10⁵–10⁶-record pools,
//! * [`api`] — the **documented public facade**: one import path for
//!   sessions, strategies, scenarios, reports and the engine.

pub mod api;
pub mod baselines;
pub mod blocking;
pub mod budget;
pub mod config;
pub mod engine;
pub mod report;
pub mod runner;
pub mod selection;
pub mod serve;
pub mod session;
pub mod spatial;
pub mod strategies;
pub mod weak;

pub use baselines::{full_d_f1, zeroer_f1};
pub use blocking::{
    block_tables, BlockingOutput, BlockingSpec, BlockingStats, LshBlocking, MAX_EXHAUSTIVE_PAIRS,
};
pub use budget::{distribute_budget, positive_budget};
pub use config::{
    ALConfig, BattleshipParams, CentralityMeasure, ExperimentConfig, GridConfig, WeakMethod,
};
pub use engine::{
    cost_weight, lpt_assign, lpt_start_offsets, ArtifactCache, CandidatePool, CellKind, CostModel,
    DatasetArtifacts, ExperimentGrid, RunSpec, Scenario, ScenarioSource, ScheduleMode,
};
pub use report::{GridCell, GridReport, IterationRecord, MultiSeedReport, RunReport};
pub use runner::{run_active_learning, run_closed_loop, ActiveLearningRun};
pub use serve::{
    DirBackend, MemoryBackend, SessionStatus, SessionStore, SnapshotBackend, SnapshotCodec,
};
pub use session::{MatchSession, SessionConfig, SessionPhase, SessionSnapshot};
pub use spatial::{SpatialIndex, SpatialParams};
pub use strategies::{
    BattleshipStrategy, DalStrategy, DialStrategy, RandomStrategy, SelectionContext,
    SelectionScratch, SelectionStrategy, StrategySpec,
};
