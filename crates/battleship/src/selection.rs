//! The battleship scoring and per-component selection (§3.5–3.6).
//!
//! Given the three spatial indexes of an iteration (`G⁺`, `G⁻`, `G`),
//! this module computes per-node certainty (Eq. 4) and centrality
//! (Eq. 5), blends their *ranks* (Eq. 6 — ranks rather than raw scores
//! "to overcome possible scaling issues"), and takes the top pairs of
//! every connected component under its Eq. 2 budget share.

use std::cell::RefCell;

use rayon::prelude::*;

use em_core::{EmError, Result, Rng};
use em_graph::{
    betweenness_with_scratch, certainty_score, pagerank, BetweennessScratch, PageRankConfig,
    PairGraph,
};

use crate::budget::distribute_budget;
use crate::config::CentralityMeasure;
use crate::spatial::SpatialIndex;

/// Rank positions (0 = best) of items sorted descending by score, ties
/// broken by index for determinism.
pub(crate) fn descending_ranks(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut ranks = vec![0usize; scores.len()];
    for (rank, &item) in order.iter().enumerate() {
        ranks[item] = rank;
    }
    ranks
}

/// Select pairs from one prediction-side index (`G⁺` or `G⁻`).
///
/// * `side` — the spatial index over this side's pool nodes,
/// * `hetero` — the heterogeneous index over pool ∪ labeled nodes,
/// * `to_hetero[i]` — node id in `hetero` of side node `i`,
/// * `side_budget` — this side's share of `B`,
/// * `alpha`, `beta` — Eq. 6 / Eq. 4 weights,
/// * `rho` — PageRank damping.
///
/// Returns *side-node indices* (the caller maps them back to pool
/// positions / global pair ids).
#[allow(clippy::too_many_arguments)]
pub fn select_side(
    side: &SpatialIndex,
    hetero: &PairGraph,
    to_hetero: &[usize],
    side_budget: usize,
    alpha: f64,
    beta: f64,
    rho: f64,
    rng: &mut Rng,
) -> Result<Vec<usize>> {
    select_side_with(
        side,
        hetero,
        to_hetero,
        side_budget,
        alpha,
        beta,
        rho,
        CentralityMeasure::PageRank,
        rng,
    )
}

/// [`select_side`] with an explicit centrality measure (the
/// PageRank-vs-betweenness ablation knob).
#[allow(clippy::too_many_arguments)]
pub fn select_side_with(
    side: &SpatialIndex,
    hetero: &PairGraph,
    to_hetero: &[usize],
    side_budget: usize,
    alpha: f64,
    beta: f64,
    rho: f64,
    centrality: CentralityMeasure,
    rng: &mut Rng,
) -> Result<Vec<usize>> {
    if to_hetero.len() != side.len() {
        return Err(EmError::DimensionMismatch {
            context: "select_side to_hetero map".into(),
            expected: side.len(),
            actual: to_hetero.len(),
        });
    }
    if side_budget == 0 || side.is_empty() {
        return Ok(Vec::new());
    }

    // Budget per connected component (Eq. 2 + random residue). This is
    // the only step that consumes randomness, so everything after it is
    // embarrassingly parallel.
    let sizes: Vec<usize> = side.components.iter().map(Vec::len).collect();
    let shares = distribute_budget(side_budget, &sizes, rng)?;

    let pr_config = PageRankConfig {
        rho,
        ..Default::default()
    };

    // Score components in parallel — they are independent once budgets
    // are assigned (ROADMAP's per-component scoring item). Each worker
    // thread reuses one betweenness scratch across the components it
    // processes; per-component results merge in component order below,
    // so the selection is identical to the serial loop's at any thread
    // count (the determinism test asserts it).
    let jobs: Vec<(usize, usize)> = shares
        .iter()
        .enumerate()
        .filter(|&(_, &share)| share > 0)
        .map(|(ci, &share)| (ci, share))
        .collect();
    let per_component: Vec<Result<Vec<usize>>> = jobs
        .par_iter()
        .map(|&(ci, share)| {
            let comp = &side.components[ci];
            // Certainty scores from the heterogeneous graph (§3.5.1).
            let unc: Vec<f64> = comp
                .iter()
                .map(|&v| certainty_score(hetero, to_hetero[v], beta))
                .collect::<Result<_>>()?;
            // Centrality from this side's graph (§3.5.2).
            let cen = match centrality {
                CentralityMeasure::PageRank => pagerank(&side.graph, comp, pr_config)?,
                CentralityMeasure::Betweenness => BETWEENNESS_SCRATCH.with(|scratch| {
                    betweenness_with_scratch(&side.graph, comp, &mut scratch.borrow_mut())
                })?,
            };

            // Eq. 6: blend the descending ranks; smaller blended rank wins.
            let unc_ranks = descending_ranks(&unc);
            let cen_ranks = descending_ranks(&cen);
            let mut order: Vec<usize> = (0..comp.len()).collect();
            let blended: Vec<f64> = (0..comp.len())
                .map(|i| alpha * unc_ranks[i] as f64 + (1.0 - alpha) * cen_ranks[i] as f64)
                .collect();
            order.sort_by(|&a, &b| {
                blended[a]
                    .partial_cmp(&blended[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(comp[a].cmp(&comp[b]))
            });
            Ok(order.iter().take(share).map(|&i| comp[i]).collect())
        })
        .collect();

    // Fixed merge order: component index ascending, exactly as the
    // serial loop appended.
    let mut selected = Vec::with_capacity(side_budget);
    for result in per_component {
        selected.extend(result?);
    }
    Ok(selected)
}

thread_local! {
    /// Per-thread betweenness scratch: the parallel component loop above
    /// reuses it across every component a worker processes, keeping the
    /// no-per-component-allocation property of the old shared scratch.
    static BETWEENNESS_SCRATCH: RefCell<BetweennessScratch> =
        RefCell::new(BetweennessScratch::new());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::{SpatialIndex, SpatialParams};
    use em_graph::NodeKind;
    use em_vector::Embeddings;

    fn tiny_index(n: usize, kind: NodeKind, conf: f32, seed: u64) -> SpatialIndex {
        let mut rng = Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.normal() as f32, rng.normal() as f32, 1.0])
            .collect();
        let data = Embeddings::from_rows(&rows).unwrap();
        SpatialIndex::build(
            &data,
            &vec![kind; n],
            &vec![conf; n],
            &SpatialParams {
                q: 2,
                extra_ratio: 0.05,
                cluster_min_frac: 0.05,
                cluster_max_frac: 0.5,
                kselect_sample: 64,
                ann: em_vector::AnnPolicy::with_threshold(4096),
                seed,
            },
        )
        .unwrap()
    }

    #[test]
    fn descending_ranks_basic() {
        assert_eq!(descending_ranks(&[0.1, 0.9, 0.5]), vec![2, 0, 1]);
        // Ties break toward the smaller index.
        assert_eq!(descending_ranks(&[0.5, 0.5]), vec![0, 1]);
        assert!(descending_ranks(&[]).is_empty());
    }

    #[test]
    fn select_side_respects_budget() {
        let side = tiny_index(30, NodeKind::PredictedMatch, 0.9, 1);
        // Heterogeneous graph = same node set here (no labeled nodes).
        let mut rng = Rng::seed_from_u64(2);
        let to_hetero: Vec<usize> = (0..30).collect();
        let picked =
            select_side(&side, &side.graph, &to_hetero, 10, 0.5, 0.5, 0.85, &mut rng).unwrap();
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10, "duplicate selections");
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let side = tiny_index(10, NodeKind::PredictedMatch, 0.9, 3);
        let to_hetero: Vec<usize> = (0..10).collect();
        let mut rng = Rng::seed_from_u64(4);
        assert!(
            select_side(&side, &side.graph, &to_hetero, 0, 0.5, 0.5, 0.85, &mut rng)
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn budget_exceeding_pool_takes_everything() {
        let side = tiny_index(8, NodeKind::PredictedNonMatch, 0.8, 5);
        let to_hetero: Vec<usize> = (0..8).collect();
        let mut rng = Rng::seed_from_u64(6);
        let picked = select_side(
            &side,
            &side.graph,
            &to_hetero,
            100,
            0.5,
            0.5,
            0.85,
            &mut rng,
        )
        .unwrap();
        assert_eq!(picked.len(), 8);
    }

    #[test]
    fn map_length_checked() {
        let side = tiny_index(5, NodeKind::PredictedMatch, 0.9, 7);
        let mut rng = Rng::seed_from_u64(8);
        let bad_map = vec![0usize; 3];
        assert!(select_side(&side, &side.graph, &bad_map, 2, 0.5, 0.5, 0.85, &mut rng).is_err());
    }

    #[test]
    fn parallel_component_scoring_equals_serial() {
        // Enough nodes for several connected components, both centrality
        // measures, several seeds: the parallel fan-out must reproduce
        // the serial loop exactly (same pairs, same order).
        let side = tiny_index(80, NodeKind::PredictedMatch, 0.9, 21);
        assert!(
            side.components.len() > 1,
            "fixture needs multiple components"
        );
        let to_hetero: Vec<usize> = (0..80).collect();
        for measure in [CentralityMeasure::PageRank, CentralityMeasure::Betweenness] {
            for seed in [1u64, 2, 3] {
                let par = select_side_with(
                    &side,
                    &side.graph,
                    &to_hetero,
                    25,
                    0.5,
                    0.5,
                    0.85,
                    measure,
                    &mut Rng::seed_from_u64(seed),
                )
                .unwrap();
                let ser = rayon::serial_scope(|| {
                    select_side_with(
                        &side,
                        &side.graph,
                        &to_hetero,
                        25,
                        0.5,
                        0.5,
                        0.85,
                        measure,
                        &mut Rng::seed_from_u64(seed),
                    )
                    .unwrap()
                });
                assert_eq!(par, ser, "measure {measure:?} seed {seed}");
            }
        }
    }

    #[test]
    fn alpha_one_prefers_uncertain_alpha_zero_prefers_central() {
        // Hand-built single component: node 0 is a hub whose
        // neighbourhood unanimously agrees (spatial entropy 0, centrality
        // high); node 4 sits exactly between camps (ϕ̃ = 0.5 → spatial
        // entropy 1, the Eq. 4 maximum) with low centrality. Note the
        // Eq. 3/4 semantics: a *fully disagreeing* neighbourhood (node 6,
        // ϕ̃ = 0) is just as low-entropy as a fully agreeing one — only
        // ambivalent neighbourhoods are uncertain.
        let mut kinds = vec![NodeKind::PredictedMatch; 7];
        kinds[6] = NodeKind::PredictedNonMatch;
        let mut g = PairGraph::new(kinds, vec![0.99; 7]).unwrap();
        g.add_edge(0, 1, 0.9).unwrap();
        g.add_edge(0, 2, 0.9).unwrap();
        g.add_edge(0, 3, 0.9).unwrap();
        g.add_edge(3, 5, 0.1).unwrap(); // weak bridge keeps one component
        g.add_edge(4, 5, 0.9).unwrap();
        g.add_edge(4, 6, 0.9).unwrap();
        g.add_edge(5, 6, 0.9).unwrap();
        let side = SpatialIndex {
            graph: g,
            components: vec![(0..7).collect()],
            clusters: vec![0; 7],
            k: 1,
        };
        let to_hetero: Vec<usize> = (0..7).collect();
        let mut rng = Rng::seed_from_u64(9);
        // α = 0: pure centrality → the hub (node 0) first.
        let central =
            select_side(&side, &side.graph, &to_hetero, 1, 0.0, 0.5, 0.85, &mut rng).unwrap();
        assert_eq!(central, vec![0]);
        // α = 1, β = 0: pure spatial uncertainty → node 4 (ϕ̃ = 0.5).
        let uncertain =
            select_side(&side, &side.graph, &to_hetero, 1, 1.0, 0.0, 0.85, &mut rng).unwrap();
        assert_eq!(uncertain, vec![4]);
    }
}
