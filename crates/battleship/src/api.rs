//! The stable public facade of the battleship crate.
//!
//! One import path for everything an application needs to run
//! low-resource entity matching — interactively through the
//! step-driven session API, or in batch through the experiment engine:
//!
//! * **Sessions** (the inverted protocol loop): [`MatchSession`],
//!   [`SessionConfig`], [`SessionPhase`], [`SessionSnapshot`] — ask the
//!   session for a query batch, answer at your own pace, checkpoint
//!   mid-iteration, resume bit-identically. See the phase diagram in
//!   [`crate::session`].
//! * **Strategies**: [`StrategySpec`] names the paper's selection
//!   policy and its baselines; the session builds instances internally.
//! * **Configuration**: [`ExperimentConfig`] (protocol + algorithm +
//!   matcher knobs, defaulting to the paper's §4.2 values) and the
//!   grid-level [`GridConfig`].
//! * **Datasets**: [`Scenario`] names a reproducible dataset recipe
//!   (synthetic profile, streamed record pool, or Magellan CSV
//!   directory) and materializes it into shared [`DatasetArtifacts`];
//!   [`ArtifactCache`] deduplicates materialization across runs.
//! * **Blocking**: a [`BlockingSpec`] on the scenario picks the
//!   candidate-generation tier — [`BlockingSpec::Exhaustive`] (the
//!   default, bit-identical to the pre-blocking pair sets), token
//!   inverted-index, or banded-SimHash [`LshBlocking`] — and
//!   [`Scenario::candidate_pool`] runs blocking alone for 10⁵+-record
//!   pools where the full cross product must never exist. See
//!   [`crate::blocking`].
//! * **Reports**: [`RunReport`] / [`IterationRecord`] per run,
//!   [`GridReport`] for engine grids.
//! * **Batch execution**: [`ExperimentGrid`] fans dataset × strategy ×
//!   seed grids out across worker threads;
//!   [`run_active_learning`](crate::runner::run_active_learning) is the
//!   single-run entry point (a thin oracle-driver over a session).
//! * **Serving**: [`SessionStore`] keys many concurrent sessions by id
//!   over shared artifacts, persists them through a [`SnapshotCodec`]
//!   (JSON or compact binary) into a [`SnapshotBackend`] (memory or
//!   directory), steps every trainable session in parallel and recovers
//!   the whole store bit-identically after a crash. Backend faults are
//!   retried under a bounded [`RetryPolicy`]; recovery falls back past
//!   torn or corrupt checkpoint frames (quarantining them) to the
//!   newest decodable generation, and [`FaultyBackend`] +
//!   [`FaultPlan`] inject reproducible chaos to prove it. See
//!   [`crate::serve`].
//!
//! ```
//! use battleship::api::{
//!     MatchSession, Scenario, SessionConfig, SessionPhase, StrategySpec,
//! };
//! use battleship::ExperimentConfig;
//! use em_synth::DatasetProfile;
//!
//! // Materialize a (tiny) reproducible scenario…
//! let art = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 5)
//!     .materialize()
//!     .unwrap();
//!
//! // …and open an interactive session on it.
//! let mut experiment = ExperimentConfig::low_resource(1, 10);
//! experiment.al.seed_size = 10;
//! experiment.matcher.epochs = 2;
//! experiment.battleship.kselect_sample = 128;
//! let mut session = MatchSession::new(
//!     &art.dataset,
//!     &art.features,
//!     SessionConfig { experiment, strategy: StrategySpec::Random, seed: 3 },
//! )
//! .unwrap();
//!
//! // The session asks; this labeler answers from ground truth.
//! loop {
//!     match session.advance().unwrap() {
//!         SessionPhase::AwaitingLabels => {
//!             let answers: Vec<_> = session
//!                 .next_query_batch()
//!                 .into_iter()
//!                 .map(|p| (p, art.dataset.ground_truth(p)))
//!                 .collect();
//!             session.submit_labels(&answers).unwrap();
//!         }
//!         SessionPhase::Done => break,
//!         _ => {}
//!     }
//! }
//! assert!(session.report().final_f1().is_some());
//! ```
//!
//! Blocking-scale pools skip the exhaustive pair matrix entirely: the
//! LSH tier extracts the candidate pool straight from the raw tables.
//!
//! ```
//! use battleship::api::{BlockingSpec, LshBlocking, Scenario};
//! use em_synth::{blocking_recall, PoolProfile};
//!
//! let scenario = Scenario::pool(PoolProfile::products("api-pool", 2000), 7)
//!     .with_blocking(BlockingSpec::Lsh(LshBlocking::default()));
//! assert_eq!(scenario.name(), "api-pool+lsh8x32");
//!
//! // Blocking only: candidates + truth, no featurization, no O(n²).
//! let pool = scenario.candidate_pool().unwrap();
//! let recall = blocking_recall(&pool.blocking.candidates, &pool.true_matches);
//! assert!(recall >= 0.95);
//! assert!(pool.blocking.stats.reduction_ratio > 0.9);
//!
//! // Or materialize end-to-end: the blocked candidates become an
//! // ordinary labeled dataset any session or grid can run on.
//! let art = scenario.materialize().unwrap();
//! assert_eq!(art.dataset.len(), pool.blocking.candidates.len());
//! ```

pub use crate::blocking::{
    block_tables, BlockingOutput, BlockingSpec, BlockingStats, LshBlocking, MAX_EXHAUSTIVE_PAIRS,
};
pub use crate::config::{ALConfig, BattleshipParams, ExperimentConfig, GridConfig};
pub use crate::engine::{
    ArtifactCache, CandidatePool, CellKind, DatasetArtifacts, ExperimentGrid, RunSpec, Scenario,
    ScenarioSource,
};
pub use crate::report::{GridCell, GridReport, IterationRecord, MultiSeedReport, RunReport};
pub use crate::runner::{run_active_learning, run_closed_loop};
pub use crate::serve::{
    DirBackend, Fault, FaultPlan, FaultStats, FaultyBackend, MemoryBackend, RecoveryReport,
    RetryPolicy, SessionStatus, SessionStore, SnapshotBackend, SnapshotCodec,
};
pub use crate::session::{
    MatchSession, PendingSnapshot, SessionConfig, SessionPhase, SessionSnapshot, SNAPSHOT_VERSION,
};
pub use crate::strategies::{
    Selection, SelectionContext, SelectionScratch, SelectionStrategy, StrategySpec,
};

// The session API's labeling types come from `em-core`; re-export them
// so interactive clients need only this module.
pub use em_core::{Label, NoisyOracle, Oracle, PairIdx, PerfectOracle};
