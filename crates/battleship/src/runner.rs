//! The single-run entry point to the active-learning protocol.
//!
//! The protocol itself (§3.1 + §4.2: seed draw → train → predict →
//! select → label → repeat) lives in [`crate::session`] as the
//! step-driven [`MatchSession`](crate::session::MatchSession) state
//! machine; [`run_active_learning`] drives one session against an
//! [`Oracle`] to completion. This keeps the original one-(dataset,
//! strategy, seed) API for callers that want exactly one run —
//! examples, benches and tests; a grid cell produced by the engine is
//! bit-identical (modulo wall-clock) to what this wrapper returns for
//! the same seed, which the engine's golden tests pin.
//!
//! [`run_closed_loop`] is the pre-redesign closed loop, preserved
//! verbatim as the golden reference: `tests/session_api.rs` pins the
//! session-driven path bit-identical to it for every strategy, and the
//! `em-bench` session bench gates the step machinery's overhead
//! against it.

pub use crate::engine::worker::ActiveLearningRun;

use em_core::{Dataset, Oracle, Result};
use em_vector::Embeddings;

use crate::config::ExperimentConfig;
use crate::engine::worker::{execute_run, execute_run_closed};
use crate::report::RunReport;
use crate::strategies::SelectionStrategy;

/// Execute a full active-learning run (driving a
/// [`MatchSession`](crate::session::MatchSession) internally).
///
/// `seed` drives every random decision (seed draw, matcher init,
/// residual budget allocation, strategy tie-breaks), making runs exactly
/// reproducible.
pub fn run_active_learning(
    dataset: &Dataset,
    features: &Embeddings,
    strategy: &mut dyn SelectionStrategy,
    oracle: &dyn Oracle,
    config: &ExperimentConfig,
    seed: u64,
) -> Result<RunReport> {
    execute_run(dataset, features, strategy, oracle, config, seed)
}

/// Execute a run through the pre-redesign closed protocol loop.
///
/// This is the reference implementation the session API was inverted
/// from, preserved verbatim for golden comparisons and overhead
/// benchmarking: [`run_active_learning`] produces a bit-identical
/// report (modulo wall-clock fields) for the same inputs. Applications
/// should use [`run_active_learning`] or the session API directly.
pub fn run_closed_loop(
    dataset: &Dataset,
    features: &Embeddings,
    strategy: &mut dyn SelectionStrategy,
    oracle: &dyn Oracle,
    config: &ExperimentConfig,
    seed: u64,
) -> Result<RunReport> {
    execute_run_closed(dataset, features, strategy, oracle, config, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{BattleshipStrategy, DalStrategy, RandomStrategy};
    use em_core::{PerfectOracle, Rng};
    use em_matcher::{FeatureConfig, Featurizer};
    use em_synth::{generate, DatasetProfile};

    fn quick_config() -> ExperimentConfig {
        let mut c = ExperimentConfig::default();
        c.al.budget = 20;
        c.al.iterations = 2;
        c.al.seed_size = 20;
        c.al.weak_budget = 20;
        c.matcher.epochs = 6;
        c.battleship.kselect_sample = 128;
        c
    }

    fn task() -> (Dataset, Embeddings) {
        let p = DatasetProfile::amazon_google().scaled(0.04);
        let d = generate(&p, &mut Rng::seed_from_u64(5)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let feats = f.featurize_all(&d).unwrap();
        (d, feats)
    }

    #[test]
    fn random_run_produces_complete_report() {
        let (d, feats) = task();
        let oracle = PerfectOracle::new();
        let mut strategy = RandomStrategy::new();
        let config = quick_config();
        let report = run_active_learning(&d, &feats, &mut strategy, &oracle, &config, 1).unwrap();
        assert_eq!(report.iterations.len(), 3); // seed + 2 iterations
        assert_eq!(report.iterations[0].labels_used, 20);
        assert_eq!(report.iterations[2].labels_used, 60);
        assert_eq!(report.strategy, "random");
        // Oracle accounting: seed 20 + 2×20 selections.
        assert_eq!(oracle.queries(), 60);
    }

    #[test]
    fn battleship_run_consumes_exact_budget() {
        let (d, feats) = task();
        let oracle = PerfectOracle::new();
        let mut strategy = BattleshipStrategy::new();
        let config = quick_config();
        let report = run_active_learning(&d, &feats, &mut strategy, &oracle, &config, 2).unwrap();
        for (i, it) in report.iterations.iter().enumerate().skip(1) {
            assert_eq!(it.new_labels, 20, "iteration {i}");
            assert!(it.select_secs > 0.0);
        }
        // Train set grows monotonically, F1 is finite.
        for it in &report.iterations {
            assert!(it.test_f1_pct.is_finite());
            assert!((0.0..=100.0).contains(&it.test_f1_pct));
        }
    }

    #[test]
    fn dal_weak_supervision_is_recorded() {
        let (d, feats) = task();
        let oracle = PerfectOracle::new();
        let mut strategy = DalStrategy::new();
        let config = quick_config();
        let report = run_active_learning(&d, &feats, &mut strategy, &oracle, &config, 3).unwrap();
        let weak_total: usize = report.iterations.iter().map(|i| i.weak_used).sum();
        assert!(weak_total > 0, "DAL should produce weak labels");
        // Weak labels never consume oracle budget.
        assert_eq!(oracle.queries(), 20 + 2 * 20);
    }

    #[test]
    fn weak_supervision_flag_disables_weak() {
        let (d, feats) = task();
        let oracle = PerfectOracle::new();
        let mut strategy = DalStrategy::new();
        let mut config = quick_config();
        config.al.weak_supervision = false;
        let report = run_active_learning(&d, &feats, &mut strategy, &oracle, &config, 3).unwrap();
        assert!(report.iterations.iter().all(|i| i.weak_used == 0));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let (d, feats) = task();
        let config = quick_config();
        let report = |seed| {
            let oracle = PerfectOracle::new();
            let mut strategy = BattleshipStrategy::new();
            run_active_learning(&d, &feats, &mut strategy, &oracle, &config, seed).unwrap()
        };
        // Wall-clock fields naturally differ between runs; everything
        // else must be bit-identical.
        let strip = |r: RunReport| -> Vec<(usize, usize, u64, usize, usize, usize)> {
            r.iterations
                .iter()
                .map(|i| {
                    (
                        i.iteration,
                        i.labels_used,
                        i.test_f1_pct.to_bits(),
                        i.new_positives,
                        i.new_labels,
                        i.weak_used,
                    )
                })
                .collect()
        };
        let a = strip(report(7));
        let b = strip(report(7));
        assert_eq!(a, b);
        let c = strip(report(8));
        assert_ne!(a, c);
    }

    #[test]
    fn seed_larger_than_pool_rejected() {
        let (d, feats) = task();
        let oracle = PerfectOracle::new();
        let mut strategy = RandomStrategy::new();
        let mut config = quick_config();
        config.al.seed_size = d.split().train.len() + 1;
        assert!(run_active_learning(&d, &feats, &mut strategy, &oracle, &config, 1).is_err());
    }

    #[test]
    fn seed_draw_is_balanced() {
        let (d, feats) = task();
        let oracle = PerfectOracle::new();
        let mut strategy = RandomStrategy::new();
        let config = quick_config();
        let report = run_active_learning(&d, &feats, &mut strategy, &oracle, &config, 11).unwrap();
        // Seed iteration: half the labels positive.
        assert_eq!(report.iterations[0].new_positives, 10);
    }
}
