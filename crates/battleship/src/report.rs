//! Run reports and multi-seed aggregation.
//!
//! Everything the paper's figures and tables read off an experiment:
//! per-iteration F1 (Figure 5), runtime (Figure 6), F1 at fixed label
//! counts (Table 4) and AUC over the F1 curve (Table 5). Reports are
//! `serde`-serializable so the bench harness can persist raw results.

use serde::{Deserialize, Serialize};

use em_core::{metrics::mean, EmError, F1Curve, Result};

/// One active-learning iteration's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index; 0 is the seed-only model.
    pub iteration: usize,
    /// Cumulative oracle labels consumed after this iteration.
    pub labels_used: usize,
    /// Test F1 in percent (the paper's reporting unit).
    pub test_f1_pct: f64,
    /// Test precision.
    pub precision: f64,
    /// Test recall.
    pub recall: f64,
    /// Matcher training wall time (seconds).
    pub train_secs: f64,
    /// Selection wall time (seconds) — the Figure 6 quantity; 0 for the
    /// seed iteration.
    pub select_secs: f64,
    /// Positives among the labels acquired in this iteration (selection
    /// "hit rate" numerator; equals the seed's positive half at
    /// iteration 0).
    pub new_positives: usize,
    /// Total labels acquired in this iteration.
    pub new_labels: usize,
    /// Weak pseudo-labels used to train this iteration's model.
    pub weak_used: usize,
}

/// A complete single-seed run of one strategy on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Dataset name.
    pub dataset: String,
    /// Strategy name.
    pub strategy: String,
    /// Run seed.
    pub seed: u64,
    /// Per-iteration records, seed iteration first.
    pub iterations: Vec<IterationRecord>,
}

impl RunReport {
    /// The run's F1-vs-labels curve (F1 in percent).
    pub fn f1_curve(&self) -> Result<F1Curve> {
        let mut curve = F1Curve::new();
        for it in &self.iterations {
            curve.push(it.labels_used as f64, it.test_f1_pct)?;
        }
        Ok(curve)
    }

    /// Area under the F1 curve (Table 5's measure).
    pub fn auc(&self) -> Result<f64> {
        Ok(self.f1_curve()?.auc())
    }

    /// Final F1 (%) of the run.
    pub fn final_f1(&self) -> Option<f64> {
        self.iterations.last().map(|it| it.test_f1_pct)
    }

    /// Total oracle labels consumed.
    pub fn total_labels(&self) -> usize {
        self.iterations.last().map(|it| it.labels_used).unwrap_or(0)
    }
}

/// Seed-averaged view of several runs of the same (dataset, strategy)
/// configuration — the unit every figure/table of the paper reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSeedReport {
    /// Dataset name.
    pub dataset: String,
    /// Strategy name.
    pub strategy: String,
    /// Seeds of the aggregated runs.
    pub seeds: Vec<u64>,
    /// Mean F1 (%) per iteration point, with the label counts.
    pub mean_curve: Vec<(f64, f64)>,
    /// Mean AUC across seeds.
    pub mean_auc: f64,
    /// Mean selection seconds per iteration (Figure 6's series).
    pub mean_select_secs: Vec<f64>,
}

/// Per-run AUCs, computed once and shared by mean and std aggregation.
fn run_aucs(runs: &[RunReport]) -> Result<Vec<f64>> {
    runs.iter().map(|r| r.auc()).collect()
}

impl MultiSeedReport {
    /// Aggregate runs; they must agree on dataset, strategy and
    /// iteration structure.
    pub fn aggregate(runs: &[RunReport]) -> Result<Self> {
        Self::aggregate_with_aucs(runs, &run_aucs(runs)?)
    }

    /// [`MultiSeedReport::aggregate`] with the per-run AUCs already
    /// computed (grid aggregation derives mean and std from one pass).
    fn aggregate_with_aucs(runs: &[RunReport], aucs: &[f64]) -> Result<Self> {
        let first = runs
            .first()
            .ok_or_else(|| EmError::EmptyInput("runs to aggregate".into()))?;
        let n_iters = first.iterations.len();
        for r in runs {
            if r.dataset != first.dataset
                || r.strategy != first.strategy
                || r.iterations.len() != n_iters
            {
                return Err(EmError::InvalidConfig(format!(
                    "incompatible runs: ({}, {}, {} iters) vs ({}, {}, {} iters)",
                    r.dataset,
                    r.strategy,
                    r.iterations.len(),
                    first.dataset,
                    first.strategy,
                    n_iters
                )));
            }
        }
        let mut mean_curve = Vec::with_capacity(n_iters);
        let mut mean_select_secs = Vec::with_capacity(n_iters);
        for i in 0..n_iters {
            let labels = first.iterations[i].labels_used as f64;
            let f1s: Vec<f64> = runs.iter().map(|r| r.iterations[i].test_f1_pct).collect();
            let secs: Vec<f64> = runs.iter().map(|r| r.iterations[i].select_secs).collect();
            mean_curve.push((labels, mean(&f1s)));
            mean_select_secs.push(mean(&secs));
        }
        Ok(MultiSeedReport {
            dataset: first.dataset.clone(),
            strategy: first.strategy.clone(),
            seeds: runs.iter().map(|r| r.seed).collect(),
            mean_curve,
            mean_auc: mean(aucs),
            mean_select_secs,
        })
    }

    /// Mean F1 (%) at the largest label count ≤ `labels` (Table 4).
    pub fn f1_at(&self, labels: f64) -> Option<f64> {
        self.mean_curve
            .iter()
            .take_while(|(x, _)| *x <= labels)
            .last()
            .map(|&(_, y)| y)
    }

    /// Final mean F1 (%).
    pub fn final_f1(&self) -> Option<f64> {
        self.mean_curve.last().map(|&(_, y)| y)
    }
}

/// Population standard deviation (0 for a single sample).
fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// One (dataset, strategy) cell of an experiment grid: the seed-averaged
/// view plus the dispersion the paper's "mean ± std" tables report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// Seed-aggregated mean curves and AUC.
    pub aggregate: MultiSeedReport,
    /// Std of F1 (%) per iteration point, aligned with
    /// `aggregate.mean_curve` label counts.
    pub std_curve: Vec<(f64, f64)>,
    /// Std of AUC across seeds.
    pub std_auc: f64,
    /// Mean wall-clock of one run of this cell (seconds).
    pub mean_run_secs: f64,
}

impl GridCell {
    /// Build a cell from its runs and their measured wall-clocks.
    ///
    /// Runs must agree on dataset/strategy/iteration structure (enforced
    /// by [`MultiSeedReport::aggregate`]).
    pub fn from_runs(runs: &[RunReport], run_secs: &[f64]) -> Result<Self> {
        let aucs = run_aucs(runs)?;
        let aggregate = MultiSeedReport::aggregate_with_aucs(runs, &aucs)?;
        let mut std_curve = Vec::with_capacity(aggregate.mean_curve.len());
        for (i, &(labels, _)) in aggregate.mean_curve.iter().enumerate() {
            let f1s: Vec<f64> = runs.iter().map(|r| r.iterations[i].test_f1_pct).collect();
            std_curve.push((labels, std_dev(&f1s)));
        }
        Ok(GridCell {
            aggregate,
            std_curve,
            std_auc: std_dev(&aucs),
            mean_run_secs: mean(run_secs),
        })
    }

    /// Dataset name (forwarded from the aggregate).
    pub fn dataset(&self) -> &str {
        &self.aggregate.dataset
    }

    /// Strategy name (forwarded from the aggregate).
    pub fn strategy(&self) -> &str {
        &self.aggregate.strategy
    }
}

/// The aggregated output of a whole experiment grid.
///
/// Cells appear in the grid's fixed expansion order (dataset-major, then
/// strategy, then baselines), *not* in completion order, so the report is
/// deterministic regardless of how runs were scheduled across worker
/// threads. Wall-clock fields are the only scheduling-dependent content;
/// [`GridReport::canonical`] zeroes them for bit-exact comparisons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridReport {
    /// Master seed the run seeds were derived from.
    pub master_seed: u64,
    /// Worker threads the grid executed on (informational).
    pub threads: usize,
    /// Total grid wall-clock (seconds).
    pub wall_secs: f64,
    /// Per-(dataset, strategy) aggregates, in expansion order.
    pub cells: Vec<GridCell>,
    /// Every raw run, in expansion order (cell-major, then seed).
    pub runs: Vec<RunReport>,
}

impl GridReport {
    /// Look up a cell by dataset and strategy name.
    pub fn cell(&self, dataset: &str, strategy: &str) -> Option<&GridCell> {
        self.cells
            .iter()
            .find(|c| c.dataset() == dataset && c.strategy() == strategy)
    }

    /// Serialize to pretty JSON (the CI artifact format).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| EmError::InvalidConfig(format!("grid report serialization: {e}")))
    }

    /// A copy with every wall-clock field zeroed.
    ///
    /// Timing is inherently scheduling-dependent; everything else in a
    /// grid report is a deterministic function of (grid, master seed).
    /// Two canonical reports of the same grid are bit-identical for any
    /// worker-thread count — the property the engine's golden tests pin.
    pub fn canonical(&self) -> GridReport {
        let mut out = self.clone();
        out.threads = 0;
        out.wall_secs = 0.0;
        for cell in &mut out.cells {
            cell.mean_run_secs = 0.0;
            for s in &mut cell.aggregate.mean_select_secs {
                *s = 0.0;
            }
        }
        for run in &mut out.runs {
            for it in &mut run.iterations {
                it.train_secs = 0.0;
                it.select_secs = 0.0;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64, f1s: &[f64]) -> RunReport {
        RunReport {
            dataset: "toy".into(),
            strategy: "battleship".into(),
            seed,
            iterations: f1s
                .iter()
                .enumerate()
                .map(|(i, &f1)| IterationRecord {
                    iteration: i,
                    labels_used: 100 + i * 100,
                    test_f1_pct: f1,
                    precision: 0.5,
                    recall: 0.5,
                    train_secs: 1.0,
                    select_secs: i as f64,
                    new_positives: 10,
                    new_labels: 100,
                    weak_used: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn f1_curve_and_auc() {
        let r = run(1, &[50.0, 60.0, 70.0]);
        let curve = r.f1_curve().unwrap();
        assert_eq!(curve.points().len(), 3);
        // Trapezoid: (100·55 + 100·65)/100 = 120.
        assert!((r.auc().unwrap() - 120.0).abs() < 1e-9);
        assert_eq!(r.final_f1(), Some(70.0));
        assert_eq!(r.total_labels(), 300);
    }

    #[test]
    fn aggregate_means_pointwise() {
        let runs = vec![run(1, &[40.0, 60.0]), run(2, &[60.0, 80.0])];
        let agg = MultiSeedReport::aggregate(&runs).unwrap();
        assert_eq!(agg.mean_curve, vec![(100.0, 50.0), (200.0, 70.0)]);
        assert_eq!(agg.seeds, vec![1, 2]);
        // AUCs: (100·50)/100 = 50 and (100·70)/100 = 70 → mean 60.
        assert!((agg.mean_auc - 60.0).abs() < 1e-9);
        assert_eq!(agg.f1_at(100.0), Some(50.0));
        assert_eq!(agg.f1_at(199.0), Some(50.0));
        assert_eq!(agg.final_f1(), Some(70.0));
        assert_eq!(agg.f1_at(50.0), None);
    }

    #[test]
    fn aggregate_rejects_mismatched_runs() {
        assert!(MultiSeedReport::aggregate(&[]).is_err());
        let mut other = run(3, &[10.0, 20.0]);
        other.strategy = "random".into();
        assert!(MultiSeedReport::aggregate(&[run(1, &[10.0, 20.0]), other]).is_err());
        let short = run(4, &[10.0]);
        assert!(MultiSeedReport::aggregate(&[run(1, &[10.0, 20.0]), short]).is_err());
    }

    #[test]
    fn reports_serialize() {
        let r = run(7, &[33.0]);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    fn grid_report() -> GridReport {
        let runs = vec![run(1, &[40.0, 60.0]), run(2, &[60.0, 80.0])];
        let cell = GridCell::from_runs(&runs, &[0.5, 0.7]).unwrap();
        GridReport {
            master_seed: 99,
            threads: 4,
            wall_secs: 1.25,
            cells: vec![cell],
            runs,
        }
    }

    #[test]
    fn grid_cell_std_and_timing() {
        let g = grid_report();
        let cell = g.cell("toy", "battleship").unwrap();
        // F1s per point: {40, 60} and {60, 80} → population std 10.
        assert_eq!(cell.std_curve.len(), 2);
        for &(_, s) in &cell.std_curve {
            assert!((s - 10.0).abs() < 1e-9, "std {s}");
        }
        assert!((cell.mean_run_secs - 0.6).abs() < 1e-12);
        assert!(cell.std_auc >= 0.0);
        // Single-run cells have zero dispersion.
        let single = GridCell::from_runs(&[run(1, &[50.0])], &[0.1]).unwrap();
        assert_eq!(single.std_curve, vec![(100.0, 0.0)]);
        assert_eq!(single.std_auc, 0.0);
        assert!(g.cell("toy", "no-such-strategy").is_none());
    }

    /// Satellite: full serde round-trips for every report type, plus the
    /// `to_json` artifact helper.
    #[test]
    fn run_multi_seed_and_grid_reports_round_trip() {
        let r = run(3, &[10.0, 20.0, 30.0]);
        let back: RunReport = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(r, back);

        let multi =
            MultiSeedReport::aggregate(&[run(1, &[40.0, 60.0]), run(2, &[60.0, 80.0])]).unwrap();
        let back: MultiSeedReport =
            serde_json::from_str(&serde_json::to_string(&multi).unwrap()).unwrap();
        assert_eq!(multi, back);

        let g = grid_report();
        let back: GridReport = serde_json::from_str(&g.to_json().unwrap()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn canonical_zeroes_all_timing_and_is_idempotent() {
        let g = grid_report();
        let c = g.canonical();
        assert_eq!(c.threads, 0);
        assert_eq!(c.wall_secs, 0.0);
        for cell in &c.cells {
            assert_eq!(cell.mean_run_secs, 0.0);
            assert!(cell.aggregate.mean_select_secs.iter().all(|&s| s == 0.0));
        }
        for r in &c.runs {
            assert!(r
                .iterations
                .iter()
                .all(|it| it.train_secs == 0.0 && it.select_secs == 0.0));
        }
        // Non-timing payload is untouched.
        assert_eq!(c.master_seed, g.master_seed);
        assert_eq!(
            c.cells[0].aggregate.mean_curve,
            g.cells[0].aggregate.mean_curve
        );
        assert_eq!(c.canonical(), c);
    }
}
