//! Run reports and multi-seed aggregation.
//!
//! Everything the paper's figures and tables read off an experiment:
//! per-iteration F1 (Figure 5), runtime (Figure 6), F1 at fixed label
//! counts (Table 4) and AUC over the F1 curve (Table 5). Reports are
//! `serde`-serializable so the bench harness can persist raw results.

use serde::{Deserialize, Serialize};

use em_core::{metrics::mean, EmError, F1Curve, Result};

/// One active-learning iteration's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index; 0 is the seed-only model.
    pub iteration: usize,
    /// Cumulative oracle labels consumed after this iteration.
    pub labels_used: usize,
    /// Test F1 in percent (the paper's reporting unit).
    pub test_f1_pct: f64,
    /// Test precision.
    pub precision: f64,
    /// Test recall.
    pub recall: f64,
    /// Matcher training wall time (seconds).
    pub train_secs: f64,
    /// Selection wall time (seconds) — the Figure 6 quantity; 0 for the
    /// seed iteration.
    pub select_secs: f64,
    /// Positives among the labels acquired in this iteration (selection
    /// "hit rate" numerator; equals the seed's positive half at
    /// iteration 0).
    pub new_positives: usize,
    /// Total labels acquired in this iteration.
    pub new_labels: usize,
    /// Weak pseudo-labels used to train this iteration's model.
    pub weak_used: usize,
}

/// A complete single-seed run of one strategy on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Dataset name.
    pub dataset: String,
    /// Strategy name.
    pub strategy: String,
    /// Run seed.
    pub seed: u64,
    /// Per-iteration records, seed iteration first.
    pub iterations: Vec<IterationRecord>,
}

impl RunReport {
    /// The run's F1-vs-labels curve (F1 in percent).
    pub fn f1_curve(&self) -> Result<F1Curve> {
        let mut curve = F1Curve::new();
        for it in &self.iterations {
            curve.push(it.labels_used as f64, it.test_f1_pct)?;
        }
        Ok(curve)
    }

    /// Area under the F1 curve (Table 5's measure).
    pub fn auc(&self) -> Result<f64> {
        Ok(self.f1_curve()?.auc())
    }

    /// Final F1 (%) of the run.
    pub fn final_f1(&self) -> Option<f64> {
        self.iterations.last().map(|it| it.test_f1_pct)
    }

    /// Total oracle labels consumed.
    pub fn total_labels(&self) -> usize {
        self.iterations.last().map(|it| it.labels_used).unwrap_or(0)
    }
}

/// Seed-averaged view of several runs of the same (dataset, strategy)
/// configuration — the unit every figure/table of the paper reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSeedReport {
    /// Dataset name.
    pub dataset: String,
    /// Strategy name.
    pub strategy: String,
    /// Seeds of the aggregated runs.
    pub seeds: Vec<u64>,
    /// Mean F1 (%) per iteration point, with the label counts.
    pub mean_curve: Vec<(f64, f64)>,
    /// Mean AUC across seeds.
    pub mean_auc: f64,
    /// Mean selection seconds per iteration (Figure 6's series).
    pub mean_select_secs: Vec<f64>,
}

impl MultiSeedReport {
    /// Aggregate runs; they must agree on dataset, strategy and
    /// iteration structure.
    pub fn aggregate(runs: &[RunReport]) -> Result<Self> {
        let first = runs
            .first()
            .ok_or_else(|| EmError::EmptyInput("runs to aggregate".into()))?;
        let n_iters = first.iterations.len();
        for r in runs {
            if r.dataset != first.dataset
                || r.strategy != first.strategy
                || r.iterations.len() != n_iters
            {
                return Err(EmError::InvalidConfig(format!(
                    "incompatible runs: ({}, {}, {} iters) vs ({}, {}, {} iters)",
                    r.dataset,
                    r.strategy,
                    r.iterations.len(),
                    first.dataset,
                    first.strategy,
                    n_iters
                )));
            }
        }
        let mut mean_curve = Vec::with_capacity(n_iters);
        let mut mean_select_secs = Vec::with_capacity(n_iters);
        for i in 0..n_iters {
            let labels = first.iterations[i].labels_used as f64;
            let f1s: Vec<f64> = runs.iter().map(|r| r.iterations[i].test_f1_pct).collect();
            let secs: Vec<f64> = runs.iter().map(|r| r.iterations[i].select_secs).collect();
            mean_curve.push((labels, mean(&f1s)));
            mean_select_secs.push(mean(&secs));
        }
        let aucs: Vec<f64> = runs.iter().map(|r| r.auc()).collect::<Result<Vec<_>>>()?;
        Ok(MultiSeedReport {
            dataset: first.dataset.clone(),
            strategy: first.strategy.clone(),
            seeds: runs.iter().map(|r| r.seed).collect(),
            mean_curve,
            mean_auc: mean(&aucs),
            mean_select_secs,
        })
    }

    /// Mean F1 (%) at the largest label count ≤ `labels` (Table 4).
    pub fn f1_at(&self, labels: f64) -> Option<f64> {
        self.mean_curve
            .iter()
            .take_while(|(x, _)| *x <= labels)
            .last()
            .map(|&(_, y)| y)
    }

    /// Final mean F1 (%).
    pub fn final_f1(&self) -> Option<f64> {
        self.mean_curve.last().map(|&(_, y)| y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64, f1s: &[f64]) -> RunReport {
        RunReport {
            dataset: "toy".into(),
            strategy: "battleship".into(),
            seed,
            iterations: f1s
                .iter()
                .enumerate()
                .map(|(i, &f1)| IterationRecord {
                    iteration: i,
                    labels_used: 100 + i * 100,
                    test_f1_pct: f1,
                    precision: 0.5,
                    recall: 0.5,
                    train_secs: 1.0,
                    select_secs: i as f64,
                    new_positives: 10,
                    new_labels: 100,
                    weak_used: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn f1_curve_and_auc() {
        let r = run(1, &[50.0, 60.0, 70.0]);
        let curve = r.f1_curve().unwrap();
        assert_eq!(curve.points().len(), 3);
        // Trapezoid: (100·55 + 100·65)/100 = 120.
        assert!((r.auc().unwrap() - 120.0).abs() < 1e-9);
        assert_eq!(r.final_f1(), Some(70.0));
        assert_eq!(r.total_labels(), 300);
    }

    #[test]
    fn aggregate_means_pointwise() {
        let runs = vec![run(1, &[40.0, 60.0]), run(2, &[60.0, 80.0])];
        let agg = MultiSeedReport::aggregate(&runs).unwrap();
        assert_eq!(agg.mean_curve, vec![(100.0, 50.0), (200.0, 70.0)]);
        assert_eq!(agg.seeds, vec![1, 2]);
        // AUCs: (100·50)/100 = 50 and (100·70)/100 = 70 → mean 60.
        assert!((agg.mean_auc - 60.0).abs() < 1e-9);
        assert_eq!(agg.f1_at(100.0), Some(50.0));
        assert_eq!(agg.f1_at(199.0), Some(50.0));
        assert_eq!(agg.final_f1(), Some(70.0));
        assert_eq!(agg.f1_at(50.0), None);
    }

    #[test]
    fn aggregate_rejects_mismatched_runs() {
        assert!(MultiSeedReport::aggregate(&[]).is_err());
        let mut other = run(3, &[10.0, 20.0]);
        other.strategy = "random".into();
        assert!(MultiSeedReport::aggregate(&[run(1, &[10.0, 20.0]), other]).is_err());
        let short = run(4, &[10.0]);
        assert!(MultiSeedReport::aggregate(&[run(1, &[10.0, 20.0]), short]).is_err());
    }

    #[test]
    fn reports_serialize() {
        let r = run(7, &[33.0]);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
