//! Configuration of the battleship algorithm and the experiment
//! protocol, defaulting to the paper's published values (§4.2).

use serde::{Deserialize, Serialize};

use em_core::{EmError, Result};
use em_matcher::MatcherConfig;
use em_vector::AnnPolicy;

/// Which centrality measure ranks nodes within a connected component.
///
/// The paper uses PageRank (§3.5.2) after naming betweenness as the
/// classic alternative (§2.2); both are implemented so the choice can be
/// ablated (`ablation_centrality` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CentralityMeasure {
    /// Weighted PageRank (Eq. 5) — the paper's choice.
    PageRank,
    /// Brandes betweenness centrality (Freeman 1977).
    Betweenness,
}

/// Which weak-supervision scoring picks the pseudo-labeled pairs (§3.7,
/// ablated in Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeakMethod {
    /// Battleship: minimize the spatial certainty score (Eq. 4).
    Spatial,
    /// DAL (Kasai et al.): minimize plain conditional entropy (Eq. 1).
    Entropy,
}

/// Parameters of the battleship selection mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BattleshipParams {
    /// Certainty-vs-centrality rank weight `α` (Eq. 6). The paper
    /// evaluates {0.25, 0.5, 0.75} and reports their average; Table 6
    /// ablates the full range.
    pub alpha: f64,
    /// Local-vs-spatial entropy weight `β` (Eq. 4); 0.5 per §5.1,
    /// Figure 7 ablates it.
    pub beta: f64,
    /// Nearest neighbours per node in edge creation; 15 per §4.2.
    pub q: usize,
    /// Extra-edge ratio over remaining pairs; 0.03 per §4.2.
    pub extra_ratio: f64,
    /// Cluster size bounds as fractions of the node-set size; 0.05–0.15
    /// per §4.2.
    pub cluster_min_frac: f64,
    /// See `cluster_min_frac`.
    pub cluster_max_frac: f64,
    /// PageRank damping `ρ` (Eq. 5).
    pub rho: f64,
    /// Point-sample cap for the `k`-selection sweep (a scalability knob
    /// of our substrate; the sweep's SSE curve shape is stable under
    /// subsampling).
    pub kselect_sample: usize,
    /// Clusters larger than this route edge creation through the HNSW
    /// ANN index instead of the exact blocked Gram kernel (approximate
    /// but near-linear; §5.2 names approximate search as the scale-out
    /// for this step). The default is the measured exact→ANN
    /// crossover from the blocking bench's single-cluster sweep
    /// (`BENCH_blocking.json`, `ann_threshold_sweep`): exact still
    /// wins at 8192 (2.5 s vs 4.5 s) and first loses at 16384
    /// (17.7 s vs 12.9 s), so every smaller cluster stays exact.
    pub ann_cluster_threshold: usize,
    /// Weak-supervision scoring method.
    pub weak_method: WeakMethod,
    /// Centrality measure for Eq. 6's second rank.
    pub centrality: CentralityMeasure,
}

impl Default for BattleshipParams {
    fn default() -> Self {
        BattleshipParams {
            alpha: 0.5,
            beta: 0.5,
            q: 15,
            extra_ratio: 0.03,
            cluster_min_frac: 0.05,
            cluster_max_frac: 0.15,
            rho: 0.85,
            kselect_sample: 800,
            ann_cluster_threshold: 16384,
            weak_method: WeakMethod::Spatial,
            centrality: CentralityMeasure::PageRank,
        }
    }
}

impl BattleshipParams {
    /// Validate all ranges.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(EmError::InvalidConfig(format!("alpha {}", self.alpha)));
        }
        if !(0.0..=1.0).contains(&self.beta) {
            return Err(EmError::InvalidConfig(format!("beta {}", self.beta)));
        }
        if self.q == 0 {
            return Err(EmError::InvalidConfig("q must be > 0".into()));
        }
        if !(0.0..=1.0).contains(&self.extra_ratio) {
            return Err(EmError::InvalidConfig(format!(
                "extra_ratio {}",
                self.extra_ratio
            )));
        }
        if !(0.0..=1.0).contains(&self.cluster_min_frac)
            || !(self.cluster_min_frac..=1.0).contains(&self.cluster_max_frac)
        {
            return Err(EmError::InvalidConfig(format!(
                "cluster fractions [{}, {}]",
                self.cluster_min_frac, self.cluster_max_frac
            )));
        }
        if !(0.0..1.0).contains(&self.rho) {
            return Err(EmError::InvalidConfig(format!("rho {}", self.rho)));
        }
        if self.kselect_sample < 16 {
            return Err(EmError::InvalidConfig("kselect_sample too small".into()));
        }
        if self.ann_cluster_threshold < 2 {
            return Err(EmError::InvalidConfig(
                "ann_cluster_threshold must be >= 2".into(),
            ));
        }
        Ok(())
    }

    /// The [`AnnPolicy`] this parameter set induces: the serialized
    /// `ann_cluster_threshold` sets the crossover, everything else takes
    /// the policy defaults, and `EM_ANN_*` env vars override both (the
    /// operator knob for forcing exact or ANN without editing configs).
    pub fn ann_policy(&self) -> AnnPolicy {
        AnnPolicy::with_threshold(self.ann_cluster_threshold).env_overridden()
    }
}

/// The active-learning protocol parameters (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ALConfig {
    /// Labeling budget per iteration (`B`); 100 in the paper.
    pub budget: usize,
    /// Number of active-learning iterations (`I`); 8 in the paper.
    pub iterations: usize,
    /// Initialisation seed size (50 matches + 50 non-matches).
    pub seed_size: usize,
    /// Weak-label budget per iteration; equals `B` in the paper.
    pub weak_budget: usize,
    /// Whether weak supervision is enabled (Figure 9 ablates it).
    pub weak_supervision: bool,
}

impl Default for ALConfig {
    fn default() -> Self {
        ALConfig {
            budget: 100,
            iterations: 8,
            seed_size: 100,
            weak_budget: 100,
            weak_supervision: true,
        }
    }
}

impl ALConfig {
    /// Validate all ranges.
    pub fn validate(&self) -> Result<()> {
        if self.budget == 0 {
            return Err(EmError::InvalidConfig("budget must be > 0".into()));
        }
        if self.iterations == 0 {
            return Err(EmError::InvalidConfig("iterations must be > 0".into()));
        }
        if self.seed_size < 2 {
            return Err(EmError::InvalidConfig(
                "seed_size must be >= 2 (one per class)".into(),
            ));
        }
        Ok(())
    }
}

/// A full experiment specification: protocol + algorithm + matcher.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ExperimentConfig {
    /// Active-learning protocol.
    pub al: ALConfig,
    /// Battleship parameters (also consulted by DAL/DIAL for shared
    /// knobs like the weak budget).
    pub battleship: BattleshipParams,
    /// Matcher hyper-parameters.
    pub matcher: MatcherConfig,
}

impl ExperimentConfig {
    /// Validate the composite configuration.
    pub fn validate(&self) -> Result<()> {
        self.al.validate()?;
        self.battleship.validate()
    }

    /// A scaled-down low-resource protocol: `iterations` iterations
    /// with `budget` labels each, a balanced seed of the same size, an
    /// equal weak-label budget, and a shorter matcher schedule — the
    /// configuration every example runs so it finishes in seconds.
    pub fn low_resource(iterations: usize, budget: usize) -> Self {
        let mut c = ExperimentConfig::default();
        c.al.iterations = iterations;
        c.al.budget = budget;
        c.al.seed_size = budget;
        c.al.weak_budget = budget;
        c.matcher.epochs = 20;
        c
    }
}

/// Configuration of a full experiment *grid*: one [`ExperimentConfig`]
/// applied to every (dataset, strategy, seed) cell, plus the knobs that
/// only exist at grid level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// The per-run protocol/algorithm/matcher configuration.
    pub experiment: ExperimentConfig,
    /// Master seed: every run seed is derived from it (see
    /// [`GridConfig::run_seeds`]), so one u64 reproduces the whole grid.
    pub master_seed: u64,
    /// Seeds (runs) per (dataset, strategy) cell.
    pub n_seeds: usize,
    /// Whether to add the non-AL extremes (ZeroER and Full D, §4.3) as
    /// one-cell baselines per dataset.
    pub include_baselines: bool,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            experiment: ExperimentConfig::default(),
            master_seed: 0xBA771E,
            n_seeds: 3,
            include_baselines: false,
        }
    }
}

impl GridConfig {
    /// Validate the grid and its per-run configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n_seeds == 0 {
            return Err(EmError::InvalidConfig("n_seeds must be > 0".into()));
        }
        self.experiment.validate()
    }

    /// The derived per-run seed streams, one per seed index.
    ///
    /// Seed `i` is shared across every (dataset, strategy) cell — the
    /// paper's protocol, where each repetition re-rolls the seed draw but
    /// all strategies see the same repetition stream. Derivation is a
    /// pure function of `master_seed`, independent of grid shape and
    /// worker-thread count.
    pub fn run_seeds(&self) -> Vec<u64> {
        let mut rng = em_core::Rng::seed_from_u64(self.master_seed);
        (0..self.n_seeds).map(|_| rng.next_u64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ExperimentConfig::default();
        assert_eq!(c.al.budget, 100);
        assert_eq!(c.al.iterations, 8);
        assert_eq!(c.al.seed_size, 100);
        assert_eq!(c.al.weak_budget, 100);
        assert_eq!(c.battleship.q, 15);
        assert!((c.battleship.extra_ratio - 0.03).abs() < 1e-12);
        assert!((c.battleship.cluster_min_frac - 0.05).abs() < 1e-12);
        assert!((c.battleship.cluster_max_frac - 0.15).abs() < 1e-12);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = ExperimentConfig::default();
        c.battleship.alpha = 1.5;
        assert!(c.validate().is_err());

        let mut c = ExperimentConfig::default();
        c.battleship.cluster_min_frac = 0.2;
        c.battleship.cluster_max_frac = 0.1;
        assert!(c.validate().is_err());

        let mut c = ExperimentConfig::default();
        c.al.budget = 0;
        assert!(c.validate().is_err());

        let mut c = ExperimentConfig::default();
        c.battleship.rho = 1.0;
        assert!(c.validate().is_err());

        let mut c = ExperimentConfig::default();
        c.al.seed_size = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn grid_config_validates_and_derives_seeds() {
        let g = GridConfig::default();
        g.validate().unwrap();
        let seeds = g.run_seeds();
        assert_eq!(seeds.len(), g.n_seeds);
        // Derivation is deterministic and master-seed sensitive.
        assert_eq!(seeds, g.run_seeds());
        let other = GridConfig {
            master_seed: g.master_seed + 1,
            ..g.clone()
        };
        assert_ne!(seeds, other.run_seeds());
        // Prefix stability: growing n_seeds extends, never reshuffles.
        let bigger = GridConfig {
            n_seeds: g.n_seeds + 2,
            ..g.clone()
        };
        assert_eq!(&bigger.run_seeds()[..g.n_seeds], &seeds[..]);

        let bad = GridConfig {
            n_seeds: 0,
            ..GridConfig::default()
        };
        assert!(bad.validate().is_err());
        let mut bad_exp = GridConfig::default();
        bad_exp.experiment.al.budget = 0;
        assert!(bad_exp.validate().is_err());
    }

    #[test]
    fn config_serializes() {
        let c = ExperimentConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
