//! The compact binary encoding of [`SessionSnapshot`] — the serving
//! layer's persistence format.
//!
//! A session checkpoint is dominated by the matcher's flat `f32`
//! parameters; JSON renders those at several bytes per byte of payload.
//! This module encodes the complete snapshot into one checksummed
//! little-endian frame (see `em_core::codec` for the wire primitives
//! and the corruption-detection contract): a `BSSS` magic, a format
//! version byte, every scalar field in declaration order, and the
//! nested checkpointable types ([`RngState`](em_core::RngState),
//! [`Membership`](em_core::Membership),
//! [`MatcherSnapshot`](em_matcher::MatcherSnapshot)) embedded as their
//! own framed blocks — each carries its own magic/version/checksum, so
//! a format bump in any layer is detected exactly where it happens.
//!
//! The contract, pinned by the codec golden tests in
//! `tests/serve_api.rs`: `from_bytes(to_bytes(s)) == s` for every
//! snapshot a session can produce, and a session restored from the
//! binary frame continues **bit-identically** to one restored from the
//! JSON path. Corrupt input (truncated, bit-flipped, wrong
//! magic/version) always decodes to a structured
//! [`EmError::Codec`](em_core::EmError) — never a panic.

use em_core::codec::{read_frame, write_frame, ByteReader, ByteWriter};
use em_core::{EmError, Label, Membership, Result, RngState};
use em_matcher::{MatcherConfig, MatcherSnapshot};

use crate::config::{ALConfig, BattleshipParams, CentralityMeasure, ExperimentConfig, WeakMethod};
use crate::report::IterationRecord;
use crate::strategies::StrategySpec;

use super::{PendingSnapshot, SessionPhase, SessionSnapshot};

/// Binary frame magic for [`SessionSnapshot`].
const SESSION_MAGIC: [u8; 4] = *b"BSSS";
/// Binary format version for [`SessionSnapshot`] frames.
const SESSION_BINARY_VERSION: u8 = 1;

fn put_label(w: &mut ByteWriter, label: Label) {
    w.put_u8(label.is_match() as u8);
}

fn get_label(r: &mut ByteReader<'_>) -> Result<Label> {
    match r.get_u8()? {
        0 => Ok(Label::NonMatch),
        1 => Ok(Label::Match),
        other => Err(EmError::Codec(format!(
            "SessionSnapshot: invalid label byte {other}"
        ))),
    }
}

fn put_labels(w: &mut ByteWriter, labels: &[Label]) {
    w.put_varint(labels.len() as u64);
    for &l in labels {
        put_label(w, l);
    }
}

fn get_labels(r: &mut ByteReader<'_>) -> Result<Vec<Label>> {
    let n = r.get_varint_usize()?;
    if n > r.remaining() {
        return Err(EmError::Codec(format!(
            "SessionSnapshot: corrupt label count {n} with {} bytes remaining",
            r.remaining()
        )));
    }
    (0..n).map(|_| get_label(r)).collect()
}

/// `(pair, label)` lists — the pending batch's weak set and received
/// answers share the shape.
fn put_pair_labels(w: &mut ByteWriter, xs: &[(usize, Label)]) {
    w.put_varint(xs.len() as u64);
    for &(p, l) in xs {
        w.put_varint(p as u64);
        put_label(w, l);
    }
}

fn get_pair_labels(r: &mut ByteReader<'_>) -> Result<Vec<(usize, Label)>> {
    let n = r.get_varint_usize()?;
    // Each entry is at least one varint byte plus the label byte.
    if n.checked_mul(2).is_none_or(|b| b > r.remaining()) {
        return Err(EmError::Codec(format!(
            "SessionSnapshot: corrupt pair-label count {n} with {} bytes remaining",
            r.remaining()
        )));
    }
    (0..n)
        .map(|_| Ok((r.get_varint_usize()?, get_label(r)?)))
        .collect()
}

fn put_experiment(w: &mut ByteWriter, c: &ExperimentConfig) {
    // ALConfig.
    w.put_varint(c.al.budget as u64);
    w.put_varint(c.al.iterations as u64);
    w.put_varint(c.al.seed_size as u64);
    w.put_varint(c.al.weak_budget as u64);
    w.put_bool(c.al.weak_supervision);
    // BattleshipParams.
    w.put_f64(c.battleship.alpha);
    w.put_f64(c.battleship.beta);
    w.put_varint(c.battleship.q as u64);
    w.put_f64(c.battleship.extra_ratio);
    w.put_f64(c.battleship.cluster_min_frac);
    w.put_f64(c.battleship.cluster_max_frac);
    w.put_f64(c.battleship.rho);
    w.put_varint(c.battleship.kselect_sample as u64);
    w.put_varint(c.battleship.ann_cluster_threshold as u64);
    w.put_u8(match c.battleship.weak_method {
        WeakMethod::Spatial => 0,
        WeakMethod::Entropy => 1,
    });
    w.put_u8(match c.battleship.centrality {
        CentralityMeasure::PageRank => 0,
        CentralityMeasure::Betweenness => 1,
    });
    // MatcherConfig.
    w.put_varints(&c.matcher.hidden);
    w.put_varint(c.matcher.epochs as u64);
    w.put_varint(c.matcher.batch_size as u64);
    w.put_f32(c.matcher.lr);
    w.put_f32(c.matcher.weight_decay);
    w.put_f32(c.matcher.temperature);
    w.put_u64(c.matcher.seed);
}

fn get_experiment(r: &mut ByteReader<'_>) -> Result<ExperimentConfig> {
    let al = ALConfig {
        budget: r.get_varint_usize()?,
        iterations: r.get_varint_usize()?,
        seed_size: r.get_varint_usize()?,
        weak_budget: r.get_varint_usize()?,
        weak_supervision: r.get_bool()?,
    };
    let battleship = BattleshipParams {
        alpha: r.get_f64()?,
        beta: r.get_f64()?,
        q: r.get_varint_usize()?,
        extra_ratio: r.get_f64()?,
        cluster_min_frac: r.get_f64()?,
        cluster_max_frac: r.get_f64()?,
        rho: r.get_f64()?,
        kselect_sample: r.get_varint_usize()?,
        ann_cluster_threshold: r.get_varint_usize()?,
        weak_method: match r.get_u8()? {
            0 => WeakMethod::Spatial,
            1 => WeakMethod::Entropy,
            other => {
                return Err(EmError::Codec(format!(
                    "SessionSnapshot: unknown weak-method tag {other}"
                )))
            }
        },
        centrality: match r.get_u8()? {
            0 => CentralityMeasure::PageRank,
            1 => CentralityMeasure::Betweenness,
            other => {
                return Err(EmError::Codec(format!(
                    "SessionSnapshot: unknown centrality tag {other}"
                )))
            }
        },
    };
    let matcher = MatcherConfig {
        hidden: r.get_varints()?,
        epochs: r.get_varint_usize()?,
        batch_size: r.get_varint_usize()?,
        lr: r.get_f32()?,
        weight_decay: r.get_f32()?,
        temperature: r.get_f32()?,
        seed: r.get_u64()?,
    };
    Ok(ExperimentConfig {
        al,
        battleship,
        matcher,
    })
}

fn put_iteration(w: &mut ByteWriter, it: &IterationRecord) {
    w.put_varint(it.iteration as u64);
    w.put_varint(it.labels_used as u64);
    w.put_f64(it.test_f1_pct);
    w.put_f64(it.precision);
    w.put_f64(it.recall);
    w.put_f64(it.train_secs);
    w.put_f64(it.select_secs);
    w.put_varint(it.new_positives as u64);
    w.put_varint(it.new_labels as u64);
    w.put_varint(it.weak_used as u64);
}

fn get_iteration(r: &mut ByteReader<'_>) -> Result<IterationRecord> {
    Ok(IterationRecord {
        iteration: r.get_varint_usize()?,
        labels_used: r.get_varint_usize()?,
        test_f1_pct: r.get_f64()?,
        precision: r.get_f64()?,
        recall: r.get_f64()?,
        train_secs: r.get_f64()?,
        select_secs: r.get_f64()?,
        new_positives: r.get_varint_usize()?,
        new_labels: r.get_varint_usize()?,
        weak_used: r.get_varint_usize()?,
    })
}

fn put_pending(w: &mut ByteWriter, p: &PendingSnapshot) {
    w.put_varints(&p.pairs);
    w.put_bool(p.is_seed);
    put_pair_labels(w, &p.weak);
    w.put_f64(p.select_secs);
    put_pair_labels(w, &p.received);
}

fn get_pending(r: &mut ByteReader<'_>) -> Result<PendingSnapshot> {
    Ok(PendingSnapshot {
        pairs: r.get_varints()?,
        is_seed: r.get_bool()?,
        weak: get_pair_labels(r)?,
        select_secs: r.get_f64()?,
        received: get_pair_labels(r)?,
    })
}

fn strategy_tag(spec: StrategySpec) -> u8 {
    match spec {
        StrategySpec::Battleship => 0,
        StrategySpec::Dal => 1,
        StrategySpec::Dial => 2,
        StrategySpec::Random => 3,
    }
}

fn strategy_from_tag(tag: u8) -> Result<StrategySpec> {
    Ok(match tag {
        0 => StrategySpec::Battleship,
        1 => StrategySpec::Dal,
        2 => StrategySpec::Dial,
        3 => StrategySpec::Random,
        other => {
            return Err(EmError::Codec(format!(
                "SessionSnapshot: unknown strategy tag {other}"
            )))
        }
    })
}

fn phase_tag(phase: SessionPhase) -> u8 {
    match phase {
        SessionPhase::SeedDraw => 0,
        SessionPhase::AwaitingLabels => 1,
        SessionPhase::Training => 2,
        SessionPhase::Done => 3,
    }
}

fn phase_from_tag(tag: u8) -> Result<SessionPhase> {
    Ok(match tag {
        0 => SessionPhase::SeedDraw,
        1 => SessionPhase::AwaitingLabels,
        2 => SessionPhase::Training,
        3 => SessionPhase::Done,
        other => {
            return Err(EmError::Codec(format!(
                "SessionSnapshot: unknown phase tag {other}"
            )))
        }
    })
}

impl SessionSnapshot {
    /// Encode the complete snapshot as one compact, checksummed binary
    /// frame.
    ///
    /// The result restores (via [`SessionSnapshot::from_bytes`] and
    /// [`MatchSession::restore`](super::MatchSession::restore))
    /// bit-identically to the JSON path — same rng stream, same model
    /// parameters, same half-labeled batch — at a fraction of the size
    /// (the float-dominated payload is written as raw bit patterns).
    pub fn to_bytes(&self) -> Vec<u8> {
        let matcher_bytes = self.matcher.as_ref().map(|m| m.to_bytes());
        let mut w = ByteWriter::with_capacity(
            matcher_bytes.as_ref().map_or(0, |b| b.len()) + 64 * self.pool.len().max(16),
        );
        w.put_u32(self.version);
        w.put_str(&self.dataset);
        w.put_u64(self.seed);
        w.put_u8(strategy_tag(self.strategy));
        put_experiment(&mut w, &self.config);
        w.put_u8(phase_tag(self.phase));
        w.put_bytes(&self.rng.to_bytes());
        w.put_varints(&self.pool);
        w.put_varints(&self.train);
        put_labels(&mut w, &self.train_labels);
        w.put_bytes(&self.membership.to_bytes());
        match &matcher_bytes {
            Some(b) => {
                w.put_bool(true);
                w.put_bytes(b);
            }
            None => w.put_bool(false),
        }
        w.put_varint(self.iterations.len() as u64);
        for it in &self.iterations {
            put_iteration(&mut w, it);
        }
        match &self.pending {
            Some(p) => {
                w.put_bool(true);
                put_pending(&mut w, p);
            }
            None => w.put_bool(false),
        }
        write_frame(SESSION_MAGIC, SESSION_BINARY_VERSION, w.as_slice())
    }

    /// Decode a frame written by [`SessionSnapshot::to_bytes`].
    ///
    /// Any corruption — truncation, a flipped bit anywhere in the
    /// frame, a wrong magic or format version, an invalid enum tag — is
    /// a structured [`EmError::Codec`]; this function never panics and
    /// never trusts a length prefix beyond the bytes actually present.
    /// Semantic validation (dataset identity, index ranges, phase
    /// coherence) happens in
    /// [`MatchSession::restore`](super::MatchSession::restore), same as
    /// for a JSON-decoded snapshot.
    pub fn from_bytes(bytes: &[u8]) -> Result<SessionSnapshot> {
        let payload = read_frame(
            bytes,
            SESSION_MAGIC,
            SESSION_BINARY_VERSION,
            "SessionSnapshot",
        )?;
        let mut r = ByteReader::new(payload, "SessionSnapshot");
        let version = r.get_u32()?;
        let dataset = r.get_str()?;
        let seed = r.get_u64()?;
        let strategy = strategy_from_tag(r.get_u8()?)?;
        let config = get_experiment(&mut r)?;
        let phase = phase_from_tag(r.get_u8()?)?;
        let rng = RngState::from_bytes(r.get_bytes()?)?;
        let pool = r.get_varints()?;
        let train = r.get_varints()?;
        let train_labels = get_labels(&mut r)?;
        let membership = Membership::from_bytes(r.get_bytes()?)?;
        let matcher = if r.get_bool()? {
            Some(MatcherSnapshot::from_bytes(r.get_bytes()?)?)
        } else {
            None
        };
        let n_iterations = r.get_varint_usize()?;
        if n_iterations > r.remaining() {
            return Err(EmError::Codec(format!(
                "SessionSnapshot: corrupt iteration count {n_iterations} with {} bytes remaining",
                r.remaining()
            )));
        }
        let iterations = (0..n_iterations)
            .map(|_| get_iteration(&mut r))
            .collect::<Result<Vec<_>>>()?;
        let pending = if r.get_bool()? {
            Some(get_pending(&mut r)?)
        } else {
            None
        };
        r.finish()?;
        Ok(SessionSnapshot {
            version,
            dataset,
            seed,
            strategy,
            config,
            phase,
            rng,
            pool,
            train,
            train_labels,
            membership,
            matcher,
            iterations,
            pending,
        })
    }

    /// The snapshot's size in bytes under `codec` — what a serving
    /// deployment budgets per checkpoint (the `interactive_labeling`
    /// example logs the JSON-vs-binary ratio through this).
    pub fn encoded_len(&self, codec: crate::serve::SnapshotCodec) -> Result<usize> {
        Ok(codec.encode(self)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built snapshot exercising every optional field.
    fn sample_snapshot() -> SessionSnapshot {
        let mut membership = Membership::new(12);
        membership.insert(3);
        membership.insert(7);
        SessionSnapshot {
            version: super::super::SNAPSHOT_VERSION,
            dataset: "amazon-google@0.04".into(),
            seed: 0xDEAD_BEEF,
            strategy: StrategySpec::Battleship,
            config: ExperimentConfig::default(),
            phase: SessionPhase::AwaitingLabels,
            rng: em_core::Rng::seed_from_u64(9).state(),
            pool: vec![0, 2, 5, 9, 11],
            train: vec![1, 4],
            train_labels: vec![Label::Match, Label::NonMatch],
            membership,
            matcher: Some(MatcherSnapshot {
                input_dim: 4,
                hidden: vec![3, 2],
                params: vec![
                    0.25,
                    -1.5,
                    f32::MIN_POSITIVE,
                    0.0,
                    3.25,
                    -0.125,
                    7.0,
                    1.0,
                    2.0,
                    3.0,
                    4.0,
                    5.0,
                    6.0,
                    7.0,
                    8.0,
                    9.0,
                    10.0,
                    11.0,
                    12.0,
                    13.0,
                    14.0,
                    15.0,
                    16.0,
                    17.0,
                    18.0,
                    19.0,
                    20.0,
                ],
                temperature: 0.25,
                best_valid_f1: 0.875,
                best_epoch: 3,
            }),
            iterations: vec![IterationRecord {
                iteration: 0,
                labels_used: 20,
                test_f1_pct: 61.25,
                precision: 0.5,
                recall: 0.75,
                train_secs: 0.125,
                select_secs: 0.0,
                new_positives: 10,
                new_labels: 20,
                weak_used: 0,
            }],
            pending: Some(PendingSnapshot {
                pairs: vec![5, 9, 5],
                is_seed: false,
                weak: vec![(2, Label::NonMatch)],
                select_secs: 0.5,
                received: vec![(0, Label::Match), (2, Label::NonMatch)],
            }),
        }
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes();
        let back = SessionSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);

        // No-matcher / no-pending variants round-trip too.
        let mut lean = snap.clone();
        lean.matcher = None;
        lean.pending = None;
        lean.phase = SessionPhase::SeedDraw;
        let back = SessionSnapshot::from_bytes(&lean.to_bytes()).unwrap();
        assert_eq!(back, lean);
    }

    #[test]
    fn every_truncation_is_a_structured_error() {
        let bytes = sample_snapshot().to_bytes();
        for cut in 0..bytes.len() {
            match SessionSnapshot::from_bytes(&bytes[..cut]) {
                Err(EmError::Codec(_)) => {}
                Err(other) => panic!("truncation at {cut} gave non-codec error {other}"),
                Ok(_) => panic!("truncation at {cut} decoded successfully"),
            }
        }
    }

    #[test]
    fn bit_flips_are_always_detected() {
        let bytes = sample_snapshot().to_bytes();
        // Every byte, one flipped bit (full per-bit sweep lives in the
        // serve proptest).
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x04;
            assert!(
                SessionSnapshot::from_bytes(&bad).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn invalid_enum_tags_are_rejected() {
        let mut snap = sample_snapshot();
        snap.matcher = None; // keep the frame small
        let good = snap.to_bytes();
        // Re-frame with a corrupted strategy tag: decode the payload,
        // patch, re-frame (so the checksum is valid and the tag check
        // itself must fire).
        let payload = read_frame(&good, SESSION_MAGIC, SESSION_BINARY_VERSION, "t").unwrap();
        let mut patched = payload.to_vec();
        // Offset of the strategy tag: version(4) + dataset(8 + len) + seed(8).
        let off = 4 + 8 + snap.dataset.len() + 8;
        assert!(patched[off] <= 3);
        patched[off] = 250;
        let reframed = write_frame(SESSION_MAGIC, SESSION_BINARY_VERSION, &patched);
        let err = SessionSnapshot::from_bytes(&reframed).unwrap_err();
        assert!(err.to_string().contains("strategy tag"), "{err}");
    }
}
