//! The step-driven session API: the active-learning protocol as an
//! inverted-control state machine.
//!
//! The paper's protocol (§3.1 + §4.2) is a loop: draw a balanced seed,
//! train, predict, select, label, repeat. The experiment engine drives
//! that loop synchronously against an [`Oracle`] — fine for benchmarks,
//! unusable when labels come from humans or remote services with
//! latency. [`MatchSession`] inverts the control flow: the session owns
//! every piece of loop state (pool, labeled set, matcher, strategy,
//! rng, records) and exposes the protocol as explicit steps the caller
//! drives at its own pace:
//!
//! ```text
//!               ┌───────────┐
//!               │  SeedDraw │  advance(): draw the balanced seed batch
//!               └─────┬─────┘
//!                     ▼
//!           ┌──────────────────┐   next_query_batch()
//!     ┌────▶│  AwaitingLabels  │◀──────────────┐
//!     │     └────────┬─────────┘               │
//!     │              │ submit_labels(...)      │ advance(): predict +
//!     │              ▼  (batch complete)       │ select the next batch
//!     │        ┌──────────┐                    │
//!     │        │ Training │────────────────────┘
//!     │        └────┬─────┘  advance(): train + record F1
//!     │             │
//!     │             ▼  (budget exhausted or pool empty)
//!     │        ┌────────┐
//!     └────────│  Done  │
//!              └────────┘
//! ```
//!
//! Each state transition is deterministic given the session seed, and a
//! session driven against an oracle produces a [`RunReport`] **bit
//! identical** (modulo wall-clock fields) to the engine's closed loop —
//! the golden tests in [`crate::engine::worker`] and `tests/session_api.rs`
//! pin this for every [`StrategySpec`]. [`MatchSession::snapshot`] /
//! [`MatchSession::restore`] serialize the complete loop state, so a
//! session can be persisted mid-iteration (even with a half-labeled
//! batch in flight) and resumed bit-identically on another process.

mod binary;
mod snapshot;

pub use snapshot::{PendingSnapshot, SessionSnapshot, SNAPSHOT_VERSION};

use std::collections::HashMap;
use std::time::Instant;

use em_core::{BinaryConfusion, Dataset, EmError, Label, Membership, Oracle, PairIdx, Result, Rng};
use em_matcher::{train_matcher, MatcherConfig, TrainedMatcher};
use em_vector::Embeddings;

use crate::config::ExperimentConfig;
use crate::report::{IterationRecord, RunReport};
use crate::strategies::{SelectionContext, SelectionScratch, SelectionStrategy, StrategySpec};

/// Everything needed to open a [`MatchSession`]: the per-run protocol
/// configuration, the selection strategy, and the run seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Protocol / algorithm / matcher configuration.
    pub experiment: ExperimentConfig,
    /// Which selection strategy picks the query batches.
    pub strategy: StrategySpec,
    /// Seed driving every random decision of the run.
    pub seed: u64,
}

impl SessionConfig {
    /// A session config with the paper's default experiment parameters.
    pub fn new(strategy: StrategySpec, seed: u64) -> Self {
        SessionConfig {
            experiment: ExperimentConfig::default(),
            strategy,
            seed,
        }
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig::new(StrategySpec::Battleship, 0)
    }
}

/// Where a session currently stands in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SessionPhase {
    /// Fresh session: the balanced initialisation seed has not been
    /// drawn yet. `advance()` draws it and produces the first query
    /// batch.
    SeedDraw,
    /// A query batch is outstanding: fetch it with
    /// [`MatchSession::next_query_batch`] and answer it (possibly
    /// incrementally) with [`MatchSession::submit_labels`].
    AwaitingLabels,
    /// The current batch is fully labeled: `advance()` trains the next
    /// model, records its test F1, and either emits the next query
    /// batch or finishes.
    Training,
    /// The label budget is exhausted (or the pool ran dry); the final
    /// [`RunReport`] is available.
    Done,
}

/// What kind of batch is awaiting labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub(crate) enum BatchKind {
    /// The balanced initialisation seed (`D_train_0`).
    Seed,
    /// A strategy-selected iteration batch.
    Selection,
}

/// The in-flight query batch and its partially-received labels.
pub(crate) struct PendingBatch {
    /// Pairs sent to the labeler, in emission order.
    pub(crate) pairs: Vec<PairIdx>,
    pub(crate) kind: BatchKind,
    /// Weak pseudo-labels picked alongside this batch (§3.7), applied
    /// to the training round that consumes the batch.
    pub(crate) weak: Vec<(PairIdx, Label)>,
    /// Wall-clock of the predict+select step that produced the batch.
    pub(crate) select_secs: f64,
    /// Received labels, aligned with `pairs`.
    pub(crate) received: Vec<Option<Label>>,
    pub(crate) n_received: usize,
    /// Pair → positions in `pairs` (rebuilt, never serialized). A
    /// strategy may legally select the same pair more than once (the
    /// closed loop labeled it once per occurrence), so each pair maps
    /// to *all* its slots.
    positions: HashMap<PairIdx, Vec<usize>>,
}

impl PendingBatch {
    fn new(pairs: Vec<PairIdx>, kind: BatchKind, weak: Vec<(PairIdx, Label)>, secs: f64) -> Self {
        let mut positions: HashMap<PairIdx, Vec<usize>> = HashMap::with_capacity(pairs.len());
        for (i, &p) in pairs.iter().enumerate() {
            positions.entry(p).or_default().push(i);
        }
        let received = vec![None; pairs.len()];
        PendingBatch {
            pairs,
            kind,
            weak,
            select_secs: secs,
            received,
            n_received: 0,
            positions,
        }
    }

    fn is_complete(&self) -> bool {
        self.n_received == self.pairs.len()
    }

    /// The received labels in batch order; only valid when complete.
    fn labels(&self) -> Vec<Label> {
        debug_assert!(self.is_complete());
        // em-lint: allow(no-panic) -- guarded: every caller checks is_complete() first
        self.received.iter().map(|l| l.expect("complete")).collect()
    }
}

/// The strategy a session steps: owned (built from a [`StrategySpec`],
/// checkpointable) or borrowed (caller-managed, the engine/runner path).
enum StrategySlot<'a> {
    Owned(Box<dyn SelectionStrategy + Send>),
    Borrowed(&'a mut dyn SelectionStrategy),
}

impl StrategySlot<'_> {
    fn get(&mut self) -> &mut dyn SelectionStrategy {
        match self {
            StrategySlot::Owned(s) => s.as_mut(),
            StrategySlot::Borrowed(s) => *s,
        }
    }

    fn name(&self) -> String {
        match self {
            StrategySlot::Owned(s) => s.name(),
            StrategySlot::Borrowed(s) => s.name(),
        }
    }
}

/// A resumable, step-driven active-learning run.
///
/// Owns all loop state of the paper's protocol and exposes it as the
/// explicit state machine documented in the [module docs](self). The
/// closed-loop equivalent — [`MatchSession::drive`] against an oracle —
/// reproduces [`crate::runner::run_closed_loop`] bit-identically
/// (modulo wall-clock).
///
/// ```
/// use battleship::api::{MatchSession, SessionConfig, SessionPhase, StrategySpec};
/// use battleship::ExperimentConfig;
/// use em_core::{Oracle, PerfectOracle, Rng};
/// use em_matcher::{FeatureConfig, Featurizer};
/// use em_synth::{generate, DatasetProfile};
///
/// // A tiny synthetic task (scaled down so the doc-test is fast).
/// let profile = DatasetProfile::amazon_google().scaled(0.04);
/// let dataset = generate(&profile, &mut Rng::seed_from_u64(5)).unwrap();
/// let features = Featurizer::new(&dataset, FeatureConfig::default())
///     .unwrap()
///     .featurize_all(&dataset)
///     .unwrap();
///
/// let mut experiment = ExperimentConfig::low_resource(1, 10);
/// experiment.al.seed_size = 10;
/// experiment.matcher.epochs = 2;
/// experiment.battleship.kselect_sample = 128;
/// let config = SessionConfig { experiment, strategy: StrategySpec::Random, seed: 7 };
///
/// // The inverted loop: the session asks, the caller answers.
/// let oracle = PerfectOracle::new();
/// let mut session = MatchSession::new(&dataset, &features, config).unwrap();
/// loop {
///     match session.advance().unwrap() {
///         SessionPhase::AwaitingLabels => {
///             let labels: Vec<_> = session
///                 .next_query_batch()
///                 .into_iter()
///                 .map(|p| (p, oracle.label(&dataset, p)))
///                 .collect();
///             session.submit_labels(&labels).unwrap();
///         }
///         SessionPhase::Done => break,
///         _ => {}
///     }
/// }
/// let report = session.into_report();
/// assert_eq!(report.iterations.len(), 2); // seed model + 1 iteration
/// assert_eq!(oracle.queries(), 20); // 10 seed + 10 selected
/// ```
pub struct MatchSession<'a> {
    dataset: &'a Dataset,
    features: &'a Embeddings,
    config: ExperimentConfig,
    strategy: StrategySlot<'a>,
    /// Set when the strategy was built from a spec (required for
    /// checkpointing).
    strategy_spec: Option<StrategySpec>,
    seed: u64,
    rng: Rng,
    /// Unlabeled pool, shrinking as batches are emitted.
    pool: Vec<PairIdx>,
    membership: Membership,
    train: Vec<PairIdx>,
    train_labels: Vec<Label>,
    // Dataset-level constants (derived, not checkpointed).
    valid_idx: Vec<PairIdx>,
    valid_labels: Vec<Label>,
    test_idx: Vec<PairIdx>,
    test_labels: Vec<Label>,
    matcher: Option<TrainedMatcher>,
    iterations: Vec<IterationRecord>,
    phase: SessionPhase,
    pending: Option<PendingBatch>,
    /// Reusable selection scratch (transient — cleared before every use,
    /// never snapshotted).
    scratch: SelectionScratch,
}

impl<'a> MatchSession<'a> {
    /// Open a session from a [`SessionConfig`] (strategy built from its
    /// spec; the session is checkpointable via
    /// [`MatchSession::snapshot`]).
    pub fn new(
        dataset: &'a Dataset,
        features: &'a Embeddings,
        config: SessionConfig,
    ) -> Result<Self> {
        let strategy = StrategySlot::Owned(config.strategy.build());
        Self::open(
            dataset,
            features,
            strategy,
            Some(config.strategy),
            config.experiment,
            config.seed,
        )
    }

    /// Open a session stepping a caller-managed strategy instance (the
    /// engine / legacy-runner path). Such a session runs identically
    /// but cannot be checkpointed — [`MatchSession::snapshot`] needs a
    /// [`StrategySpec`] to rebuild the strategy on restore.
    pub fn with_strategy(
        dataset: &'a Dataset,
        features: &'a Embeddings,
        strategy: &'a mut dyn SelectionStrategy,
        experiment: ExperimentConfig,
        seed: u64,
    ) -> Result<Self> {
        Self::open(
            dataset,
            features,
            StrategySlot::Borrowed(strategy),
            None,
            experiment,
            seed,
        )
    }

    fn open(
        dataset: &'a Dataset,
        features: &'a Embeddings,
        strategy: StrategySlot<'a>,
        strategy_spec: Option<StrategySpec>,
        config: ExperimentConfig,
        seed: u64,
    ) -> Result<Self> {
        config.validate()?;
        if features.len() != dataset.len() {
            return Err(EmError::DimensionMismatch {
                context: "run features".into(),
                expected: dataset.len(),
                actual: features.len(),
            });
        }
        let rng = Rng::seed_from_u64(seed);
        let pool: Vec<PairIdx> = dataset.split().train.clone();
        if pool.len() < config.al.seed_size {
            return Err(EmError::InvalidConfig(format!(
                "pool of {} smaller than seed size {}",
                pool.len(),
                config.al.seed_size
            )));
        }
        let valid_idx = dataset.split().valid.clone();
        let valid_labels = dataset.ground_truth_of(&valid_idx);
        let test_idx = dataset.split().test.clone();
        let test_labels = dataset.ground_truth_of(&test_idx);
        let membership = Membership::new(dataset.len());
        Ok(MatchSession {
            dataset,
            features,
            config,
            strategy,
            strategy_spec,
            seed,
            rng,
            pool,
            membership,
            train: Vec::new(),
            train_labels: Vec::new(),
            valid_idx,
            valid_labels,
            test_idx,
            test_labels,
            matcher: None,
            iterations: Vec::new(),
            phase: SessionPhase::SeedDraw,
            pending: None,
            scratch: SelectionScratch::new(),
        })
    }

    // --- Introspection. ---------------------------------------------------

    /// Where the session currently stands.
    pub fn phase(&self) -> SessionPhase {
        self.phase
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The strategy's display name.
    pub fn strategy_name(&self) -> String {
        self.strategy.name()
    }

    /// The experiment configuration the session runs under.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Oracle labels consumed so far (including any partially-submitted
    /// batch).
    pub fn labels_used(&self) -> usize {
        // A fully-labeled batch has already been folded into `train`
        // (it lingers in `pending` only to feed the training step), so
        // count outstanding labels only while they are outstanding.
        let outstanding = match self.phase {
            SessionPhase::AwaitingLabels => self.pending.as_ref().map_or(0, |p| p.n_received),
            _ => 0,
        };
        self.train.len() + outstanding
    }

    /// Unlabeled pairs remaining in the pool.
    pub fn pool_remaining(&self) -> usize {
        self.pool.len()
    }

    /// Per-iteration records produced so far (seed model first).
    pub fn records(&self) -> &[IterationRecord] {
        &self.iterations
    }

    /// The current model, once the first training step has run.
    pub fn matcher(&self) -> Option<&TrainedMatcher> {
        self.matcher.as_ref()
    }

    /// The report of everything recorded so far.
    pub fn report(&self) -> RunReport {
        RunReport {
            dataset: self.dataset.name.clone(),
            strategy: self.strategy.name(),
            seed: self.seed,
            iterations: self.iterations.clone(),
        }
    }

    /// Consume the session into its final report (moving the records
    /// out instead of cloning them).
    pub fn into_report(self) -> RunReport {
        RunReport {
            dataset: self.dataset.name.clone(),
            strategy: self.strategy.name(),
            seed: self.seed,
            iterations: self.iterations,
        }
    }

    // --- The state machine. -----------------------------------------------

    /// Perform the current phase's work and return the new phase.
    ///
    /// * [`SessionPhase::SeedDraw`] → draws the balanced seed batch and
    ///   moves to `AwaitingLabels`.
    /// * [`SessionPhase::AwaitingLabels`] → no-op (labels arrive via
    ///   [`MatchSession::submit_labels`]).
    /// * [`SessionPhase::Training`] → trains on the completed batch,
    ///   records test F1, then either selects the next query batch
    ///   (`AwaitingLabels`) or finishes (`Done`).
    /// * [`SessionPhase::Done`] → no-op.
    ///
    /// An `Err` from the training/selection step leaves the session
    /// unusable (the batch that fed it is consumed); subsequent
    /// `advance()` calls keep returning an error. Resume from the last
    /// [`MatchSession::snapshot`] instead.
    pub fn advance(&mut self) -> Result<SessionPhase> {
        match self.phase {
            SessionPhase::SeedDraw => self.draw_seed_batch()?,
            SessionPhase::AwaitingLabels | SessionPhase::Done => {}
            SessionPhase::Training => self.train_and_continue()?,
        }
        Ok(self.phase)
    }

    /// The pairs currently awaiting labels, in emission order (pairs
    /// already answered through an incremental
    /// [`MatchSession::submit_labels`] are omitted). Empty when no
    /// batch is outstanding.
    pub fn next_query_batch(&self) -> Vec<PairIdx> {
        match &self.pending {
            Some(batch) if self.phase == SessionPhase::AwaitingLabels => batch
                .pairs
                .iter()
                .zip(&batch.received)
                .filter(|(_, r)| r.is_none())
                .map(|(&p, _)| p)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Submit labels for (part of) the outstanding query batch.
    ///
    /// Labels may arrive incrementally and in any order; each pair must
    /// belong to the outstanding batch and may only be answered once.
    /// When the last label arrives the session moves to
    /// [`SessionPhase::Training`].
    pub fn submit_labels(&mut self, labels: &[(PairIdx, Label)]) -> Result<SessionPhase> {
        if self.phase != SessionPhase::AwaitingLabels {
            return Err(EmError::InvalidConfig(format!(
                "no labels are awaited in phase {:?}",
                self.phase
            )));
        }
        let Some(batch) = self.pending.as_mut() else {
            return Err(EmError::Internal(
                "phase is AwaitingLabels but no batch is pending".into(),
            ));
        };
        for &(pair, label) in labels {
            let Some(slots) = batch.positions.get(&pair) else {
                return Err(EmError::InvalidConfig(format!(
                    "pair {pair} is not part of the outstanding query batch"
                )));
            };
            // Fill the first unanswered slot for this pair (a pair may
            // occur more than once in a batch; each occurrence needs a
            // label, as each consumed one oracle query in the closed
            // loop).
            let Some(&pos) = slots.iter().find(|&&s| batch.received[s].is_none()) else {
                return Err(EmError::InvalidConfig(format!(
                    "pair {pair} was already labeled in this batch"
                )));
            };
            batch.received[pos] = Some(label);
            batch.n_received += 1;
        }
        if batch.is_complete() {
            self.complete_batch()?;
        }
        Ok(self.phase)
    }

    /// Move a fully-labeled batch into the train set (batch order, the
    /// closed loop's oracle order) and arm the training step.
    fn complete_batch(&mut self) -> Result<()> {
        let Some(batch) = self.pending.as_ref() else {
            return Err(EmError::Internal(
                "complete_batch called with no batch pending".into(),
            ));
        };
        debug_assert!(batch.is_complete());
        let labels = batch.labels();
        self.train.extend_from_slice(&batch.pairs);
        self.train_labels.extend_from_slice(&labels);
        self.phase = SessionPhase::Training;
        Ok(())
    }

    /// Drive the session to completion against an oracle — the closed
    /// loop as a few-line client of the step API — and return the final
    /// report.
    pub fn drive(&mut self, oracle: &dyn Oracle) -> Result<RunReport> {
        loop {
            match self.advance()? {
                SessionPhase::AwaitingLabels => {
                    let labels: Vec<(PairIdx, Label)> = self
                        .next_query_batch()
                        .into_iter()
                        .map(|p| (p, oracle.label(self.dataset, p)))
                        .collect();
                    self.submit_labels(&labels)?;
                }
                SessionPhase::Done => break,
                SessionPhase::SeedDraw | SessionPhase::Training => {}
            }
        }
        Ok(self.report())
    }

    // --- Protocol steps (bit-identical to the closed loop). ---------------

    /// Draw the balanced initialisation seed (`seed_size/2` matches and
    /// non-matches; the standard assumption the paper takes from Kasai
    /// et al.) and emit it as the first query batch.
    ///
    /// The *choice* of seed pairs uses ground truth for balance (as the
    /// closed loop did); their *labels* still come from the caller, so
    /// a noisy labeler flows through identically.
    fn draw_seed_batch(&mut self) -> Result<()> {
        let seed_size = self.config.al.seed_size;
        let mut shuffled = self.pool.clone();
        self.rng.shuffle(&mut shuffled);
        let half = seed_size / 2;
        let mut chosen = Vec::with_capacity(seed_size);
        let mut n_pos = 0usize;
        let mut n_neg = 0usize;
        let mut leftovers = Vec::new();
        for &idx in &shuffled {
            if chosen.len() >= seed_size {
                break;
            }
            let label = self.dataset.ground_truth(idx);
            let take = if label.is_match() {
                if n_pos < half {
                    n_pos += 1;
                    true
                } else {
                    false
                }
            } else if n_neg < seed_size - half {
                n_neg += 1;
                true
            } else {
                false
            };
            if take {
                chosen.push(idx);
            } else {
                leftovers.push(idx);
            }
        }
        // If one class ran short (tiny pools), fill with whatever remains.
        for &idx in &leftovers {
            if chosen.len() >= seed_size {
                break;
            }
            chosen.push(idx);
        }
        self.membership.begin();
        for &idx in &chosen {
            self.membership.insert(idx);
        }
        let membership = &self.membership;
        self.pool.retain(|&i| !membership.contains(i));
        self.pending = Some(PendingBatch::new(chosen, BatchKind::Seed, Vec::new(), 0.0));
        self.phase = SessionPhase::AwaitingLabels;
        Ok(())
    }

    /// Train on the completed batch, record the iteration, and select
    /// the next query batch (or finish).
    fn train_and_continue(&mut self) -> Result<()> {
        // A failed training/selection step leaves the session errored:
        // the batch that fed it is consumed, so a retried `advance()`
        // reports the poisoned state as an error rather than panicking
        // (or silently re-training).
        let batch = self.pending.take().ok_or_else(|| {
            EmError::InvalidConfig(
                "session is unusable: a previous training/selection step failed".into(),
            )
        })?;
        debug_assert!(batch.is_complete());

        // Fresh per-iteration matcher seed — the closed loop's
        // `rng.next_u64()` in the same stream position.
        let matcher_config = MatcherConfig {
            seed: self.rng.next_u64(),
            ..self.config.matcher.clone()
        };
        // em-lint: allow(wall-clock) -- fills a RunReport timing field; canonical() zeroes it
        let t_train = Instant::now();
        let (matcher, metrics) = self.train_and_eval(&batch.weak, &matcher_config)?;
        let train_secs = t_train.elapsed().as_secs_f64();
        self.matcher = Some(matcher);

        let batch_labels = batch.labels();
        let new_positives = match batch.kind {
            BatchKind::Seed => self.train_labels.iter().filter(|l| l.is_match()).count(),
            BatchKind::Selection => batch_labels.iter().filter(|l| l.is_match()).count(),
        };
        self.iterations.push(IterationRecord {
            iteration: self.iterations.len(),
            labels_used: self.train.len(),
            test_f1_pct: metrics.f1_pct(),
            precision: metrics.precision,
            recall: metrics.recall,
            train_secs,
            select_secs: batch.select_secs,
            new_positives,
            new_labels: batch.pairs.len(),
            weak_used: batch.weak.len(),
        });

        // Loop control, as the closed loop orders it: the iteration
        // budget first, then the pool-empty check at the next
        // iteration's top.
        let completed_selections = self.iterations.len() - 1;
        if completed_selections >= self.config.al.iterations || self.pool.is_empty() {
            self.phase = SessionPhase::Done;
            return Ok(());
        }
        self.select_next_batch(completed_selections)
    }

    /// Predict over pool and train, hand the strategy the
    /// representations, and emit its selections as the next query batch.
    fn select_next_batch(&mut self, iteration: usize) -> Result<()> {
        let Some(matcher) = self.matcher.as_ref() else {
            return Err(EmError::Internal(
                "selection step reached before any training step".into(),
            ));
        };
        // em-lint: allow(wall-clock) -- fills a RunReport timing field; canonical() zeroes it
        let t_select = Instant::now();
        let pool_out = matcher.predict(self.features, &self.pool)?;
        let train_out = matcher.predict(self.features, &self.train)?;

        let budget = self.config.al.budget.min(self.pool.len());
        let mut ctx = SelectionContext {
            dataset: self.dataset,
            features: self.features,
            pool: &self.pool,
            train: &self.train,
            train_labels: &self.train_labels,
            pool_preds: &pool_out.predictions,
            pool_reprs: &pool_out.representations,
            train_reprs: &train_out.representations,
            budget,
            iteration,
            config: &self.config,
            scratch: &mut self.scratch,
        };
        let selection = self.strategy.get().select(&mut ctx, &mut self.rng)?;
        let select_secs = t_select.elapsed().as_secs_f64();

        if selection.to_label.len() > budget {
            return Err(EmError::InvalidConfig(format!(
                "strategy `{}` exceeded its budget: {} > {budget}",
                self.strategy.name(),
                selection.to_label.len()
            )));
        }
        self.membership.begin();
        for &p in &self.pool {
            self.membership.insert(p);
        }
        for &p in &selection.to_label {
            if !self.membership.contains(p) {
                return Err(EmError::InvalidConfig(format!(
                    "strategy `{}` selected pair {p} outside the pool",
                    self.strategy.name()
                )));
            }
        }
        self.membership.begin();
        for &p in &selection.to_label {
            self.membership.insert(p);
        }
        let membership = &self.membership;
        self.pool.retain(|&i| !membership.contains(i));

        let batch = PendingBatch::new(
            selection.to_label,
            BatchKind::Selection,
            selection.weak,
            select_secs,
        );
        let empty = batch.pairs.is_empty();
        self.pending = Some(batch);
        if empty {
            // Nothing to label (a strategy may legally select nothing);
            // the batch is trivially complete — train immediately.
            self.complete_batch()?;
        } else {
            self.phase = SessionPhase::AwaitingLabels;
        }
        Ok(())
    }

    /// Train a matcher on `train ∪ weak` and measure test metrics.
    fn train_and_eval(
        &self,
        weak: &[(PairIdx, Label)],
        matcher_config: &MatcherConfig,
    ) -> Result<(TrainedMatcher, em_core::Metrics)> {
        let mut idx: Vec<PairIdx> = self.train.clone();
        let mut labels: Vec<Label> = self.train_labels.clone();
        for &(p, l) in weak {
            idx.push(p);
            labels.push(l);
        }
        let matcher = train_matcher(
            self.features,
            &idx,
            &labels,
            &self.valid_idx,
            &self.valid_labels,
            matcher_config,
        )?;
        let out = matcher.predict(self.features, &self.test_idx)?;
        let predicted: Vec<Label> = out.predictions.iter().map(|p| p.label).collect();
        let metrics = BinaryConfusion::from_labels(&predicted, &self.test_labels)?.metrics();
        Ok((matcher, metrics))
    }
}
