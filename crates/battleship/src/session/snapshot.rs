//! Serde checkpoints for [`MatchSession`]: persist a session
//! mid-iteration, resume it bit-identically.
//!
//! A snapshot captures every piece of state the remaining protocol
//! steps depend on — pool, labeled set, rng stream position, the
//! current matcher's parameters, the in-flight query batch with its
//! partially-received labels — but *not* the dataset or its features:
//! those are immutable artifacts the caller re-supplies on restore
//! (they are orders of magnitude larger than the loop state and
//! already shared via [`crate::engine::ArtifactCache`]).
//!
//! The contract, pinned by `tests/session_api.rs`: snapshot at *any*
//! phase, serialize to JSON, deserialize, [`MatchSession::restore`],
//! finish the run — the resulting [`crate::report::RunReport`] equals
//! the uninterrupted run's bit-for-bit (modulo wall-clock fields
//! recorded after the restore point).

use serde::{Deserialize, Serialize};

use em_core::{Dataset, EmError, Label, Membership, PairIdx, Result, Rng, RngState};
use em_matcher::{MatcherSnapshot, TrainedMatcher};
use em_vector::Embeddings;

use crate::config::ExperimentConfig;
use crate::report::IterationRecord;
use crate::strategies::StrategySpec;

use super::{BatchKind, MatchSession, PendingBatch, SessionPhase, StrategySlot};

/// Snapshot format version, bumped on incompatible layout changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The in-flight query batch, serialized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingSnapshot {
    /// Pairs sent to the labeler, in emission order.
    pub pairs: Vec<PairIdx>,
    /// Whether this is the seed batch or a strategy selection.
    pub is_seed: bool,
    /// Weak pseudo-labels riding with the batch (§3.7).
    pub weak: Vec<(PairIdx, Label)>,
    /// Wall-clock of the predict+select step that produced the batch.
    pub select_secs: f64,
    /// Labels received so far, as `(position in pairs, label)`.
    pub received: Vec<(usize, Label)>,
}

/// The complete serializable state of a [`MatchSession`].
///
/// Produced by [`MatchSession::snapshot`], consumed by
/// [`MatchSession::restore`]. JSON round-trips exactly: every float in
/// here survives `serde_json` bit-for-bit (finite shortest-round-trip
/// formatting), so a restored session continues the identical stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Snapshot layout version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Name of the dataset the session ran on (consistency-checked on
    /// restore).
    pub dataset: String,
    /// The run seed.
    pub seed: u64,
    /// The strategy to rebuild on restore.
    pub strategy: StrategySpec,
    /// The experiment configuration.
    pub config: ExperimentConfig,
    /// Current protocol phase.
    pub phase: SessionPhase,
    /// The rng mid-stream.
    pub rng: RngState,
    /// Unlabeled pool, in its current order.
    pub pool: Vec<PairIdx>,
    /// Labeled pairs so far.
    pub train: Vec<PairIdx>,
    /// Labels aligned with `train`.
    pub train_labels: Vec<Label>,
    /// The reusable membership set (stamps + generation).
    pub membership: Membership,
    /// The current model, if the first training step has run.
    pub matcher: Option<MatcherSnapshot>,
    /// Per-iteration records so far.
    pub iterations: Vec<IterationRecord>,
    /// The outstanding query batch, if any.
    pub pending: Option<PendingSnapshot>,
}

impl<'a> MatchSession<'a> {
    /// Capture the session's complete loop state for persistence.
    ///
    /// Only sessions opened from a [`SessionConfig`](super::SessionConfig)
    /// (i.e. with a [`StrategySpec`]) can be checkpointed: restore has
    /// to rebuild the strategy, and a caller-managed `&mut dyn` strategy
    /// can't be serialized. All built-in strategies are stateless across
    /// iterations, so spec-rebuilding is exact.
    pub fn snapshot(&self) -> Result<SessionSnapshot> {
        let strategy = self.strategy_spec.ok_or_else(|| {
            EmError::InvalidConfig(
                "snapshot requires a session built from a StrategySpec \
                 (MatchSession::new); caller-managed strategies cannot be serialized"
                    .into(),
            )
        })?;
        let pending = self.pending.as_ref().map(|b| PendingSnapshot {
            pairs: b.pairs.clone(),
            is_seed: b.kind == BatchKind::Seed,
            weak: b.weak.clone(),
            select_secs: b.select_secs,
            received: b
                .received
                .iter()
                .enumerate()
                .filter_map(|(i, l)| l.map(|l| (i, l)))
                .collect(),
        });
        Ok(SessionSnapshot {
            version: SNAPSHOT_VERSION,
            dataset: self.dataset.name.clone(),
            seed: self.seed,
            strategy,
            config: self.config.clone(),
            phase: self.phase,
            rng: self.rng.state(),
            pool: self.pool.clone(),
            train: self.train.clone(),
            train_labels: self.train_labels.clone(),
            membership: self.membership.clone(),
            matcher: self.matcher.as_ref().map(|m| m.to_snapshot()),
            iterations: self.iterations.clone(),
            pending,
        })
    }

    /// Rebuild a session from a snapshot against the (re-supplied)
    /// immutable dataset artifacts.
    ///
    /// The restored session continues the run bit-identically: same rng
    /// stream, same pool order, same model parameters, same
    /// half-labeled batch. Errors if the snapshot is malformed or does
    /// not belong to `dataset`.
    pub fn restore(
        dataset: &'a Dataset,
        features: &'a Embeddings,
        snapshot: &SessionSnapshot,
    ) -> Result<MatchSession<'a>> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(EmError::InvalidConfig(format!(
                "unsupported session snapshot version {} (expected {SNAPSHOT_VERSION})",
                snapshot.version
            )));
        }
        if snapshot.dataset != dataset.name {
            return Err(EmError::InvalidConfig(format!(
                "snapshot belongs to dataset `{}`, not `{}`",
                snapshot.dataset, dataset.name
            )));
        }
        if snapshot.membership.capacity() != dataset.len() {
            return Err(EmError::DimensionMismatch {
                context: "session snapshot membership".into(),
                expected: dataset.len(),
                actual: snapshot.membership.capacity(),
            });
        }
        if snapshot.train.len() != snapshot.train_labels.len() {
            return Err(EmError::DimensionMismatch {
                context: "session snapshot train labels".into(),
                expected: snapshot.train.len(),
                actual: snapshot.train_labels.len(),
            });
        }
        let pending_pairs = snapshot.pending.iter().flat_map(|p| &p.pairs);
        let pending_weak = snapshot
            .pending
            .iter()
            .flat_map(|p| &p.weak)
            .map(|(i, _)| i);
        for (what, mut idx) in [
            (
                "pool",
                Box::new(snapshot.pool.iter()) as Box<dyn Iterator<Item = &usize>>,
            ),
            ("train", Box::new(snapshot.train.iter())),
            ("pending batch", Box::new(pending_pairs)),
            ("pending weak set", Box::new(pending_weak)),
        ] {
            if let Some(&bad) = idx.find(|&&i| i >= dataset.len()) {
                return Err(EmError::IndexOutOfBounds {
                    context: format!("session snapshot {what}"),
                    index: bad,
                    len: dataset.len(),
                });
            }
        }

        // Open a fresh session (re-deriving the dataset-level constants
        // and validating config/features), then overwrite the loop
        // state with the snapshot's.
        let mut session = MatchSession::open(
            dataset,
            features,
            StrategySlot::Owned(snapshot.strategy.build()),
            Some(snapshot.strategy),
            snapshot.config.clone(),
            snapshot.seed,
        )?;
        session.rng = Rng::from_state(&snapshot.rng)?;
        session.pool = snapshot.pool.clone();
        session.train = snapshot.train.clone();
        session.train_labels = snapshot.train_labels.clone();
        session.membership = snapshot.membership.clone();
        session.matcher = snapshot
            .matcher
            .as_ref()
            .map(TrainedMatcher::from_snapshot)
            .transpose()?;
        session.iterations = snapshot.iterations.clone();
        session.phase = snapshot.phase;
        session.pending = snapshot.pending.as_ref().map(restore_pending).transpose()?;

        // Phase coherence: the states the machine can actually rest in.
        match session.phase {
            SessionPhase::AwaitingLabels => {
                if session.pending.is_none() {
                    return Err(EmError::InvalidConfig(
                        "snapshot awaits labels but has no pending batch".into(),
                    ));
                }
            }
            SessionPhase::Training => {
                if !session.pending.as_ref().is_some_and(|b| b.is_complete()) {
                    return Err(EmError::InvalidConfig(
                        "snapshot in Training phase needs a fully-labeled batch".into(),
                    ));
                }
            }
            SessionPhase::SeedDraw | SessionPhase::Done => {}
        }
        Ok(session)
    }
}

/// Rebuild the in-flight batch (positions map and received vector are
/// reconstructed from the sparse `(position, label)` list).
fn restore_pending(snap: &PendingSnapshot) -> Result<PendingBatch> {
    let mut batch = PendingBatch::new(
        snap.pairs.clone(),
        if snap.is_seed {
            BatchKind::Seed
        } else {
            BatchKind::Selection
        },
        snap.weak.clone(),
        snap.select_secs,
    );
    for &(pos, label) in &snap.received {
        let slot = batch
            .received
            .get_mut(pos)
            .ok_or_else(|| EmError::IndexOutOfBounds {
                context: "session snapshot pending labels".into(),
                index: pos,
                len: snap.pairs.len(),
            })?;
        if slot.is_some() {
            return Err(EmError::InvalidConfig(format!(
                "session snapshot labels batch position {pos} twice"
            )));
        }
        *slot = Some(label);
        batch.n_received += 1;
    }
    Ok(batch)
}
