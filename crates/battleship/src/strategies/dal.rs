//! DAL — Deep Active Learning (Kasai et al. 2019), reimplemented per the
//! paper's §4.3 description.
//!
//! "In each active learning iteration, B/2 no match predictions and B/2
//! match predictions are labeled. Selected samples are the most uncertain
//! (those maximizing the value of Eq. 1). In addition, DAL uses a
//! weak-supervision mechanism, augmenting the training set with k/2 match
//! and no match high-confidence samples, with their assigned prediction."
//! (The adversarial transfer-learning component is omitted, as in the
//! paper's own reimplementation, since no source domain is available.)

use em_core::{Label, PairIdx, Result, Rng};
use em_graph::binary_entropy;

use crate::strategies::{
    split_budget_with_spill, split_by_prediction, Selection, SelectionContext, SelectionStrategy,
};

/// Entropy-based uncertainty sampling with confidence-based weak
/// supervision.
#[derive(Debug, Default)]
pub struct DalStrategy;

impl DalStrategy {
    /// Create the strategy.
    pub fn new() -> Self {
        DalStrategy
    }
}

/// Sort pool positions by entropy; `descending = true` gives
/// most-uncertain-first (selection), `false` most-confident-first (weak
/// supervision).
fn by_entropy(positions: &[usize], entropies: &[f64], descending: bool) -> Vec<usize> {
    let mut order = positions.to_vec();
    order.sort_by(|&a, &b| {
        let cmp = entropies[a]
            .partial_cmp(&entropies[b])
            .unwrap_or(std::cmp::Ordering::Equal);
        (if descending { cmp.reverse() } else { cmp }).then(a.cmp(&b))
    });
    order
}

impl SelectionStrategy for DalStrategy {
    fn name(&self) -> String {
        "dal".into()
    }

    fn select(&mut self, ctx: &mut SelectionContext<'_>, _rng: &mut Rng) -> Result<Selection> {
        let entropies: Vec<f64> = ctx
            .pool_preds
            .iter()
            .map(|p| binary_entropy(p.prob as f64))
            .collect();
        let (pos_nodes, neg_nodes) = split_by_prediction(ctx.pool_preds);

        // B/2 : B/2 with spill when one side runs short.
        let (b_pos, b_neg) =
            split_budget_with_spill(ctx.budget / 2, ctx.budget, pos_nodes.len(), neg_nodes.len());

        let mut to_label: Vec<PairIdx> = Vec::with_capacity(ctx.budget);
        for (nodes, b) in [(&pos_nodes, b_pos), (&neg_nodes, b_neg)] {
            let ranked = by_entropy(nodes, &entropies, true);
            to_label.extend(ranked.iter().take(b).map(|&p| ctx.pool[p]));
        }

        // Weak supervision: k/2 most confident per side.
        let mut weak: Vec<(PairIdx, Label)> = Vec::new();
        if ctx.config.al.weak_supervision && ctx.config.al.weak_budget > 0 {
            let half = ctx.config.al.weak_budget / 2;
            let (w_pos, w_neg) = split_budget_with_spill(
                half,
                ctx.config.al.weak_budget,
                pos_nodes.len(),
                neg_nodes.len(),
            );
            for (nodes, b) in [(&pos_nodes, w_pos), (&neg_nodes, w_neg)] {
                let ranked = by_entropy(nodes, &entropies, false);
                weak.extend(
                    ranked
                        .iter()
                        .take(b)
                        .map(|&p| (ctx.pool[p], ctx.pool_preds[p].label)),
                );
            }
            let labeled: std::collections::HashSet<_> = to_label.iter().copied().collect();
            weak.retain(|(p, _)| !labeled.contains(p));
        }

        Ok(Selection { to_label, weak })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_ordering() {
        let entropies = vec![0.1, 0.9, 0.5, 0.99];
        let positions = vec![0, 1, 2, 3];
        assert_eq!(by_entropy(&positions, &entropies, true), vec![3, 1, 2, 0]);
        assert_eq!(by_entropy(&positions, &entropies, false), vec![0, 2, 1, 3]);
    }

    #[test]
    fn subset_ordering_only_considers_given_positions() {
        let entropies = vec![0.1, 0.9, 0.5, 0.99];
        let positions = vec![0, 2];
        assert_eq!(by_entropy(&positions, &entropies, true), vec![2, 0]);
    }
}
