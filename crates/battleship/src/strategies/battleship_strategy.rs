//! The battleship selection strategy (§3 end-to-end).

use em_core::{EmError, Result, Rng};
use em_graph::NodeKind;

use crate::budget::positive_budget;
use crate::selection::select_side_with;
use crate::spatial::{SpatialIndex, SpatialParams};
use crate::strategies::{
    split_budget_with_spill, split_by_prediction, Selection, SelectionContext, SelectionStrategy,
};
use crate::weak::weak_side;

/// The paper's approach: correspondence via per-side graphs and Eq. 2
/// budgets, certainty via spatial entropy (Eq. 4), centrality via
/// weighted PageRank (Eq. 5), rank-blended by `α` (Eq. 6), plus
/// spatially-confident weak supervision (§3.7).
#[derive(Debug, Default)]
pub struct BattleshipStrategy;

impl BattleshipStrategy {
    /// Create the strategy (all parameters come from the
    /// [`SelectionContext`]'s config).
    pub fn new() -> Self {
        BattleshipStrategy
    }
}

/// One prediction side's spatial machinery, ready for selection.
struct Side {
    /// Spatial index over the side's nodes.
    index: SpatialIndex,
    /// Side node → heterogeneous node id (= pool position).
    to_hetero: Vec<usize>,
    /// Side node → pool position.
    pool_positions: Vec<usize>,
}

impl SelectionStrategy for BattleshipStrategy {
    fn name(&self) -> String {
        "battleship".into()
    }

    fn select(&mut self, ctx: &mut SelectionContext<'_>, rng: &mut Rng) -> Result<Selection> {
        let params = &ctx.config.battleship;
        let n_pool = ctx.pool.len();
        if n_pool == 0 {
            return Ok(Selection::default());
        }
        if ctx.pool_preds.len() != n_pool || ctx.pool_reprs.len() != n_pool {
            return Err(EmError::DimensionMismatch {
                context: "battleship pool inputs".into(),
                expected: n_pool,
                actual: ctx.pool_preds.len().min(ctx.pool_reprs.len()),
            });
        }

        // --- Heterogeneous graph over pool ∪ labeled (§3.3.3). ------------
        // The full representation matrix is L2-normalized ONCE here;
        // all three spatial indexes of this iteration (`G`, `G⁺`, `G⁻`)
        // are built from views of it via `build_normalized`, instead of
        // each build cloning and re-normalizing its input (per-row
        // normalization commutes with row gathering, so the per-side
        // graphs are identical to normalizing the gathered subsets).
        // Storage comes from the session's scratch, so successive
        // iterations reuse capacity instead of reallocating pool-sized
        // buffers per call.
        let n_train = ctx.train.len();
        let (hetero_reprs, kinds, confs) = ctx.scratch.take(ctx.pool_reprs.dim())?;
        kinds.reserve(n_pool + n_train);
        confs.reserve(n_pool + n_train);
        for i in 0..n_pool {
            hetero_reprs.push(ctx.pool_reprs.row(i))?;
            kinds.push(if ctx.pool_preds[i].label.is_match() {
                NodeKind::PredictedMatch
            } else {
                NodeKind::PredictedNonMatch
            });
            confs.push(ctx.pool_preds[i].confidence_in_label());
        }
        for j in 0..n_train {
            hetero_reprs.push(ctx.train_reprs.row(j))?;
            kinds.push(if ctx.train_labels[j].is_match() {
                NodeKind::LabeledMatch
            } else {
                NodeKind::LabeledNonMatch
            });
            confs.push(1.0);
        }
        hetero_reprs.normalize_rows();
        let spatial_seed = rng.next_u64();
        let hetero = SpatialIndex::build_normalized(
            hetero_reprs,
            kinds,
            confs,
            &SpatialParams::from((params, spatial_seed)),
        )?;

        // --- Per-side graphs over the pool (G⁺ / G⁻). ----------------------
        // Side rows are gathered from the already-normalized matrix
        // (pool positions are rows 0..n_pool of `hetero_reprs`).
        let (pos_nodes, neg_nodes) = split_by_prediction(ctx.pool_preds);
        let build_side = |positions: &[usize], kind: NodeKind, seed: u64| -> Result<Option<Side>> {
            if positions.is_empty() {
                return Ok(None);
            }
            let reprs = hetero_reprs.gather(positions)?;
            let confs: Vec<f32> = positions
                .iter()
                .map(|&p| ctx.pool_preds[p].confidence_in_label())
                .collect();
            let index = SpatialIndex::build_normalized(
                &reprs,
                &vec![kind; positions.len()],
                &confs,
                &SpatialParams::from((params, seed)),
            )?;
            Ok(Some(Side {
                index,
                to_hetero: positions.to_vec(),
                pool_positions: positions.to_vec(),
            }))
        };
        let plus = build_side(&pos_nodes, NodeKind::PredictedMatch, rng.next_u64())?;
        let minus = build_side(&neg_nodes, NodeKind::PredictedNonMatch, rng.next_u64())?;

        // --- Budgets (correspondence, §3.4). --------------------------------
        let b_pos_target = positive_budget(ctx.budget, ctx.iteration);
        let (b_pos, b_neg) =
            split_budget_with_spill(b_pos_target, ctx.budget, pos_nodes.len(), neg_nodes.len());

        // --- Selection per side (§3.5–3.6). ----------------------------------
        let mut to_label = Vec::with_capacity(ctx.budget);
        for (side, side_budget) in [(&plus, b_pos), (&minus, b_neg)] {
            let Some(side) = side else { continue };
            let picked = select_side_with(
                &side.index,
                &hetero.graph,
                &side.to_hetero,
                side_budget,
                params.alpha,
                params.beta,
                params.rho,
                params.centrality,
                rng,
            )?;
            to_label.extend(
                picked
                    .iter()
                    .map(|&local| ctx.pool[side.pool_positions[local]]),
            );
        }

        // --- Weak supervision (§3.7). -----------------------------------------
        let mut weak = Vec::new();
        if ctx.config.al.weak_supervision && ctx.config.al.weak_budget > 0 {
            let half = ctx.config.al.weak_budget / 2;
            let (w_pos, w_neg) = split_budget_with_spill(
                half,
                ctx.config.al.weak_budget,
                pos_nodes.len(),
                neg_nodes.len(),
            );
            for (side, side_budget) in [(&plus, w_pos), (&minus, w_neg)] {
                let Some(side) = side else { continue };
                let preds: Vec<_> = side
                    .pool_positions
                    .iter()
                    .map(|&p| ctx.pool_preds[p])
                    .collect();
                let pairs: Vec<_> = side.pool_positions.iter().map(|&p| ctx.pool[p]).collect();
                weak.extend(weak_side(
                    &side.index,
                    &hetero.graph,
                    &side.to_hetero,
                    &preds,
                    &pairs,
                    side_budget,
                    params.weak_method,
                    params.beta,
                    rng,
                )?);
            }
            // Pairs picked for oracle labeling get real labels; drop their
            // weak duplicates.
            let labeled: std::collections::HashSet<_> = to_label.iter().copied().collect();
            weak.retain(|(p, _)| !labeled.contains(p));
        }

        Ok(Selection { to_label, weak })
    }
}
