//! DIAL — Deep Indexed Active Learning (Jain et al. 2021), simplified to
//! the trait the paper's comparison actually exercises.
//!
//! DIAL's distinguishing feature among the baselines is
//! *index-by-committee* uncertainty: multiple matchers are trained and
//! pairs are selected by committee disagreement. (DIAL also co-learns its
//! own blocker; the paper's setting hands every method the same fixed
//! candidate set, so the blocking half does not participate in the
//! comparison — see §4.3, where DIAL is simply "tested with the published
//! implementation" on the same pools.)

use em_core::{PairIdx, Result, Rng};
use em_matcher::{Committee, CommitteeConfig, MatcherConfig};

use crate::strategies::{Selection, SelectionContext, SelectionStrategy};

/// Query-by-committee selection: train `n_members` matchers per
/// iteration and label the pairs they disagree on most.
#[derive(Debug)]
pub struct DialStrategy {
    /// Committee size (5 by default).
    pub n_members: usize,
    /// Epochs for committee members — fewer than the main matcher, since
    /// five are trained per iteration.
    pub member_epochs: usize,
}

impl Default for DialStrategy {
    fn default() -> Self {
        DialStrategy {
            n_members: 5,
            member_epochs: 15,
        }
    }
}

impl DialStrategy {
    /// Create with default committee parameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SelectionStrategy for DialStrategy {
    fn name(&self) -> String {
        "dial".into()
    }

    fn select(&mut self, ctx: &mut SelectionContext<'_>, rng: &mut Rng) -> Result<Selection> {
        if ctx.pool.is_empty() {
            return Ok(Selection::default());
        }
        let committee = Committee::train(
            ctx.features,
            ctx.train,
            ctx.train_labels,
            &[],
            &[],
            &CommitteeConfig {
                n_members: self.n_members,
                matcher: MatcherConfig {
                    epochs: self.member_epochs,
                    seed: rng.next_u64(),
                    ..ctx.config.matcher.clone()
                },
            },
        )?;
        let disagreement = committee.disagreement(ctx.features, ctx.pool)?;

        // Shuffle first so zero-disagreement ties (common early on, when
        // the committee is unanimous almost everywhere) break randomly
        // rather than by pool order.
        let mut order: Vec<usize> = (0..ctx.pool.len()).collect();
        rng.shuffle(&mut order);
        order.sort_by(|&a, &b| {
            disagreement[b]
                .partial_cmp(&disagreement[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let to_label: Vec<PairIdx> = order
            .iter()
            .take(ctx.budget)
            .map(|&p| ctx.pool[p])
            .collect();
        Ok(Selection {
            to_label,
            weak: Vec::new(),
        })
    }
}
