//! Selection strategies: the battleship approach and the active-learning
//! baselines it is compared against (§4.3).

mod battleship_strategy;
mod dal;
mod dial;
mod random;

pub use battleship_strategy::BattleshipStrategy;
pub use dal::DalStrategy;
pub use dial::DialStrategy;
pub use random::RandomStrategy;

use em_core::{Dataset, Label, PairIdx, Prediction, Result, Rng};
use em_vector::Embeddings;
use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;

/// A constructible description of a selection strategy.
///
/// The experiment engine fans grid cells out across worker threads, and
/// each worker needs its *own* strategy instance (the trait takes
/// `&mut self`). `StrategySpec` is the `Send + Serialize` value that
/// crosses thread and config boundaries; [`StrategySpec::build`] is the
/// factory workers call to get a fresh instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategySpec {
    /// The paper's spatially-aware selection (§3).
    Battleship,
    /// DAL: entropy-based uncertainty sampling (Kasai et al. 2019).
    Dal,
    /// DIAL: query-by-committee disagreement (Jain et al. 2021).
    Dial,
    /// Uniform random selection.
    Random,
}

impl StrategySpec {
    /// All four active-learning strategies, in the paper's comparison
    /// order.
    pub fn all() -> [StrategySpec; 4] {
        [
            StrategySpec::Battleship,
            StrategySpec::Dal,
            StrategySpec::Dial,
            StrategySpec::Random,
        ]
    }

    /// Display name, matching what the built strategy reports.
    pub fn name(self) -> &'static str {
        match self {
            StrategySpec::Battleship => "battleship",
            StrategySpec::Dal => "dal",
            StrategySpec::Dial => "dial",
            StrategySpec::Random => "random",
        }
    }

    /// Construct a fresh strategy instance for one run.
    pub fn build(self) -> Box<dyn SelectionStrategy + Send> {
        match self {
            StrategySpec::Battleship => Box::new(BattleshipStrategy::new()),
            StrategySpec::Dal => Box::new(DalStrategy::new()),
            StrategySpec::Dial => Box::new(DialStrategy::new()),
            StrategySpec::Random => Box::new(RandomStrategy::new()),
        }
    }
}

/// Everything a strategy may consult when choosing pairs to label.
///
/// All slices are aligned: `pool[i]` has prediction `pool_preds[i]` and
/// representation `pool_reprs.row(i)`; likewise for `train`.
pub struct SelectionContext<'a> {
    /// The dataset (strategies must not touch ground truth).
    pub dataset: &'a Dataset,
    /// Static pair features (for strategies that train auxiliary models,
    /// e.g. DIAL's committee).
    pub features: &'a Embeddings,
    /// Unlabeled pool, as global pair indices.
    pub pool: &'a [PairIdx],
    /// Labeled pairs so far, as global pair indices.
    pub train: &'a [PairIdx],
    /// Oracle labels aligned with `train`.
    pub train_labels: &'a [Label],
    /// Current model's predictions over the pool.
    pub pool_preds: &'a [Prediction],
    /// Current model's representations over the pool.
    pub pool_reprs: &'a Embeddings,
    /// Current model's representations over the train set.
    pub train_reprs: &'a Embeddings,
    /// Labeling budget for this iteration (`B`).
    pub budget: usize,
    /// Active-learning iteration index (0-based).
    pub iteration: usize,
    /// The experiment configuration.
    pub config: &'a ExperimentConfig,
}

/// A strategy's decision for one iteration.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// Pool pairs to send to the oracle (global indices, ≤ budget).
    pub to_label: Vec<PairIdx>,
    /// Weak-supervision set: pool pairs with pseudo-labels to add to the
    /// next training round without consuming oracle budget (§3.7). Empty
    /// when the strategy doesn't use weak supervision or it is disabled.
    pub weak: Vec<(PairIdx, Label)>,
}

/// An active-learning sample-selection policy.
pub trait SelectionStrategy {
    /// Display name used in reports and plots.
    fn name(&self) -> String;

    /// Choose pairs to label (and optionally weak pseudo-labels) for one
    /// iteration.
    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut Rng) -> Result<Selection>;
}

/// Split pool positions by the model's predicted side.
pub(crate) fn split_by_prediction(preds: &[Prediction]) -> (Vec<usize>, Vec<usize>) {
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for (i, p) in preds.iter().enumerate() {
        if p.label.is_match() {
            pos.push(i);
        } else {
            neg.push(i);
        }
    }
    (pos, neg)
}

/// Split a budget `b` into match/non-match halves, spilling surplus when
/// one side has too few candidates. Returns `(b_pos, b_neg)`.
pub(crate) fn split_budget_with_spill(
    b_pos_target: usize,
    b: usize,
    n_pos: usize,
    n_neg: usize,
) -> (usize, usize) {
    let b_pos = b_pos_target.min(n_pos);
    let b_neg = (b - b_pos).min(n_neg);
    // Spill unspent negative budget back to the positive side if room.
    let unspent = b - b_pos - b_neg;
    let b_pos = (b_pos + unspent).min(n_pos);
    (b_pos, b_neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_by_prediction_partitions() {
        let preds = vec![
            Prediction::from_prob(0.9),
            Prediction::from_prob(0.1),
            Prediction::from_prob(0.7),
        ];
        let (pos, neg) = split_by_prediction(&preds);
        assert_eq!(pos, vec![0, 2]);
        assert_eq!(neg, vec![1]);
    }

    #[test]
    fn spec_names_match_built_strategies() {
        for spec in StrategySpec::all() {
            assert_eq!(spec.build().name(), spec.name());
        }
    }

    #[test]
    fn budget_spill_logic() {
        // Plenty of both: exact split.
        assert_eq!(split_budget_with_spill(80, 100, 1000, 1000), (80, 20));
        // Few positives: surplus goes negative.
        assert_eq!(split_budget_with_spill(80, 100, 10, 1000), (10, 90));
        // Few negatives: surplus returns to positives.
        assert_eq!(split_budget_with_spill(80, 100, 1000, 5), (95, 5));
        // Pool smaller than budget: take everything available.
        assert_eq!(split_budget_with_spill(80, 100, 30, 40), (30, 40));
    }
}
