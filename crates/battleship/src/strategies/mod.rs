//! Selection strategies: the battleship approach and the active-learning
//! baselines it is compared against (§4.3).

mod battleship_strategy;
mod dal;
mod dial;
mod random;

pub use battleship_strategy::BattleshipStrategy;
pub use dal::DalStrategy;
pub use dial::DialStrategy;
pub use random::RandomStrategy;

use em_core::{Dataset, Label, PairIdx, Prediction, Result, Rng};
use em_graph::NodeKind;
use em_vector::Embeddings;
use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;

/// A constructible description of a selection strategy.
///
/// The experiment engine fans grid cells out across worker threads, and
/// each worker needs its *own* strategy instance (the trait takes
/// `&mut self`). `StrategySpec` is the `Send + Serialize` value that
/// crosses thread and config boundaries; [`StrategySpec::build`] is the
/// factory workers call to get a fresh instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategySpec {
    /// The paper's spatially-aware selection (§3).
    Battleship,
    /// DAL: entropy-based uncertainty sampling (Kasai et al. 2019).
    Dal,
    /// DIAL: query-by-committee disagreement (Jain et al. 2021).
    Dial,
    /// Uniform random selection.
    Random,
}

impl StrategySpec {
    /// All four active-learning strategies, in the paper's comparison
    /// order.
    pub fn all() -> [StrategySpec; 4] {
        [
            StrategySpec::Battleship,
            StrategySpec::Dal,
            StrategySpec::Dial,
            StrategySpec::Random,
        ]
    }

    /// Display name, matching what the built strategy reports.
    pub fn name(self) -> &'static str {
        match self {
            StrategySpec::Battleship => "battleship",
            StrategySpec::Dal => "dal",
            StrategySpec::Dial => "dial",
            StrategySpec::Random => "random",
        }
    }

    /// Construct a fresh strategy instance for one run.
    pub fn build(self) -> Box<dyn SelectionStrategy + Send> {
        match self {
            StrategySpec::Battleship => Box::new(BattleshipStrategy::new()),
            StrategySpec::Dal => Box::new(DalStrategy::new()),
            StrategySpec::Dial => Box::new(DialStrategy::new()),
            StrategySpec::Random => Box::new(RandomStrategy::new()),
        }
    }
}

/// Reusable per-session scratch for selection strategies.
///
/// The battleship strategy assembles a heterogeneous representation
/// matrix (pool ∪ train rows) plus aligned node-kind and confidence
/// vectors on **every** iteration; allocating them fresh each call made
/// selection's allocator traffic scale with pool size × iterations. The
/// session owns one `SelectionScratch` and threads it through the
/// [`SelectionContext`], so each iteration reuses the previous one's
/// capacity. Contents are transient — [`SelectionScratch::take`] clears
/// before lending out — so selection results are bit-identical whether
/// the scratch is fresh or dirty (pinned by a golden test), and the
/// scratch is deliberately excluded from session snapshots.
#[derive(Debug, Default)]
pub struct SelectionScratch {
    hetero_reprs: Option<Embeddings>,
    kinds: Vec<NodeKind>,
    confs: Vec<f32>,
}

impl SelectionScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        SelectionScratch::default()
    }

    /// Borrow the scratch buffers, cleared and re-dimensioned to `dim`:
    /// an empty representation matrix plus empty kind/confidence
    /// vectors, all retaining prior capacity where possible (the matrix
    /// reallocates only when `dim` changes).
    pub fn take(
        &mut self,
        dim: usize,
    ) -> Result<(&mut Embeddings, &mut Vec<NodeKind>, &mut Vec<f32>)> {
        match &mut self.hetero_reprs {
            Some(e) if e.dim() == dim => e.clear(),
            slot => *slot = Some(Embeddings::new(dim)?),
        }
        self.kinds.clear();
        self.confs.clear();
        Ok((
            self.hetero_reprs.as_mut().expect("slot filled above"),
            &mut self.kinds,
            &mut self.confs,
        ))
    }
}

/// Everything a strategy may consult when choosing pairs to label.
///
/// All slices are aligned: `pool[i]` has prediction `pool_preds[i]` and
/// representation `pool_reprs.row(i)`; likewise for `train`.
pub struct SelectionContext<'a> {
    /// The dataset (strategies must not touch ground truth).
    pub dataset: &'a Dataset,
    /// Static pair features (for strategies that train auxiliary models,
    /// e.g. DIAL's committee).
    pub features: &'a Embeddings,
    /// Unlabeled pool, as global pair indices.
    pub pool: &'a [PairIdx],
    /// Labeled pairs so far, as global pair indices.
    pub train: &'a [PairIdx],
    /// Oracle labels aligned with `train`.
    pub train_labels: &'a [Label],
    /// Current model's predictions over the pool.
    pub pool_preds: &'a [Prediction],
    /// Current model's representations over the pool.
    pub pool_reprs: &'a Embeddings,
    /// Current model's representations over the train set.
    pub train_reprs: &'a Embeddings,
    /// Labeling budget for this iteration (`B`).
    pub budget: usize,
    /// Active-learning iteration index (0-based).
    pub iteration: usize,
    /// The experiment configuration.
    pub config: &'a ExperimentConfig,
    /// Session-owned reusable scratch (cleared by the strategy before
    /// use; never carries state between iterations).
    pub scratch: &'a mut SelectionScratch,
}

/// A strategy's decision for one iteration.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// Pool pairs to send to the oracle (global indices, ≤ budget).
    pub to_label: Vec<PairIdx>,
    /// Weak-supervision set: pool pairs with pseudo-labels to add to the
    /// next training round without consuming oracle budget (§3.7). Empty
    /// when the strategy doesn't use weak supervision or it is disabled.
    pub weak: Vec<(PairIdx, Label)>,
}

/// An active-learning sample-selection policy.
pub trait SelectionStrategy {
    /// Display name used in reports and plots.
    fn name(&self) -> String;

    /// Choose pairs to label (and optionally weak pseudo-labels) for one
    /// iteration. The context is `&mut` only for its scratch buffers;
    /// selection must stay a pure function of the read-only fields.
    fn select(&mut self, ctx: &mut SelectionContext<'_>, rng: &mut Rng) -> Result<Selection>;
}

/// Split pool positions by the model's predicted side.
pub(crate) fn split_by_prediction(preds: &[Prediction]) -> (Vec<usize>, Vec<usize>) {
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for (i, p) in preds.iter().enumerate() {
        if p.label.is_match() {
            pos.push(i);
        } else {
            neg.push(i);
        }
    }
    (pos, neg)
}

/// Split a budget `b` into match/non-match halves, spilling surplus when
/// one side has too few candidates. Returns `(b_pos, b_neg)`.
pub(crate) fn split_budget_with_spill(
    b_pos_target: usize,
    b: usize,
    n_pos: usize,
    n_neg: usize,
) -> (usize, usize) {
    let b_pos = b_pos_target.min(n_pos);
    let b_neg = (b - b_pos).min(n_neg);
    // Spill unspent negative budget back to the positive side if room.
    let unspent = b - b_pos - b_neg;
    let b_pos = (b_pos + unspent).min(n_pos);
    (b_pos, b_neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_by_prediction_partitions() {
        let preds = vec![
            Prediction::from_prob(0.9),
            Prediction::from_prob(0.1),
            Prediction::from_prob(0.7),
        ];
        let (pos, neg) = split_by_prediction(&preds);
        assert_eq!(pos, vec![0, 2]);
        assert_eq!(neg, vec![1]);
    }

    #[test]
    fn spec_names_match_built_strategies() {
        for spec in StrategySpec::all() {
            assert_eq!(spec.build().name(), spec.name());
        }
    }

    /// Golden (scratch satellite): battleship selection is bit-identical
    /// whether the session scratch is brand-new, already used at the
    /// same dimension, or left over from a different dimension — the
    /// scratch is storage reuse only, never state.
    #[test]
    fn battleship_selection_is_identical_with_fresh_or_dirty_scratch() {
        use crate::engine::Scenario;
        use em_synth::DatasetProfile;

        let art = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 7)
            .materialize()
            .unwrap();
        let split_train = art.dataset.split().train.clone();
        let (train, pool) = split_train.split_at(20);
        let train_labels = art.dataset.ground_truth_of(train);
        // Deterministic synthetic "model outputs" over pool and train.
        let dim = 16usize;
        let reprs = |idxs: &[PairIdx]| {
            let mut e = Embeddings::new(dim).unwrap();
            for (k, &i) in idxs.iter().enumerate() {
                let row: Vec<f32> = (0..dim)
                    .map(|d| ((i * 31 + k * 17 + d * 7) % 97) as f32 / 97.0 - 0.5)
                    .collect();
                e.push(&row).unwrap();
            }
            e
        };
        let pool_reprs = reprs(pool);
        let train_reprs = reprs(train);
        let pool_preds: Vec<Prediction> = pool
            .iter()
            .map(|&i| Prediction::from_prob(((i * 37) % 100) as f32 / 100.0))
            .collect();
        let mut config = ExperimentConfig::default();
        config.battleship.kselect_sample = 128;

        let run = |scratch: &mut SelectionScratch| {
            let mut strategy = BattleshipStrategy::new();
            let mut rng = Rng::seed_from_u64(0xD1CE);
            let mut ctx = SelectionContext {
                dataset: &art.dataset,
                features: &art.features,
                pool,
                train,
                train_labels: &train_labels,
                pool_preds: &pool_preds,
                pool_reprs: &pool_reprs,
                train_reprs: &train_reprs,
                budget: 10,
                iteration: 0,
                config: &config,
                scratch,
            };
            strategy.select(&mut ctx, &mut rng).unwrap()
        };

        let fresh = run(&mut SelectionScratch::new());
        assert_eq!(fresh.to_label.len(), 10);
        // Same-dimension reuse: select once to fill the buffers, then
        // select again from the dirty scratch.
        let mut reused = SelectionScratch::new();
        let _ = run(&mut reused);
        let same_dim = run(&mut reused);
        // Cross-dimension reuse: the matrix was last used at another dim.
        let mut cross = SelectionScratch::new();
        let _ = cross.take(dim + 7).unwrap();
        let other_dim = run(&mut cross);
        for dirty in [&same_dim, &other_dim] {
            assert_eq!(fresh.to_label, dirty.to_label);
            assert_eq!(fresh.weak, dirty.weak);
        }
    }

    #[test]
    fn budget_spill_logic() {
        // Plenty of both: exact split.
        assert_eq!(split_budget_with_spill(80, 100, 1000, 1000), (80, 20));
        // Few positives: surplus goes negative.
        assert_eq!(split_budget_with_spill(80, 100, 10, 1000), (10, 90));
        // Few negatives: surplus returns to positives.
        assert_eq!(split_budget_with_spill(80, 100, 1000, 5), (95, 5));
        // Pool smaller than budget: take everything available.
        assert_eq!(split_budget_with_spill(80, 100, 30, 40), (30, 40));
    }
}
