//! The naïve baseline: uniform random selection from the pool,
//! "considering neither the predictions of the model nor the benefits of
//! pair representations" (§4.3).

use em_core::{PairIdx, Result, Rng};

use crate::strategies::{Selection, SelectionContext, SelectionStrategy};

/// Uniform random sampling without replacement.
#[derive(Debug, Default)]
pub struct RandomStrategy;

impl RandomStrategy {
    /// Create the strategy.
    pub fn new() -> Self {
        RandomStrategy
    }
}

impl SelectionStrategy for RandomStrategy {
    fn name(&self) -> String {
        "random".into()
    }

    fn select(&mut self, ctx: &mut SelectionContext<'_>, rng: &mut Rng) -> Result<Selection> {
        let picks = rng.sample_indices(ctx.pool.len(), ctx.budget);
        let to_label: Vec<PairIdx> = picks.into_iter().map(|p| ctx.pool[p]).collect();
        Ok(Selection {
            to_label,
            weak: Vec::new(),
        })
    }
}
