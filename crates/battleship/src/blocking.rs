//! The sub-quadratic blocking tier: raw tables → candidate pairs.
//!
//! The paper assumes "the candidate pair set was already extracted using
//! existing methods" (§2.1) and names LSH as the route to cut neighbour
//! costs (§5.2). This module is that front stage. A [`BlockingSpec`]
//! picks one of three candidate generators:
//!
//! * [`BlockingSpec::Exhaustive`] — the full cross product `D1 × D2`,
//!   the bit-identical baseline at current sizes (guarded by a pair cap
//!   so nobody materializes 10¹⁰ pairs by accident);
//! * [`BlockingSpec::Token`] — `em-synth`'s inverted-index token
//!   blocker (shared non-stopword tokens);
//! * [`BlockingSpec::Lsh`] — banded SimHash. Each record's text is
//!   feature-hashed into a dense vector, and each of `n_bands` bands
//!   draws its own hyperplanes and computes a `band_bits`-wide bit
//!   signature per record via signed random-hyperplane projections
//!   ([`em_vector::lsh`], parallel and rayon-chunked over the
//!   [`em_vector::kernel`] dot path). Records sharing any band bucket
//!   become raw candidates, and an exact cosine re-rank keeps the best
//!   `max_per_record` partners per left record.
//!
//! All three produce the same shape of output: a duplicate-free pair
//! list sorted left-major ascending, so downstream consumers
//! (labelling, featurization, dataset assembly) never depend on which
//! tier ran. Every generator is deterministic in its config and —
//! because the parallel fan-outs are order-preserving maps of pure
//! closures — bit-identical for any worker-thread count.

use std::collections::HashMap;

use rayon::prelude::*;

use em_core::{CandidatePair, EmError, RecordId, Result, Rng, Table, TokenSet};
use em_synth::{block_candidates, BlockingConfig};
use em_vector::{lsh, Embeddings};

/// Hard cap on materialized exhaustive pairs (2²⁴ ≈ 1.7·10⁷): enough
/// for every legacy scenario and the co-computable recall anchor, small
/// enough that asking for a 10⁵-record cross product is an error, not
/// an OOM.
pub const MAX_EXHAUSTIVE_PAIRS: u128 = 1 << 24;

/// How a scenario turns raw tables into candidate pairs.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum BlockingSpec {
    /// Every `(left, right)` pair — the quadratic baseline.
    #[default]
    Exhaustive,
    /// Token blocking over an inverted index.
    Token(BlockingConfig),
    /// Banded random-hyperplane SimHash with exact re-ranking.
    Lsh(LshBlocking),
}

impl BlockingSpec {
    /// Scenario-name tag for non-default specs, so blocked variants of
    /// one dataset occupy distinct artifact-cache slots. `None` for
    /// exhaustive: the default spec must not rename anything.
    pub fn tag(&self) -> Option<String> {
        match self {
            BlockingSpec::Exhaustive => None,
            BlockingSpec::Token(_) => Some("token".into()),
            BlockingSpec::Lsh(l) => Some(format!("lsh{}x{}", l.band_bits, l.n_bands)),
        }
    }

    /// Validate the spec's parameters.
    pub fn validate(&self) -> Result<()> {
        match self {
            BlockingSpec::Exhaustive => Ok(()),
            // Token parameters are validated by `block_candidates`.
            BlockingSpec::Token(_) => Ok(()),
            BlockingSpec::Lsh(l) => l.validate(),
        }
    }
}

/// Parameters of the banded-LSH generator.
///
/// The classic banding trade-off: two records become raw candidates if
/// *any* band's `band_bits`-bit signature matches exactly, so collision
/// probability per matched pair is `1 − (1 − p^band_bits)^n_bands` for
/// per-bit agreement `p = 1 − θ/π`. Narrow bands raise recall, wide
/// bands raise precision; the defaults (8 bits × 32 bands, over
/// word + char-trigram features) measure ≥ 0.98 recall on the synthetic
/// pools while touching ~n/2⁸ of the right table per band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshBlocking {
    /// Signature width per band in hyperplane bits (1..=64 — each band
    /// key is one `u64`).
    pub band_bits: usize,
    /// Number of independent bands (each gets its own hyperplanes).
    pub n_bands: usize,
    /// Dimension of the hashed feature space records are projected from.
    pub feature_dim: usize,
    /// Candidates kept per left record after the exact cosine re-rank.
    pub max_per_record: usize,
    /// Band buckets larger than this are skipped when probing — the
    /// signature-space analogue of stopword removal. A degenerate
    /// bucket holding half the right table would otherwise drag the
    /// tier back to quadratic.
    pub max_bucket: usize,
    /// Seed for hyperplane sampling.
    pub seed: u64,
}

impl Default for LshBlocking {
    fn default() -> Self {
        LshBlocking {
            band_bits: 8,
            n_bands: 32,
            feature_dim: 256,
            max_per_record: 32,
            max_bucket: 1024,
            seed: 0xB10C,
        }
    }
}

impl LshBlocking {
    /// Validate band/bit geometry and sizes.
    pub fn validate(&self) -> Result<()> {
        if self.band_bits == 0 || self.band_bits > lsh::MAX_SIGNATURE_BITS {
            return Err(EmError::InvalidConfig(format!(
                "LSH blocking band_bits must be in 1..={}, got {}",
                lsh::MAX_SIGNATURE_BITS,
                self.band_bits
            )));
        }
        if self.n_bands == 0 {
            return Err(EmError::InvalidConfig(
                "LSH blocking needs >= 1 band".into(),
            ));
        }
        if self.feature_dim == 0 || self.max_per_record == 0 || self.max_bucket == 0 {
            return Err(EmError::InvalidConfig(
                "feature_dim, max_per_record and max_bucket must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Size accounting for one blocking run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingStats {
    /// Left-table size.
    pub n_left: usize,
    /// Right-table size.
    pub n_right: usize,
    /// Candidate pairs emitted.
    pub n_candidates: usize,
    /// `|D1|·|D2|` — what exhaustive would have produced.
    pub exhaustive_pairs: u128,
    /// `1 − candidates/exhaustive`: the fraction of the cross product
    /// the tier never touched (1.0 is perfect pruning, 0.0 is no
    /// pruning).
    pub reduction_ratio: f64,
}

impl BlockingStats {
    fn new(n_left: usize, n_right: usize, n_candidates: usize) -> Self {
        let exhaustive_pairs = (n_left as u128) * (n_right as u128);
        let reduction_ratio = if exhaustive_pairs == 0 {
            0.0
        } else {
            1.0 - (n_candidates as f64) / (exhaustive_pairs as f64)
        };
        BlockingStats {
            n_left,
            n_right,
            n_candidates,
            exhaustive_pairs,
            reduction_ratio,
        }
    }
}

/// A blocking run's result: the sorted, duplicate-free pair list plus
/// its size accounting.
#[derive(Debug, Clone)]
pub struct BlockingOutput {
    /// Candidate pairs, left-major ascending, duplicate-free.
    pub candidates: Vec<CandidatePair>,
    /// Size accounting.
    pub stats: BlockingStats,
}

/// Run a blocking spec over two raw tables.
pub fn block_tables(left: &Table, right: &Table, spec: &BlockingSpec) -> Result<BlockingOutput> {
    spec.validate()?;
    let candidates = match spec {
        BlockingSpec::Exhaustive => exhaustive_pairs(left, right)?,
        BlockingSpec::Token(config) => {
            let mut pairs = block_candidates(left, right, *config)?;
            // The token blocker emits per-left in overlap order; normalize
            // to the tier's left-major contract.
            pairs.sort_unstable();
            pairs.dedup();
            pairs
        }
        BlockingSpec::Lsh(config) => lsh_block(left, right, config)?,
    };
    let stats = BlockingStats::new(left.len(), right.len(), candidates.len());
    Ok(BlockingOutput { candidates, stats })
}

/// The full cross product, left-major — refuses to materialize more
/// than [`MAX_EXHAUSTIVE_PAIRS`].
fn exhaustive_pairs(left: &Table, right: &Table) -> Result<Vec<CandidatePair>> {
    let total = (left.len() as u128) * (right.len() as u128);
    if total > MAX_EXHAUSTIVE_PAIRS {
        return Err(EmError::InvalidConfig(format!(
            "exhaustive blocking would materialize {total} pairs (cap {MAX_EXHAUSTIVE_PAIRS}); \
             use a Token or Lsh BlockingSpec at this scale"
        )));
    }
    let mut out = Vec::with_capacity(total as usize);
    for l in 0..left.len() as u32 {
        for r in 0..right.len() as u32 {
            out.push(CandidatePair::new(RecordId(l), RecordId(r)));
        }
    }
    Ok(out)
}

/// FNV-1a, the token → feature-slot hash. Stable by construction (the
/// std hasher's output is not pinned across releases, and the feature
/// layout must never shift under a toolchain bump).
#[inline]
fn fnv1a(token: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in token.as_bytes() {
        h ^= *byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Feature-hash one record's text into a dense `dim`-vector: every word
/// token and char trigram adds its count into slot `hash % dim` with
/// sign from the hash's top bit (the signed trick keeps collisions
/// unbiased), then L2-normalize so downstream dot products are cosines.
///
/// Trigrams dominate the mass and are what make perturbed views of one
/// entity land close: a typo destroys a whole word token but only ~3 of
/// its trigrams, so matched-pair cosine stays high under the noise
/// levels the generators emit.
fn hash_record(text: &str, dim: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; dim];
    let mut add = |h: u64, weight: f32| {
        let slot = (h % dim as u64) as usize;
        let sign = if h >> 63 == 0 { 1.0 } else { -1.0 };
        v[slot] += sign * weight;
    };
    let tokens = TokenSet::from_text(text);
    for (token, count) in tokens.iter() {
        add(fnv1a(token), count as f32);
    }
    for gram in em_core::char_ngrams(text, 3) {
        // Offset trigram hashes from word hashes so "cat" the word and
        // "cat" the trigram occupy independent slots.
        add(fnv1a(&gram) ^ 0x9e37_79b9_7f4a_7c15, 1.0);
    }
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

/// Feature-hash every record of a table, in parallel, row order
/// preserved.
fn hash_table(table: &Table, dim: usize) -> Result<Embeddings> {
    let rows: Vec<Vec<f32>> = (0..table.len())
        .into_par_iter()
        .map(|i| hash_record(&table.records()[i].full_text(), dim))
        .collect();
    Embeddings::from_rows(&rows)
}

/// Banded SimHash blocking: signatures → band buckets → exact re-rank.
fn lsh_block(left: &Table, right: &Table, config: &LshBlocking) -> Result<Vec<CandidatePair>> {
    if left.is_empty() || right.is_empty() {
        return Ok(Vec::new());
    }

    // 1. Per-band signatures (parallel over rows inside
    //    `lsh::signatures`); each band draws its own hyperplanes from
    //    the shared seeded stream.
    let left_vecs = hash_table(left, config.feature_dim)?;
    let right_vecs = hash_table(right, config.feature_dim)?;
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut left_sigs: Vec<Vec<u64>> = Vec::with_capacity(config.n_bands);
    let mut right_sigs: Vec<Vec<u64>> = Vec::with_capacity(config.n_bands);
    for _ in 0..config.n_bands {
        let planes = lsh::sample_planes(config.band_bits, config.feature_dim, &mut rng);
        left_sigs.push(lsh::signatures(&left_vecs, &planes, config.band_bits)?);
        right_sigs.push(lsh::signatures(&right_vecs, &planes, config.band_bits)?);
    }

    // 2. Bucket the right table per band.
    let mut bands: Vec<HashMap<u64, Vec<u32>>> = vec![HashMap::new(); config.n_bands];
    for (b, buckets) in bands.iter_mut().enumerate() {
        for (i, &sig) in right_sigs[b].iter().enumerate() {
            buckets.entry(sig).or_default().push(i as u32);
        }
    }

    // 3. Probe + re-rank, parallel over fixed chunks of left records.
    //    Per-record closures allocated three Vecs each (candidates,
    //    ranked, kept) — at 20k records that churn made the parallel
    //    tier *slower* than serial (BENCH_blocking.json recorded
    //    0.909×). Chunking amortises the scratch buffers across
    //    `PROBE_CHUNK` records and emits one output Vec per chunk.
    //    Chunks are contiguous `li` ranges processed in order-preserving
    //    parallel, so the flattened pair list is bit-identical to the
    //    per-record version for any thread count.
    const PROBE_CHUNK: usize = 1024;
    let n_chunks = left.len().div_ceil(PROBE_CHUNK);
    let per_chunk: Vec<Vec<CandidatePair>> = (0..n_chunks)
        .into_par_iter()
        .map(|ci| {
            let lo = ci * PROBE_CHUNK;
            let hi = (lo + PROBE_CHUNK).min(left.len());
            let mut out: Vec<CandidatePair> = Vec::new();
            let mut cands: Vec<u32> = Vec::new();
            let mut ranked: Vec<(f32, u32)> = Vec::new();
            // `li` indexes every per-band signature column plus the
            // vector table, so a range loop beats zipping four iterators.
            #[allow(clippy::needless_range_loop)]
            for li in lo..hi {
                cands.clear();
                for (b, buckets) in bands.iter().enumerate() {
                    let key = left_sigs[b][li];
                    if let Some(bucket) = buckets.get(&key) {
                        // Stop-bucket guard: a band value shared by a huge
                        // slice of the right table carries no signal.
                        if bucket.len() <= config.max_bucket {
                            cands.extend_from_slice(bucket);
                        }
                    }
                }
                cands.sort_unstable();
                cands.dedup();
                // Exact cosine re-rank (rows are L2-normalized, so dot =
                // cosine), keep the best `max_per_record`.
                let lv = left_vecs.row(li);
                ranked.clear();
                ranked.extend(
                    cands
                        .iter()
                        .map(|&ri| (em_vector::dot(lv, right_vecs.row(ri as usize)), ri)),
                );
                ranked.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.1.cmp(&b.1))
                });
                ranked.truncate(config.max_per_record);
                // Emit ascending right id so the flattened list is sorted.
                ranked.sort_unstable_by_key(|&(_, ri)| ri);
                out.extend(
                    ranked
                        .iter()
                        .map(|&(_, ri)| CandidatePair::new(RecordId(li as u32), RecordId(ri))),
                );
            }
            out
        })
        .collect();

    Ok(per_chunk.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::Schema;
    use em_synth::{generate_pool, PoolProfile};

    fn small_pool(n: usize, seed: u64) -> em_synth::RecordPool {
        let profile = PoolProfile::products(format!("blk-{n}-{seed}"), n);
        generate_pool(&profile, &mut Rng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn spec_tags_and_default() {
        assert_eq!(BlockingSpec::default(), BlockingSpec::Exhaustive);
        assert_eq!(BlockingSpec::Exhaustive.tag(), None);
        assert_eq!(
            BlockingSpec::Token(BlockingConfig::default())
                .tag()
                .unwrap(),
            "token"
        );
        assert_eq!(
            BlockingSpec::Lsh(LshBlocking::default()).tag().unwrap(),
            "lsh8x32"
        );
    }

    #[test]
    fn lsh_config_validation() {
        assert!(LshBlocking::default().validate().is_ok());
        for bad in [
            LshBlocking {
                band_bits: 0,
                ..Default::default()
            },
            LshBlocking {
                band_bits: 65,
                ..Default::default()
            },
            LshBlocking {
                n_bands: 0,
                ..Default::default()
            },
            LshBlocking {
                feature_dim: 0,
                ..Default::default()
            },
            LshBlocking {
                max_per_record: 0,
                ..Default::default()
            },
            LshBlocking {
                max_bucket: 0,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn exhaustive_is_the_sorted_cross_product() {
        let schema = Schema::new(["t"]).unwrap();
        let mut l = Table::new("l", schema.clone());
        let mut r = Table::new("r", schema);
        for i in 0..3 {
            l.push([format!("left {i}")]).unwrap();
        }
        for i in 0..2 {
            r.push([format!("right {i}")]).unwrap();
        }
        let out = block_tables(&l, &r, &BlockingSpec::Exhaustive).unwrap();
        assert_eq!(out.candidates.len(), 6);
        assert!(out.candidates.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(out.stats.exhaustive_pairs, 6);
        assert_eq!(out.stats.reduction_ratio, 0.0);
    }

    #[test]
    fn exhaustive_refuses_to_materialize_huge_matrices() {
        // Two fake "tables" big enough to blow the cap — use the stats
        // path without pushing records by checking the guard directly.
        let pool = small_pool(600, 3);
        let total = pool.exhaustive_pairs();
        assert!(total < MAX_EXHAUSTIVE_PAIRS, "test pool should be small");
        // The guard itself: a pool whose cross product exceeds the cap.
        // 5k × 5k = 2.5e7 > 2^24.
        let big = small_pool(10_000, 4);
        assert!(big.exhaustive_pairs() > MAX_EXHAUSTIVE_PAIRS);
        assert!(block_tables(&big.left, &big.right, &BlockingSpec::Exhaustive).is_err());
    }

    #[test]
    fn lsh_candidates_are_sorted_unique_and_subquadratic() {
        let pool = small_pool(2000, 7);
        let out = block_tables(
            &pool.left,
            &pool.right,
            &BlockingSpec::Lsh(LshBlocking::default()),
        )
        .unwrap();
        assert!(!out.candidates.is_empty());
        assert!(
            out.candidates.windows(2).all(|w| w[0] < w[1]),
            "candidates must be strictly increasing (sorted + dup-free)"
        );
        assert!(
            out.stats.reduction_ratio > 0.9,
            "reduction {}",
            out.stats.reduction_ratio
        );
        // Every id must be in range.
        let last = out.candidates.last().unwrap();
        assert!((last.left.0 as usize) < pool.left.len());
        for p in &out.candidates {
            assert!((p.right.0 as usize) < pool.right.len());
        }
    }

    #[test]
    fn lsh_recall_beats_gate_on_synthetic_pool() {
        let pool = small_pool(2000, 11);
        let out = block_tables(
            &pool.left,
            &pool.right,
            &BlockingSpec::Lsh(LshBlocking::default()),
        )
        .unwrap();
        let recall = em_synth::blocking_recall(&out.candidates, &pool.true_matches);
        assert!(recall >= 0.95, "LSH blocking recall {recall}");
    }

    #[test]
    fn token_candidates_are_sorted_unique() {
        let pool = small_pool(1200, 13);
        let out = block_tables(
            &pool.left,
            &pool.right,
            &BlockingSpec::Token(BlockingConfig::default()),
        )
        .unwrap();
        assert!(!out.candidates.is_empty());
        assert!(out.candidates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn lsh_is_deterministic_and_thread_count_invariant() {
        let pool = small_pool(800, 17);
        let spec = BlockingSpec::Lsh(LshBlocking::default());
        let a = block_tables(&pool.left, &pool.right, &spec).unwrap();
        let b = block_tables(&pool.left, &pool.right, &spec).unwrap();
        let serial = rayon::serial_scope(|| block_tables(&pool.left, &pool.right, &spec).unwrap());
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.candidates, serial.candidates);
    }

    #[test]
    fn stop_buckets_are_skipped() {
        // All-identical records collapse into one bucket per band; with
        // max_bucket below the table size the tier must emit nothing
        // rather than the cross product.
        let schema = Schema::new(["t"]).unwrap();
        let mut l = Table::new("l", schema.clone());
        let mut r = Table::new("r", schema);
        for _ in 0..50 {
            l.push(["same exact text"]).unwrap();
            r.push(["same exact text"]).unwrap();
        }
        let spec = BlockingSpec::Lsh(LshBlocking {
            max_bucket: 10,
            ..Default::default()
        });
        let out = block_tables(&l, &r, &spec).unwrap();
        assert!(out.candidates.is_empty());
    }

    #[test]
    fn empty_tables_yield_empty_output() {
        let schema = Schema::new(["t"]).unwrap();
        let empty = Table::new("e", schema.clone());
        let mut one = Table::new("o", schema);
        one.push(["alpha beta"]).unwrap();
        for spec in [
            BlockingSpec::Exhaustive,
            BlockingSpec::Token(BlockingConfig::default()),
            BlockingSpec::Lsh(LshBlocking::default()),
        ] {
            let out = block_tables(&empty, &one, &spec).unwrap();
            assert!(out.candidates.is_empty(), "{spec:?}");
        }
    }

    #[test]
    fn feature_hashing_is_stable() {
        // FNV-1a is pinned so the feature layout never shifts under a
        // toolchain bump; these are the published test vectors.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x8594_4171_f739_67e8);
        let v = hash_record("alpha beta alpha", 8);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        assert_eq!(v, hash_record("alpha beta alpha", 8));
    }
}
