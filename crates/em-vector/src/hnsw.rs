//! Hierarchical Navigable Small World (HNSW) approximate nearest
//! neighbour index.
//!
//! Malkov & Yashunin's HNSW is the second approximate-search technique the
//! paper names (§5.2) for cutting the K-Means/k-NN cost that dominates the
//! battleship runtime. This is a from-scratch implementation specialised
//! to cosine similarity (vectors are stored L2-normalized so similarity is
//! a dot product):
//!
//! * nodes get a geometric random level (`p = 1/e` per extra layer),
//! * insertion descends greedily through upper layers and runs a beam
//!   search of width `ef_construction` on each layer at or below the
//!   node's level,
//! * neighbour lists are truncated to `m` (2·`m` at layer 0) by keeping
//!   the closest candidates,
//! * search descends greedily and finishes with a beam of width `ef`.

use std::collections::HashSet;

use em_core::{EmError, Result, Rng};

use crate::embeddings::{dot, normalize, Embeddings};
use crate::knn::Neighbor;

/// HNSW construction/search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswConfig {
    /// Max neighbours per node on layers ≥ 1 (layer 0 keeps `2m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search (raise for recall, lower for speed).
    pub ef_search: usize,
    /// RNG seed for level assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 0x45_57,
        }
    }
}

impl HnswConfig {
    fn validate(&self) -> Result<()> {
        if self.m < 2 {
            return Err(EmError::InvalidConfig("HNSW m must be >= 2".into()));
        }
        if self.ef_construction < self.m {
            return Err(EmError::InvalidConfig(
                "HNSW ef_construction must be >= m".into(),
            ));
        }
        if self.ef_search == 0 {
            return Err(EmError::InvalidConfig("HNSW ef_search must be > 0".into()));
        }
        Ok(())
    }
}

/// One inserted element: its vector lives in `vectors`, its adjacency in
/// `links[layer]`.
struct Node {
    /// Per-layer neighbour lists, `links[l]` valid for `l <= level`.
    links: Vec<Vec<usize>>,
}

/// The HNSW index. Owns normalized copies of the inserted vectors.
pub struct Hnsw {
    config: HnswConfig,
    dim: usize,
    vectors: Vec<f32>,
    nodes: Vec<Node>,
    entry: Option<usize>,
    max_level: usize,
    rng: Rng,
}

impl Hnsw {
    /// Create an empty index for `dim`-dimensional vectors.
    pub fn new(dim: usize, config: HnswConfig) -> Result<Self> {
        config.validate()?;
        if dim == 0 {
            return Err(EmError::InvalidConfig("HNSW dim must be > 0".into()));
        }
        Ok(Hnsw {
            rng: Rng::seed_from_u64(config.seed),
            config,
            dim,
            vectors: Vec::new(),
            nodes: Vec::new(),
            entry: None,
            max_level: 0,
        })
    }

    /// Build an index over all rows of `data` (insertion order = row
    /// order).
    pub fn build(data: &Embeddings, config: HnswConfig) -> Result<Self> {
        let mut index = Hnsw::new(data.dim(), config)?;
        for i in 0..data.len() {
            index.insert(data.row(i))?;
        }
        Ok(index)
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn vector(&self, i: usize) -> &[f32] {
        &self.vectors[i * self.dim..(i + 1) * self.dim]
    }

    fn similarity(&self, i: usize, q: &[f32]) -> f32 {
        dot(self.vector(i), q)
    }

    /// Geometric level draw with `p = 1/e`, the standard `mL = 1/ln M`
    /// choice collapsed to its canonical form.
    fn draw_level(&mut self) -> usize {
        let mut level = 0usize;
        while self.rng.f64() < (1.0 / std::f64::consts::E) && level < 24 {
            level += 1;
        }
        level
    }

    /// Greedy hill-climb toward `q` within `layer`, starting at `start`.
    fn greedy_closest(&self, q: &[f32], start: usize, layer: usize) -> usize {
        let mut current = start;
        let mut current_sim = self.similarity(current, q);
        loop {
            let mut improved = false;
            for &nb in &self.nodes[current].links[layer] {
                let s = self.similarity(nb, q);
                if s > current_sim {
                    current = nb;
                    current_sim = s;
                    improved = true;
                }
            }
            if !improved {
                return current;
            }
        }
    }

    /// Beam search on `layer`: returns up to `ef` candidates sorted by
    /// descending similarity.
    fn search_layer(&self, q: &[f32], entry: usize, ef: usize, layer: usize) -> Vec<Neighbor> {
        let mut visited: HashSet<usize> = HashSet::new();
        visited.insert(entry);
        // `results` kept sorted descending by similarity.
        let mut results = vec![Neighbor {
            index: entry,
            similarity: self.similarity(entry, q),
        }];
        // Frontier of candidates to expand, sorted descending: simple
        // vector with pop-from-front keeps the code clear; ef is small.
        let mut frontier = results.clone();
        while let Some(cand) = frontier.pop() {
            let worst = results.last().map(|n| n.similarity).unwrap_or(f32::MIN);
            if results.len() >= ef && cand.similarity < worst {
                break;
            }
            for &nb in &self.nodes[cand.index].links[layer] {
                if !visited.insert(nb) {
                    continue;
                }
                let s = self.similarity(nb, q);
                let worst = results.last().map(|n| n.similarity).unwrap_or(f32::MIN);
                if results.len() < ef || s > worst {
                    let hit = Neighbor {
                        index: nb,
                        similarity: s,
                    };
                    let pos = results
                        .iter()
                        .position(|r| s > r.similarity)
                        .unwrap_or(results.len());
                    results.insert(pos, hit);
                    if results.len() > ef {
                        results.pop();
                    }
                    // Insert into frontier keeping *ascending* order so
                    // `pop()` yields the best candidate.
                    let fpos = frontier
                        .iter()
                        .position(|r| s < r.similarity)
                        .unwrap_or(frontier.len());
                    frontier.insert(fpos, hit);
                }
            }
        }
        results
    }

    /// Insert one vector; returns its index.
    pub fn insert(&mut self, v: &[f32]) -> Result<usize> {
        if v.len() != self.dim {
            return Err(EmError::DimensionMismatch {
                context: "HNSW insert".into(),
                expected: self.dim,
                actual: v.len(),
            });
        }
        let mut vn = v.to_vec();
        normalize(&mut vn);

        let id = self.nodes.len();
        let level = self.draw_level();
        self.vectors.extend_from_slice(&vn);
        self.nodes.push(Node {
            links: vec![Vec::new(); level + 1],
        });

        let Some(mut entry) = self.entry else {
            self.entry = Some(id);
            self.max_level = level;
            return Ok(id);
        };

        // Descend from the top to level+1 greedily.
        for layer in (level + 1..=self.max_level).rev() {
            entry = self.greedy_closest(&vn, entry, layer);
        }

        // Connect on each layer from min(level, max_level) down to 0.
        for layer in (0..=level.min(self.max_level)).rev() {
            let candidates = self.search_layer(&vn, entry, self.config.ef_construction, layer);
            let cap = if layer == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            let chosen: Vec<usize> = candidates.iter().take(cap).map(|n| n.index).collect();
            for &nb in &chosen {
                self.nodes[id].links[layer].push(nb);
                self.nodes[nb].links[layer].push(id);
                // Prune the neighbour's list if it overflowed.
                if self.nodes[nb].links[layer].len() > cap {
                    let nbv = self.vector(nb).to_vec();
                    let mut scored: Vec<Neighbor> = self.nodes[nb].links[layer]
                        .iter()
                        .map(|&x| Neighbor {
                            index: x,
                            similarity: self.similarity(x, &nbv),
                        })
                        .collect();
                    scored.sort_by(|a, b| {
                        b.similarity
                            .partial_cmp(&a.similarity)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    self.nodes[nb].links[layer] =
                        scored.into_iter().take(cap).map(|n| n.index).collect();
                }
            }
            if let Some(best) = candidates.first() {
                entry = best.index;
            }
        }

        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(id);
        }
        Ok(id)
    }

    /// Approximate top-`k` most-cosine-similar indexed vectors to `query`.
    pub fn search(&self, query: &[f32], k: usize, exclude: Option<usize>) -> Result<Vec<Neighbor>> {
        if query.len() != self.dim {
            return Err(EmError::DimensionMismatch {
                context: "HNSW search".into(),
                expected: self.dim,
                actual: query.len(),
            });
        }
        let Some(mut entry) = self.entry else {
            return Ok(Vec::new());
        };
        let mut q = query.to_vec();
        normalize(&mut q);
        for layer in (1..=self.max_level).rev() {
            entry = self.greedy_closest(&q, entry, layer);
        }
        let ef = self.config.ef_search.max(k);
        let mut hits = self.search_layer(&q, entry, ef, 0);
        hits.retain(|n| exclude != Some(n.index));
        hits.truncate(k);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::top_k;

    fn gaussian_blobs(n_per: usize, n_blobs: usize, dim: usize) -> Embeddings {
        let mut rng = Rng::seed_from_u64(4242);
        let centers: Vec<Vec<f32>> = (0..n_blobs)
            .map(|_| (0..dim).map(|_| rng.normal() as f32 * 3.0).collect())
            .collect();
        let mut rows = Vec::new();
        for c in &centers {
            for _ in 0..n_per {
                rows.push(c.iter().map(|&x| x + rng.normal() as f32 * 0.2).collect());
            }
        }
        Embeddings::from_rows(&rows).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(Hnsw::new(
            4,
            HnswConfig {
                m: 1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(Hnsw::new(
            4,
            HnswConfig {
                ef_construction: 2,
                m: 8,
                ..Default::default()
            }
        )
        .is_err());
        assert!(Hnsw::new(0, HnswConfig::default()).is_err());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = Hnsw::new(3, HnswConfig::default()).unwrap();
        assert!(idx.search(&[1.0, 0.0, 0.0], 5, None).unwrap().is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn insert_dim_mismatch() {
        let mut idx = Hnsw::new(3, HnswConfig::default()).unwrap();
        assert!(idx.insert(&[1.0]).is_err());
    }

    #[test]
    fn single_point_found() {
        let mut idx = Hnsw::new(2, HnswConfig::default()).unwrap();
        idx.insert(&[1.0, 0.0]).unwrap();
        let hits = idx.search(&[1.0, 0.1], 1, None).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].index, 0);
    }

    #[test]
    fn recall_against_exact_search() {
        let data = gaussian_blobs(40, 5, 16);
        let idx = Hnsw::build(&data, HnswConfig::default()).unwrap();
        assert_eq!(idx.len(), 200);

        // Normalized copy for ground truth (HNSW stores normalized
        // vectors; cosine is normalization-invariant anyway).
        let mut total_hits = 0;
        let mut total = 0;
        for q in (0..200).step_by(17) {
            let exact: Vec<usize> = top_k(&data, data.row(q), 10, Some(q))
                .into_iter()
                .map(|n| n.index)
                .collect();
            let approx: Vec<usize> = idx
                .search(data.row(q), 10, Some(q))
                .unwrap()
                .into_iter()
                .map(|n| n.index)
                .collect();
            total_hits += approx.iter().filter(|i| exact.contains(i)).count();
            total += 10;
        }
        let recall = total_hits as f64 / total as f64;
        assert!(recall >= 0.9, "HNSW recall@10 = {recall}");
    }

    #[test]
    fn search_excludes_requested_index() {
        let data = gaussian_blobs(10, 2, 4);
        let idx = Hnsw::build(&data, HnswConfig::default()).unwrap();
        let hits = idx.search(data.row(0), 5, Some(0)).unwrap();
        assert!(hits.iter().all(|n| n.index != 0));
    }

    #[test]
    fn results_sorted_descending() {
        let data = gaussian_blobs(25, 3, 8);
        let idx = Hnsw::build(&data, HnswConfig::default()).unwrap();
        let hits = idx.search(data.row(1), 8, Some(1)).unwrap();
        for w in hits.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = gaussian_blobs(20, 2, 6);
        let a = Hnsw::build(&data, HnswConfig::default()).unwrap();
        let b = Hnsw::build(&data, HnswConfig::default()).unwrap();
        let ha: Vec<usize> = a
            .search(data.row(3), 7, Some(3))
            .unwrap()
            .iter()
            .map(|n| n.index)
            .collect();
        let hb: Vec<usize> = b
            .search(data.row(3), 7, Some(3))
            .unwrap()
            .iter()
            .map(|n| n.index)
            .collect();
        assert_eq!(ha, hb);
    }
}
