//! Hierarchical Navigable Small World (HNSW) approximate nearest
//! neighbour index.
//!
//! Malkov & Yashunin's HNSW is the second approximate-search technique the
//! paper names (§5.2) for cutting the K-Means/k-NN cost that dominates the
//! battleship runtime. This is a from-scratch implementation specialised
//! to cosine similarity (vectors are stored L2-normalized so similarity is
//! a dot product):
//!
//! * nodes get a geometric random level (`p = 1/e` per extra layer),
//! * insertion descends greedily through upper layers and runs a beam
//!   search of width `ef_construction` on each layer at or below the
//!   node's level,
//! * neighbour lists are truncated to `m` (2·`m` at layer 0) by keeping
//!   the closest candidates,
//! * search descends greedily and finishes with a beam of width `ef`.

use std::collections::BinaryHeap;

use em_core::{EmError, Result, Rng};

use crate::embeddings::{dot, normalize, Embeddings};
use crate::knn::Neighbor;

/// Frontier entry for the beam search: max-heap by similarity, index as
/// a deterministic tie-break so the expansion order is a total order.
#[derive(Clone, Copy)]
struct Cand {
    sim: f32,
    idx: usize,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.sim.to_bits() == other.sim.to_bits() && self.idx == other.idx
    }
}
impl Eq for Cand {}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sim
            .total_cmp(&other.sim)
            .then_with(|| self.idx.cmp(&other.idx))
    }
}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable search scratch: an epoch-stamped visited set, the frontier
/// heap and the normalized-query buffer.
///
/// A single query allocates nothing once the scratch is warm, which is
/// what makes per-point shortlist queries viable in hot loops — the
/// `HashSet` + two growing `Vec`s the old beam search allocated per
/// call cost more than the distance evaluations on small indexes (e.g.
/// an index over a few hundred K-Means centroids). Hold one per worker
/// thread and pass it to [`Hnsw::search_with`]; [`Hnsw::search`] keeps
/// the allocate-per-call convenience behaviour.
#[derive(Default)]
pub struct HnswScratch {
    /// `stamp[i] == epoch` ⇔ node `i` visited by the current query.
    stamp: Vec<u32>,
    epoch: u32,
    frontier: BinaryHeap<Cand>,
    /// Result beam: min-heap (worst on top) of the best `ef` seen.
    beam: BinaryHeap<std::cmp::Reverse<Cand>>,
    qbuf: Vec<f32>,
}

impl HnswScratch {
    /// Start a new query over an index of `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wrapped: stale stamps could alias the new epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.frontier.clear();
        self.beam.clear();
    }

    /// Mark `i` visited; `true` iff this is its first visit this query.
    fn visit(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.epoch {
            false
        } else {
            self.stamp[i] = self.epoch;
            true
        }
    }
}

/// HNSW construction/search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswConfig {
    /// Max neighbours per node on layers ≥ 1 (layer 0 keeps `2m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search (raise for recall, lower for speed).
    pub ef_search: usize,
    /// RNG seed for level assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 0x45_57,
        }
    }
}

impl HnswConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        if self.m < 2 {
            return Err(EmError::InvalidConfig("HNSW m must be >= 2".into()));
        }
        if self.ef_construction < self.m {
            return Err(EmError::InvalidConfig(
                "HNSW ef_construction must be >= m".into(),
            ));
        }
        if self.ef_search == 0 {
            return Err(EmError::InvalidConfig("HNSW ef_search must be > 0".into()));
        }
        Ok(())
    }
}

/// One inserted element: its vector lives in `vectors`, its adjacency in
/// `links[layer]`.
struct Node {
    /// Per-layer neighbour lists, `links[l]` valid for `l <= level`.
    links: Vec<Vec<usize>>,
}

/// The HNSW index. Owns normalized copies of the inserted vectors.
pub struct Hnsw {
    config: HnswConfig,
    dim: usize,
    vectors: Vec<f32>,
    nodes: Vec<Node>,
    entry: Option<usize>,
    max_level: usize,
    rng: Rng,
    /// Scratch reused across inserts (construction runs one beam search
    /// per layer per node).
    scratch: HnswScratch,
}

impl Hnsw {
    /// Create an empty index for `dim`-dimensional vectors.
    pub fn new(dim: usize, config: HnswConfig) -> Result<Self> {
        config.validate()?;
        if dim == 0 {
            return Err(EmError::InvalidConfig("HNSW dim must be > 0".into()));
        }
        Ok(Hnsw {
            rng: Rng::seed_from_u64(config.seed),
            config,
            dim,
            vectors: Vec::new(),
            nodes: Vec::new(),
            entry: None,
            max_level: 0,
            scratch: HnswScratch::default(),
        })
    }

    /// Build an index over all rows of `data` (insertion order = row
    /// order).
    pub fn build(data: &Embeddings, config: HnswConfig) -> Result<Self> {
        let mut index = Hnsw::new(data.dim(), config)?;
        for i in 0..data.len() {
            index.insert(data.row(i))?;
        }
        Ok(index)
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn vector(&self, i: usize) -> &[f32] {
        &self.vectors[i * self.dim..(i + 1) * self.dim]
    }

    fn similarity(&self, i: usize, q: &[f32]) -> f32 {
        dot(self.vector(i), q)
    }

    /// Geometric level draw with `p = 1/e`, the standard `mL = 1/ln M`
    /// choice collapsed to its canonical form.
    fn draw_level(&mut self) -> usize {
        let mut level = 0usize;
        while self.rng.f64() < (1.0 / std::f64::consts::E) && level < 24 {
            level += 1;
        }
        level
    }

    /// Greedy hill-climb toward `q` within `layer`, starting at `start`.
    fn greedy_closest(&self, q: &[f32], start: usize, layer: usize) -> usize {
        let mut current = start;
        let mut current_sim = self.similarity(current, q);
        loop {
            let mut improved = false;
            for &nb in &self.nodes[current].links[layer] {
                let s = self.similarity(nb, q);
                if s > current_sim {
                    current = nb;
                    current_sim = s;
                    improved = true;
                }
            }
            if !improved {
                return current;
            }
        }
    }

    /// Beam search on `layer`: returns up to `ef` candidates sorted by
    /// descending similarity. The visited set and both heaps live in
    /// `scratch`, so a query allocates only its result vector. The
    /// result beam is a min-heap — acceptance and eviction are
    /// `O(log ef)` instead of the `O(ef)` memmove a sorted vector pays
    /// per accepted candidate, which dominated small-index queries.
    fn search_layer(
        &self,
        q: &[f32],
        entry: usize,
        ef: usize,
        layer: usize,
        scratch: &mut HnswScratch,
    ) -> Vec<Neighbor> {
        scratch.begin(self.nodes.len());
        scratch.visit(entry);
        let e = Cand {
            sim: self.similarity(entry, q),
            idx: entry,
        };
        scratch.beam.push(std::cmp::Reverse(e));
        scratch.frontier.push(e);
        while let Some(cand) = scratch.frontier.pop() {
            let worst = scratch.beam.peek().map(|r| r.0.sim).unwrap_or(f32::MIN);
            if scratch.beam.len() >= ef && cand.sim < worst {
                break;
            }
            for &nb in &self.nodes[cand.idx].links[layer] {
                if !scratch.visit(nb) {
                    continue;
                }
                let s = self.similarity(nb, q);
                let worst = scratch.beam.peek().map(|r| r.0.sim).unwrap_or(f32::MIN);
                if scratch.beam.len() < ef || s > worst {
                    let hit = Cand { sim: s, idx: nb };
                    scratch.beam.push(std::cmp::Reverse(hit));
                    if scratch.beam.len() > ef {
                        scratch.beam.pop();
                    }
                    scratch.frontier.push(hit);
                }
            }
        }
        let mut results: Vec<Neighbor> = scratch
            .beam
            .drain()
            .map(|r| Neighbor {
                index: r.0.idx,
                similarity: r.0.sim,
            })
            .collect();
        results.sort_unstable_by(|a, b| {
            b.similarity
                .total_cmp(&a.similarity)
                .then_with(|| a.index.cmp(&b.index))
        });
        results
    }

    /// Insert one vector; returns its index.
    pub fn insert(&mut self, v: &[f32]) -> Result<usize> {
        if v.len() != self.dim {
            return Err(EmError::DimensionMismatch {
                context: "HNSW insert".into(),
                expected: self.dim,
                actual: v.len(),
            });
        }
        let mut vn = v.to_vec();
        normalize(&mut vn);

        let id = self.nodes.len();
        let level = self.draw_level();
        self.vectors.extend_from_slice(&vn);
        self.nodes.push(Node {
            links: vec![Vec::new(); level + 1],
        });

        let Some(mut entry) = self.entry else {
            self.entry = Some(id);
            self.max_level = level;
            return Ok(id);
        };

        // Descend from the top to level+1 greedily.
        for layer in (level + 1..=self.max_level).rev() {
            entry = self.greedy_closest(&vn, entry, layer);
        }

        // Connect on each layer from min(level, max_level) down to 0.
        // The scratch is moved out for the duration so the beam search
        // can borrow `self` immutably.
        let mut scratch = std::mem::take(&mut self.scratch);
        for layer in (0..=level.min(self.max_level)).rev() {
            let candidates =
                self.search_layer(&vn, entry, self.config.ef_construction, layer, &mut scratch);
            let cap = if layer == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            let chosen: Vec<usize> = candidates.iter().take(cap).map(|n| n.index).collect();
            for &nb in &chosen {
                self.nodes[id].links[layer].push(nb);
                self.nodes[nb].links[layer].push(id);
                // Prune the neighbour's list if it overflowed.
                if self.nodes[nb].links[layer].len() > cap {
                    let nbv = self.vector(nb).to_vec();
                    let mut scored: Vec<Neighbor> = self.nodes[nb].links[layer]
                        .iter()
                        .map(|&x| Neighbor {
                            index: x,
                            similarity: self.similarity(x, &nbv),
                        })
                        .collect();
                    scored.sort_by(|a, b| {
                        b.similarity
                            .partial_cmp(&a.similarity)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    self.nodes[nb].links[layer] =
                        scored.into_iter().take(cap).map(|n| n.index).collect();
                }
            }
            if let Some(best) = candidates.first() {
                entry = best.index;
            }
        }
        self.scratch = scratch;

        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(id);
        }
        Ok(id)
    }

    /// Approximate top-`k` most-cosine-similar indexed vectors to `query`.
    ///
    /// Allocates fresh scratch per call; loops issuing many queries
    /// should hold an [`HnswScratch`] and use [`Hnsw::search_with`].
    pub fn search(&self, query: &[f32], k: usize, exclude: Option<usize>) -> Result<Vec<Neighbor>> {
        let mut scratch = HnswScratch::default();
        self.search_with(query, k, exclude, &mut scratch)
    }

    /// [`Hnsw::search`] with caller-owned scratch: zero allocations per
    /// query beyond the returned hits once the scratch is warm.
    pub fn search_with(
        &self,
        query: &[f32],
        k: usize,
        exclude: Option<usize>,
        scratch: &mut HnswScratch,
    ) -> Result<Vec<Neighbor>> {
        if query.len() != self.dim {
            return Err(EmError::DimensionMismatch {
                context: "HNSW search".into(),
                expected: self.dim,
                actual: query.len(),
            });
        }
        let Some(mut entry) = self.entry else {
            return Ok(Vec::new());
        };
        let mut q = std::mem::take(&mut scratch.qbuf);
        q.clear();
        q.extend_from_slice(query);
        normalize(&mut q);
        for layer in (1..=self.max_level).rev() {
            entry = self.greedy_closest(&q, entry, layer);
        }
        let ef = self.config.ef_search.max(k);
        let mut hits = self.search_layer(&q, entry, ef, 0, scratch);
        scratch.qbuf = q;
        hits.retain(|n| exclude != Some(n.index));
        hits.truncate(k);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::top_k;

    fn gaussian_blobs(n_per: usize, n_blobs: usize, dim: usize) -> Embeddings {
        let mut rng = Rng::seed_from_u64(4242);
        let centers: Vec<Vec<f32>> = (0..n_blobs)
            .map(|_| (0..dim).map(|_| rng.normal() as f32 * 3.0).collect())
            .collect();
        let mut rows = Vec::new();
        for c in &centers {
            for _ in 0..n_per {
                rows.push(c.iter().map(|&x| x + rng.normal() as f32 * 0.2).collect());
            }
        }
        Embeddings::from_rows(&rows).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(Hnsw::new(
            4,
            HnswConfig {
                m: 1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(Hnsw::new(
            4,
            HnswConfig {
                ef_construction: 2,
                m: 8,
                ..Default::default()
            }
        )
        .is_err());
        assert!(Hnsw::new(0, HnswConfig::default()).is_err());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = Hnsw::new(3, HnswConfig::default()).unwrap();
        assert!(idx.search(&[1.0, 0.0, 0.0], 5, None).unwrap().is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn insert_dim_mismatch() {
        let mut idx = Hnsw::new(3, HnswConfig::default()).unwrap();
        assert!(idx.insert(&[1.0]).is_err());
    }

    #[test]
    fn single_point_found() {
        let mut idx = Hnsw::new(2, HnswConfig::default()).unwrap();
        idx.insert(&[1.0, 0.0]).unwrap();
        let hits = idx.search(&[1.0, 0.1], 1, None).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].index, 0);
    }

    #[test]
    fn recall_against_exact_search() {
        let data = gaussian_blobs(40, 5, 16);
        let idx = Hnsw::build(&data, HnswConfig::default()).unwrap();
        assert_eq!(idx.len(), 200);

        // Normalized copy for ground truth (HNSW stores normalized
        // vectors; cosine is normalization-invariant anyway).
        let mut total_hits = 0;
        let mut total = 0;
        for q in (0..200).step_by(17) {
            let exact: Vec<usize> = top_k(&data, data.row(q), 10, Some(q))
                .into_iter()
                .map(|n| n.index)
                .collect();
            let approx: Vec<usize> = idx
                .search(data.row(q), 10, Some(q))
                .unwrap()
                .into_iter()
                .map(|n| n.index)
                .collect();
            total_hits += approx.iter().filter(|i| exact.contains(i)).count();
            total += 10;
        }
        let recall = total_hits as f64 / total as f64;
        assert!(recall >= 0.9, "HNSW recall@10 = {recall}");
    }

    #[test]
    fn search_excludes_requested_index() {
        let data = gaussian_blobs(10, 2, 4);
        let idx = Hnsw::build(&data, HnswConfig::default()).unwrap();
        let hits = idx.search(data.row(0), 5, Some(0)).unwrap();
        assert!(hits.iter().all(|n| n.index != 0));
    }

    #[test]
    fn results_sorted_descending() {
        let data = gaussian_blobs(25, 3, 8);
        let idx = Hnsw::build(&data, HnswConfig::default()).unwrap();
        let hits = idx.search(data.row(1), 8, Some(1)).unwrap();
        for w in hits.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = gaussian_blobs(20, 2, 6);
        let a = Hnsw::build(&data, HnswConfig::default()).unwrap();
        let b = Hnsw::build(&data, HnswConfig::default()).unwrap();
        let ha: Vec<usize> = a
            .search(data.row(3), 7, Some(3))
            .unwrap()
            .iter()
            .map(|n| n.index)
            .collect();
        let hb: Vec<usize> = b
            .search(data.row(3), 7, Some(3))
            .unwrap()
            .iter()
            .map(|n| n.index)
            .collect();
        assert_eq!(ha, hb);
    }
}
