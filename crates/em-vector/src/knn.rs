//! Exact top-k nearest-neighbour search by cosine similarity.
//!
//! This is the workspace's FAISS `IndexFlatIP` stand-in (the paper runs
//! its nearest-neighbour calculations with FAISS, §4.2). Exact search is
//! affordable because the battleship algorithm only ever searches *within
//! a cluster* (§3.3.1 motivates clustering precisely as a way to bound
//! this cost), so the quadratic factor is the cluster size, not the pool
//! size.

use std::cmp::Ordering;

use crate::embeddings::Embeddings;

/// A search hit: the neighbour's index and its cosine similarity to the
/// query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the neighbour (into whatever index space the search ran
    /// over — global rows for [`top_k`], the provided subset values for
    /// [`top_k_among`]).
    pub index: usize,
    /// Cosine similarity to the query, in `[-1, 1]`.
    pub similarity: f32,
}

impl Neighbor {
    fn better_than(&self, other: &Neighbor) -> bool {
        // Deterministic total order: higher similarity wins; ties break
        // toward the smaller index so results never depend on scan order.
        match self
            .similarity
            .partial_cmp(&other.similarity)
            .unwrap_or(Ordering::Equal)
        {
            Ordering::Greater => true,
            Ordering::Less => false,
            Ordering::Equal => self.index < other.index,
        }
    }
}

/// Keep the best `k` of a stream of candidates (small `k`, linear scan).
///
/// For the `k ≈ 15` neighbourhood sizes used by graph construction, a
/// simple sorted buffer beats a `BinaryHeap` on both speed and
/// determinism. Shared with the blocked [`crate::kernel`] layer, which
/// must reproduce this exact selection.
pub(crate) struct TopBuffer {
    k: usize,
    items: Vec<Neighbor>,
}

impl TopBuffer {
    pub(crate) fn new(k: usize) -> Self {
        TopBuffer {
            k,
            items: Vec::with_capacity(k + 1),
        }
    }

    pub(crate) fn offer(&mut self, n: Neighbor) {
        if self.k == 0 {
            return;
        }
        if self.items.len() == self.k {
            // Worst item is last; skip candidates that cannot enter.
            if !n.better_than(self.items.last().expect("non-empty buffer")) {
                return;
            }
            self.items.pop();
        }
        let pos = self
            .items
            .iter()
            .position(|x| n.better_than(x))
            .unwrap_or(self.items.len());
        self.items.insert(pos, n);
    }

    pub(crate) fn into_sorted(self) -> Vec<Neighbor> {
        self.items
    }
}

/// Exact top-`k` cosine neighbours of `query` among all rows of `data`.
///
/// `exclude` (typically the query's own row) is skipped. Results are
/// sorted by descending similarity with index tiebreak.
pub fn top_k(data: &Embeddings, query: &[f32], k: usize, exclude: Option<usize>) -> Vec<Neighbor> {
    let mut buf = TopBuffer::new(k);
    for i in 0..data.len() {
        if exclude == Some(i) {
            continue;
        }
        buf.offer(Neighbor {
            index: i,
            similarity: crate::embeddings::cosine(query, data.row(i)),
        });
    }
    buf.into_sorted()
}

/// Exact top-`k` cosine neighbours of row `query_row` among the candidate
/// rows `among` (global row indices), skipping the query itself.
///
/// This is the in-cluster search used by pair-graph edge creation
/// (§3.3.2): "our algorithm allows comparisons only for samples that
/// reside in the same cluster". Returned indices are *global* row
/// indices.
pub fn top_k_among(
    data: &Embeddings,
    query_row: usize,
    among: &[usize],
    k: usize,
) -> Vec<Neighbor> {
    let q = data.row(query_row);
    let mut buf = TopBuffer::new(k);
    for &i in among {
        if i == query_row {
            continue;
        }
        buf.offer(Neighbor {
            index: i,
            similarity: crate::embeddings::cosine(q, data.row(i)),
        });
    }
    buf.into_sorted()
}

/// All pairwise cosine similarities among `among` (global row indices),
/// returned as `(position_a, position_b, similarity)` with
/// `position_a < position_b` being positions *within `among`*.
///
/// Used by the edge-creation second stage, which ranks every remaining
/// in-cluster pair by similarity (§3.3.2).
pub fn pairwise_among(data: &Embeddings, among: &[usize]) -> Vec<(usize, usize, f32)> {
    let m = among.len();
    let mut out = Vec::with_capacity(m.saturating_sub(1) * m / 2);
    for a in 0..m {
        for b in a + 1..m {
            out.push((a, b, data.cosine(among[a], among[b])));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::Rng;

    fn toy() -> Embeddings {
        Embeddings::from_rows(&[
            vec![1.0, 0.0],  // 0
            vec![0.9, 0.1],  // 1: close to 0
            vec![0.0, 1.0],  // 2: orthogonal to 0
            vec![-1.0, 0.0], // 3: opposite to 0
            vec![0.7, 0.7],  // 4: diagonal
        ])
        .unwrap()
    }

    #[test]
    fn top_k_orders_by_similarity() {
        let e = toy();
        let hits = top_k(&e, e.row(0), 3, Some(0));
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].index, 1);
        assert_eq!(hits[1].index, 4);
        assert_eq!(hits[2].index, 2);
        assert!(hits[0].similarity >= hits[1].similarity);
        assert!(hits[1].similarity >= hits[2].similarity);
    }

    #[test]
    fn top_k_zero_k_is_empty() {
        let e = toy();
        assert!(top_k(&e, e.row(0), 0, None).is_empty());
    }

    #[test]
    fn top_k_k_larger_than_data() {
        let e = toy();
        let hits = top_k(&e, e.row(0), 100, Some(0));
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn top_k_among_restricts_candidates() {
        let e = toy();
        // Only rows 2 and 3 are candidates; row 1 (globally closest) must
        // not appear.
        let hits = top_k_among(&e, 0, &[2, 3], 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].index, 2);
        assert_eq!(hits[1].index, 3);
    }

    #[test]
    fn top_k_among_skips_self() {
        let e = toy();
        let hits = top_k_among(&e, 0, &[0, 1], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].index, 1);
    }

    #[test]
    fn ties_break_by_smaller_index() {
        let e = Embeddings::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let hits = top_k(&e, e.row(0), 1, Some(0));
        assert_eq!(hits[0].index, 1);
    }

    #[test]
    fn brute_force_agrees_with_naive_sort() {
        let mut rng = Rng::seed_from_u64(1234);
        let rows: Vec<Vec<f32>> = (0..60)
            .map(|_| (0..8).map(|_| rng.normal() as f32).collect())
            .collect();
        let e = Embeddings::from_rows(&rows).unwrap();
        for q in 0..10 {
            let fast = top_k(&e, e.row(q), 7, Some(q));
            // Naive: sort all.
            let mut all: Vec<Neighbor> = (0..e.len())
                .filter(|&i| i != q)
                .map(|i| Neighbor {
                    index: i,
                    similarity: e.cosine(q, i),
                })
                .collect();
            all.sort_by(|a, b| {
                b.similarity
                    .partial_cmp(&a.similarity)
                    .unwrap()
                    .then(a.index.cmp(&b.index))
            });
            let slow: Vec<usize> = all[..7].iter().map(|n| n.index).collect();
            let fast_idx: Vec<usize> = fast.iter().map(|n| n.index).collect();
            assert_eq!(fast_idx, slow, "query {q}");
        }
    }

    #[test]
    fn pairwise_among_counts_and_symmetry() {
        let e = toy();
        let among = [0, 1, 4];
        let pw = pairwise_among(&e, &among);
        assert_eq!(pw.len(), 3);
        for &(a, b, s) in &pw {
            assert!(a < b);
            let expected = e.cosine(among[a], among[b]);
            assert!((s - expected).abs() < 1e-6);
        }
    }
}
