//! Unified exact ↔ ANN routing policy.
//!
//! PR 6's blocking bench measured the exact-vs-HNSW crossover with a
//! forced-ANN sweep (`BENCH_blocking.json`, `ann_threshold_sweep`): the
//! dense exact kernels win through cluster size 8192 (2.55 s vs 4.51 s)
//! and HNSW first wins at 16384 (17.7 s vs 12.9 s). Until this module,
//! that measurement only routed graph-edge construction, and every call
//! site carried its own `ann_threshold: usize` guess. [`AnnPolicy`] is
//! the one place the decision lives: stages ask `use_ann(n)` and share
//! the same crossover default, shortlist width and subsample cap, with
//! env-variable overrides for operators
//! (`EM_ANN_THRESHOLD` / `EM_ANN_TOP_M` / `EM_ANN_SAMPLE_CAP`).
//!
//! Consumers today: graph-edge construction (`em-graph::build`), the
//! k-selection silhouette fallback (`em-cluster::kselect`), constrained
//! assignment (`em-cluster::constrained`) and the spatial pipeline
//! (`battleship::spatial`) that plumbs the policy into all three.

use crate::hnsw::HnswConfig;
use em_core::{EmError, Result};

/// Measured exact→HNSW crossover from BENCH_blocking.json's
/// `ann_threshold_sweep`: ANN first edges out the exact kernel around
/// 8192 (within noise) and wins decisively from 16384 up, so the
/// default sits at the conservative end of the crossover band.
pub const DEFAULT_ANN_THRESHOLD: usize = 16384;

/// Default candidate-shortlist width for ANN-assisted assignment: each
/// point considers its `top_m` nearest centroids instead of all `k`.
pub const DEFAULT_ANN_TOP_M: usize = 16;

/// Default cap on the reference subsample an ANN estimator indexes
/// (e.g. the silhouette neighbor cache); per the sweep, HNSW build over
/// ≤4096 points costs well under a second.
pub const DEFAULT_ANN_SAMPLE_CAP: usize = 4096;

/// Env var overriding [`AnnPolicy::threshold`].
pub const ENV_ANN_THRESHOLD: &str = "EM_ANN_THRESHOLD";
/// Env var overriding [`AnnPolicy::top_m`].
pub const ENV_ANN_TOP_M: &str = "EM_ANN_TOP_M";
/// Env var overriding [`AnnPolicy::sample_cap`].
pub const ENV_ANN_SAMPLE_CAP: &str = "EM_ANN_SAMPLE_CAP";

/// When (and how) a stage should switch from its exact kernel to HNSW.
///
/// Stages call [`use_ann`](AnnPolicy::use_ann) with their problem size;
/// below the threshold the exact path runs (and is golden-tested
/// bit-identical to the scalar reference), above it the HNSW-backed
/// variant takes over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnPolicy {
    /// Stage sizes strictly above this route through HNSW.
    pub threshold: usize,
    /// HNSW construction/search parameters for routed stages.
    pub hnsw: HnswConfig,
    /// Shortlist width for ANN-assisted assignment (candidate clusters
    /// per point). When `top_m >= k` the shortlist covers every cluster
    /// and the ANN path reproduces the exact one bit-for-bit.
    pub top_m: usize,
    /// Cap on reference subsamples indexed by ANN estimators.
    pub sample_cap: usize,
}

impl Default for AnnPolicy {
    fn default() -> Self {
        AnnPolicy {
            threshold: DEFAULT_ANN_THRESHOLD,
            hnsw: HnswConfig::default(),
            top_m: DEFAULT_ANN_TOP_M,
            sample_cap: DEFAULT_ANN_SAMPLE_CAP,
        }
    }
}

impl AnnPolicy {
    /// Policy with a custom crossover, defaults elsewhere.
    pub fn with_threshold(threshold: usize) -> Self {
        AnnPolicy {
            threshold,
            ..AnnPolicy::default()
        }
    }

    /// Policy that never routes through ANN (exact everywhere).
    pub fn never() -> Self {
        AnnPolicy::with_threshold(usize::MAX)
    }

    /// Policy that always routes through ANN (threshold 0).
    pub fn always() -> Self {
        AnnPolicy::with_threshold(0)
    }

    /// Apply `EM_ANN_THRESHOLD` / `EM_ANN_TOP_M` / `EM_ANN_SAMPLE_CAP`
    /// env overrides on top of `self`. Unparseable values are ignored
    /// (the configured value wins) so a stray export can't break runs.
    pub fn env_overridden(mut self) -> Self {
        if let Some(t) = env_usize(ENV_ANN_THRESHOLD) {
            self.threshold = t;
        }
        if let Some(m) = env_usize(ENV_ANN_TOP_M) {
            self.top_m = m;
        }
        if let Some(s) = env_usize(ENV_ANN_SAMPLE_CAP) {
            self.sample_cap = s;
        }
        self
    }

    /// `true` iff a stage of size `n` should use the HNSW path. Strict
    /// `>` keeps the pre-policy call-site semantics (`cluster size >
    /// ann_threshold`).
    pub fn use_ann(&self, n: usize) -> bool {
        n > self.threshold
    }

    /// HNSW config with a per-stage seed (stages must not share RNG
    /// streams; mix like `policy.hnsw_seeded(seed ^ STAGE_SALT)`).
    pub fn hnsw_seeded(&self, seed: u64) -> HnswConfig {
        HnswConfig { seed, ..self.hnsw }
    }

    /// Check invariants required by the routed stages.
    pub fn validate(&self) -> Result<()> {
        if self.top_m == 0 {
            return Err(EmError::InvalidConfig("AnnPolicy top_m must be > 0".into()));
        }
        if self.sample_cap == 0 {
            return Err(EmError::InvalidConfig(
                "AnnPolicy sample_cap must be > 0".into(),
            ));
        }
        self.hnsw.validate()
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cites_measured_crossover() {
        let p = AnnPolicy::default();
        assert_eq!(p.threshold, 16384);
        // Strict >: the crossover size itself still runs exact, matching
        // the pre-policy `cluster size > ann_threshold` call sites.
        assert!(!p.use_ann(16384));
        assert!(p.use_ann(16385));
    }

    #[test]
    fn never_and_always() {
        assert!(!AnnPolicy::never().use_ann(usize::MAX - 1));
        assert!(AnnPolicy::always().use_ann(1));
        assert!(!AnnPolicy::always().use_ann(0));
    }

    #[test]
    fn env_override_wins_and_garbage_is_ignored() {
        // Serialized against other env tests by unique var names here.
        std::env::set_var(ENV_ANN_THRESHOLD, "123");
        std::env::set_var(ENV_ANN_TOP_M, "not-a-number");
        std::env::remove_var(ENV_ANN_SAMPLE_CAP);
        let p = AnnPolicy::default().env_overridden();
        assert_eq!(p.threshold, 123);
        assert_eq!(p.top_m, DEFAULT_ANN_TOP_M);
        assert_eq!(p.sample_cap, DEFAULT_ANN_SAMPLE_CAP);
        std::env::remove_var(ENV_ANN_THRESHOLD);
        std::env::remove_var(ENV_ANN_TOP_M);
    }

    #[test]
    fn validates() {
        assert!(AnnPolicy::default().validate().is_ok());
        let bad = AnnPolicy {
            top_m: 0,
            ..AnnPolicy::default()
        };
        assert!(bad.validate().is_err());
        let bad = AnnPolicy {
            sample_cap: 0,
            ..AnnPolicy::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn seeded_hnsw_config_keeps_shape() {
        let p = AnnPolicy::default();
        let c = p.hnsw_seeded(42);
        assert_eq!(c.seed, 42);
        assert_eq!(c.m, p.hnsw.m);
        assert_eq!(c.ef_search, p.hnsw.ef_search);
    }
}
