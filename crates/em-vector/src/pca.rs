//! Principal component analysis by power iteration with deflation.
//!
//! Used to initialize t-SNE (standard practice, stabilizes the embedding)
//! and available as a cheap linear baseline for latent-space inspection.
//! Power iteration is exact enough here: we only ever need the first
//! handful of components.

// Numeric kernels here walk several parallel arrays by index; the
// indexed form keeps the lockstep structure visible.
#![allow(clippy::needless_range_loop)]
use em_core::{EmError, Result, Rng};

use crate::embeddings::{dot, Embeddings};

/// A fitted PCA model: mean vector and the top principal axes.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f32>,
    /// `n_components` rows of length `dim`, orthonormal.
    components: Vec<Vec<f32>>,
    /// Variance captured by each component, descending.
    explained_variance: Vec<f32>,
}

impl Pca {
    /// Fit the top `n_components` principal axes of `data`.
    ///
    /// `data.len()` must be at least 2; `n_components` is clamped to
    /// `min(dim, n - 1)`.
    pub fn fit(data: &Embeddings, n_components: usize, seed: u64) -> Result<Self> {
        let n = data.len();
        if n < 2 {
            return Err(EmError::EmptyInput("PCA needs at least two samples".into()));
        }
        if n_components == 0 {
            return Err(EmError::InvalidConfig("PCA needs n_components >= 1".into()));
        }
        let dim = data.dim();
        let k = n_components.min(dim).min(n - 1);
        let mean = data.centroid()?;

        // Centered copy of the data.
        let mut centered: Vec<f32> = Vec::with_capacity(n * dim);
        for i in 0..n {
            for (j, &x) in data.row(i).iter().enumerate() {
                centered.push(x - mean[j]);
            }
        }
        let row = |i: usize| -> &[f32] { &centered[i * dim..(i + 1) * dim] };

        let mut rng = Rng::seed_from_u64(seed);
        let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);
        let mut explained = Vec::with_capacity(k);

        for _ in 0..k {
            // Random start, orthogonal to previously found components.
            let mut v: Vec<f32> = (0..dim).map(|_| rng.normal() as f32).collect();
            orthogonalize(&mut v, &components);
            normalize_or_reset(&mut v, &mut rng, &components);

            let mut eigenvalue = 0.0f32;
            for _iter in 0..100 {
                // w = Cov · v computed as Xᵀ(X v) / n without forming Cov.
                let mut xv = vec![0.0f32; n];
                for i in 0..n {
                    xv[i] = dot(row(i), &v);
                }
                let mut w = vec![0.0f32; dim];
                for i in 0..n {
                    let c = xv[i];
                    for (wj, &xj) in w.iter_mut().zip(row(i)) {
                        *wj += c * xj;
                    }
                }
                for wj in &mut w {
                    *wj /= n as f32;
                }
                orthogonalize(&mut w, &components);
                let norm = dot(&w, &w).sqrt();
                if norm < 1e-12 {
                    // No variance left in the orthogonal complement.
                    eigenvalue = 0.0;
                    break;
                }
                for wj in &mut w {
                    *wj /= norm;
                }
                let delta: f32 = v
                    .iter()
                    .zip(&w)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f32::max);
                v = w;
                eigenvalue = norm;
                if delta < 1e-7 {
                    break;
                }
            }
            components.push(v);
            explained.push(eigenvalue);
        }

        Ok(Pca {
            mean,
            components,
            explained_variance: explained,
        })
    }

    /// Project `data` onto the fitted components.
    pub fn transform(&self, data: &Embeddings) -> Result<Embeddings> {
        if data.dim() != self.mean.len() {
            return Err(EmError::DimensionMismatch {
                context: "PCA transform".into(),
                expected: self.mean.len(),
                actual: data.dim(),
            });
        }
        let k = self.components.len();
        let mut out = Embeddings::new(k)?;
        let mut centered = vec![0.0f32; data.dim()];
        for i in 0..data.len() {
            for (c, (&x, &m)) in centered.iter_mut().zip(data.row(i).iter().zip(&self.mean)) {
                *c = x - m;
            }
            let proj: Vec<f32> = self
                .components
                .iter()
                .map(|pc| dot(pc, &centered))
                .collect();
            out.push(&proj)?;
        }
        Ok(out)
    }

    /// The fitted principal axes (orthonormal rows).
    pub fn components(&self) -> &[Vec<f32>] {
        &self.components
    }

    /// Variance captured per component, descending.
    pub fn explained_variance(&self) -> &[f32] {
        &self.explained_variance
    }
}

/// Remove the projections of `v` onto each of `basis` (Gram–Schmidt step).
fn orthogonalize(v: &mut [f32], basis: &[Vec<f32>]) {
    for b in basis {
        let proj = dot(v, b);
        for (vi, &bi) in v.iter_mut().zip(b) {
            *vi -= proj * bi;
        }
    }
}

/// Normalize `v`, re-randomizing if it collapsed to ~zero.
fn normalize_or_reset(v: &mut [f32], rng: &mut Rng, basis: &[Vec<f32>]) {
    loop {
        let n = dot(v, v).sqrt();
        if n > 1e-9 {
            for vi in v.iter_mut() {
                *vi /= n;
            }
            return;
        }
        for vi in v.iter_mut() {
            *vi = rng.normal() as f32;
        }
        orthogonalize(v, basis);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points along the line y = 2x with small noise: PC1 should align
    /// with (1, 2)/√5.
    #[test]
    fn recovers_dominant_direction() {
        let mut rng = Rng::seed_from_u64(3);
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|_| {
                let t = rng.normal() as f32 * 5.0;
                let noise = rng.normal() as f32 * 0.05;
                vec![t + noise, 2.0 * t - noise]
            })
            .collect();
        let data = Embeddings::from_rows(&rows).unwrap();
        let pca = Pca::fit(&data, 1, 0).unwrap();
        let pc = &pca.components()[0];
        let expected = [1.0 / 5f32.sqrt(), 2.0 / 5f32.sqrt()];
        let alignment = dot(pc, &expected).abs();
        assert!(alignment > 0.999, "alignment {alignment}");
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = Rng::seed_from_u64(5);
        let rows: Vec<Vec<f32>> = (0..100)
            .map(|_| (0..6).map(|_| rng.normal() as f32).collect())
            .collect();
        let data = Embeddings::from_rows(&rows).unwrap();
        let pca = Pca::fit(&data, 3, 0).unwrap();
        let cs = pca.components();
        for i in 0..3 {
            assert!((dot(&cs[i], &cs[i]) - 1.0).abs() < 1e-4);
            for j in i + 1..3 {
                assert!(dot(&cs[i], &cs[j]).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn explained_variance_descends() {
        let mut rng = Rng::seed_from_u64(7);
        // Anisotropic data: variance 9, 1, 0.01 along axes.
        let rows: Vec<Vec<f32>> = (0..300)
            .map(|_| {
                vec![
                    rng.normal() as f32 * 3.0,
                    rng.normal() as f32,
                    rng.normal() as f32 * 0.1,
                ]
            })
            .collect();
        let data = Embeddings::from_rows(&rows).unwrap();
        let pca = Pca::fit(&data, 3, 0).unwrap();
        let ev = pca.explained_variance();
        assert!(ev[0] > ev[1] && ev[1] > ev[2], "{ev:?}");
        assert!((ev[0] / ev[1] - 9.0).abs() < 2.5, "{ev:?}");
    }

    #[test]
    fn transform_shape_and_centering() {
        let data =
            Embeddings::from_rows(&[vec![1.0, 1.0], vec![3.0, 3.0], vec![5.0, 5.0]]).unwrap();
        let pca = Pca::fit(&data, 1, 0).unwrap();
        let t = pca.transform(&data).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.dim(), 1);
        // Projections of centered collinear points: symmetric around 0.
        assert!((t.row(0)[0] + t.row(2)[0]).abs() < 1e-4);
        assert!(t.row(1)[0].abs() < 1e-4);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let one = Embeddings::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(Pca::fit(&one, 1, 0).is_err());
        let two = Embeddings::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(Pca::fit(&two, 0, 0).is_err());
    }

    #[test]
    fn transform_dim_mismatch() {
        let data = Embeddings::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let pca = Pca::fit(&data, 1, 0).unwrap();
        let other = Embeddings::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert!(pca.transform(&other).is_err());
    }
}
