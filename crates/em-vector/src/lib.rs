//! # em-vector
//!
//! Vector-space substrate for the `battleship-em` workspace.
//!
//! The battleship algorithm lives in the latent space of pair
//! representations: it measures cosine similarities, finds nearest
//! neighbours inside clusters (the paper uses FAISS for this, §4.2), and
//! visualizes the space with t-SNE (Figure 1). This crate provides all of
//! that from scratch:
//!
//! * [`Embeddings`] — a row-major matrix of `f32` vectors with the basic
//!   linear-algebra kernels (dot, norm, cosine),
//! * [`knn`] — exact top-k cosine search (the FAISS `IndexFlatIP`
//!   equivalent), including restricted search over an index subset as
//!   needed for in-cluster neighbour queries,
//! * [`kernel`] — the blocked compute kernels behind the spatial
//!   pipeline and the matcher's GEMM engine: cache-tiled Gram matrices
//!   and `A·Bᵀ` products (with fused bias+ReLU), batched top-k and
//!   unrolled squared distances, parallelized with rayon and
//!   runtime-dispatched to AVX2 where available (bit-identical across
//!   tiers — see the module docs),
//! * [`lsh`] — random-hyperplane locality-sensitive hashing, and
//! * [`hnsw`] — a hierarchical navigable small world index; LSH and HNSW
//!   implement the approximate-search future work the paper names in §5.2,
//! * [`policy`] — the [`AnnPolicy`] exact ↔ HNSW routing policy shared by
//!   every stage that has both an exact kernel and an ANN variant
//!   (graph edges, k-selection, constrained assignment), with the
//!   crossover default cited from the measured BENCH_blocking.json sweep,
//! * [`pca`] — principal component analysis by power iteration (used to
//!   initialize t-SNE, as is standard practice),
//! * [`tsne`] — exact O(n²) t-SNE with perplexity calibration and early
//!   exaggeration, sufficient for the benchmark-sized pair sets of
//!   Figure 1.

pub mod embeddings;
pub mod hnsw;
pub mod kernel;
pub mod knn;
pub mod lsh;
pub mod pca;
pub mod policy;
pub mod tsne;

pub use embeddings::{cosine, dot, norm, normalize, Embeddings};
pub use hnsw::{Hnsw, HnswConfig, HnswScratch};
pub use kernel::{
    gemm, gemm_bias_relu, gram_block, gram_packed, pack_rows, simd_tier, sq_dist, sq_dist_batch,
    sq_dist_with_tier, top_k_batch, ulp_diff, with_simd_tier, SimdTier,
};
pub use knn::{top_k, top_k_among, Neighbor};
pub use lsh::{sample_planes, signature_of, signatures, LshConfig, LshIndex, MAX_SIGNATURE_BITS};
pub use pca::Pca;
pub use policy::{AnnPolicy, DEFAULT_ANN_THRESHOLD};
pub use tsne::{Tsne, TsneConfig};
